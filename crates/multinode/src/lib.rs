//! Multi-node scatter-add (§3.2 "Multi-node Scatter-add", evaluated in
//! §4.5 / Figure 13).
//!
//! A [`MultiNode`] machine is 1–8 single-node memory systems joined by the
//! input-queued crossbar of `sa-net`. Global memory is line-interleaved
//! across nodes (`home = line mod nodes`); "the atomicity of each individual
//! addition is guaranteed by the fact that a node can only directly access
//! its own part of the global memory".
//!
//! Two operating modes, matching the paper:
//!
//! * **Direct** (combining off): every scatter-add request to a remote line
//!   crosses the network as a one-word message and is merged with local
//!   requests at the home node's scatter-add units.
//! * **Cache combining** (combining on): nodes first scatter-add into their
//!   *local* cache — remote lines are zero-allocated rather than fetched —
//!   and evicted partial-sum lines travel to their home node as *sum-backs*
//!   where each word is applied as a scatter-add. When a node finishes its
//!   share, a flush-with-sum-back synchronization step pushes out the
//!   remaining partial lines.
//!
//! The experiment of Figure 13 replays application reference traces through
//! this machine and reports scatter-add throughput; see
//! [`MultiNode::run_trace`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use sa_cache::SumBack;
use sa_core::{NodeMemSys, NodeStats};
use sa_faults::{Backoff, FaultPlan, ResilienceStats};
use sa_net::{Crossbar, CrossbarPort, Message, NetStats};
use sa_sim::{
    Addr, Clock, Cycle, MachineConfig, MemOp, MemRequest, NetworkConfig, Origin, ReqId, ScalarKind,
    ScatterOp, WORD_BYTES,
};
use sa_telemetry::{Introspect, Json, ProbeRegistry, Progress, ReqTracer};

/// Messages exchanged between nodes.
#[derive(Clone, Debug)]
enum NetMsg {
    /// A single scatter-add request headed for its home node (1 word).
    Request(MemRequest),
    /// An evicted partial-sum line headed for its home node
    /// (`words_per_line` words).
    SumBack(SumBack),
}

/// Outcome of a multi-node trace replay.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Total execution cycles (including the final flush/synchronization
    /// for combining runs).
    pub cycles: u64,
    /// Cycles the coordinator fast-forwarded over instead of stepping (0
    /// with fast-forward off; wall-clock accounting only — every other
    /// field is byte-identical either way).
    pub skipped_cycles: u64,
    /// Application scatter-add operations performed (the trace length).
    pub adds: u64,
    /// Number of nodes.
    pub nodes: usize,
    /// Sum-back lines that crossed the network (combining runs).
    pub sum_back_lines: u64,
    /// Flush synchronization rounds performed (≤ log₂ n + 1 for the
    /// hypercube topology, ≤ 1 for flat).
    pub flush_rounds: u32,
    /// Per-node machine statistics.
    pub node_stats: Vec<NodeStats>,
    /// Network statistics.
    pub net: NetStats,
    /// Merged resilience counters across the fabric and every node (NACKed
    /// and retried sends, dropped/retransmitted flits, ECC events, stalls);
    /// all zero unless a fault plan is installed.
    pub resilience: ResilienceStats,
    /// Merged request-lifecycle records from every node (empty unless
    /// `MachineConfig::req_sample` enabled tracing). A remote request's
    /// source-side stamps (issue, crossbar entry) and home-side stamps
    /// (bank, DRAM, retire) are combined into one record per id.
    pub req_trace: ReqTracer,
}

impl TraceReport {
    /// Scatter-add throughput in GB/s at `ghz` GHz — the y-axis of
    /// Figure 13 (each addition moves one 8-byte word of payload).
    pub fn throughput_gbps(&self, ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.adds as f64 * WORD_BYTES as f64 * ghz / self.cycles as f64
    }

    /// Additions retired per cycle.
    pub fn adds_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.adds as f64 / self.cycles as f64
        }
    }

    /// Record this run's counters into a telemetry scope: the run summary,
    /// the network, and each node's machine statistics under `node{i}`.
    pub fn record_metrics(&self, scope: &mut sa_telemetry::Scope<'_>) {
        scope.counter("cycles", self.cycles);
        scope.counter("skipped_cycles", self.skipped_cycles);
        scope.counter("adds", self.adds);
        scope.counter("nodes", self.nodes as u64);
        scope.counter("sum_back_lines", self.sum_back_lines);
        scope.counter("flush_rounds", u64::from(self.flush_rounds));
        self.net.record(&mut scope.scope("net"));
        if !self.resilience.is_zero() {
            self.resilience.record(&mut scope.scope("resilience"));
        }
        for (i, ns) in self.node_stats.iter().enumerate() {
            ns.record(&mut scope.scope(&format!("node{i}")));
        }
    }
}

/// How combining-mode sum-backs travel to their home node.
///
/// The paper's §5 closes with: "We are also considering an optimization to
/// our multi-node cached algorithm that will arrange the nodes in a logical
/// hierarchy and allow the combining across nodes to occur in logarithmic
/// instead of linear complexity." [`Topology::Hypercube`] implements that
/// future-work idea: sum-backs hop one address bit at a time toward home,
/// merging into each intermediate node's combining cache, so a hot line's
/// `n − 1` partials reach home as `log₂ n` merged lines instead of `n − 1`
/// serial applications.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Topology {
    /// Sum-backs go straight to the home node (the paper's evaluated
    /// design).
    #[default]
    Flat,
    /// Sum-backs reduce along hypercube dimensions (the §5 extension).
    /// Requires a power-of-two node count.
    Hypercube,
}

/// A multi-node scatter-add machine (see crate docs).
#[derive(Debug)]
pub struct MultiNode {
    machine: MachineConfig,
    nodes: Vec<NodeMemSys>,
    net: Crossbar<NetMsg>,
    combining: bool,
    topology: Topology,
    /// Whether the coordinator may fast-forward over cycles in which no
    /// node, queue, or fabric element can change state. Seeded from
    /// [`sa_sim::fast_forward_default`] at construction.
    fast_forward: bool,
}

impl MultiNode {
    /// Build an `n`-node machine. Each node gets the full single-node
    /// configuration of `machine` (Table 1); `network` picks the paper's
    /// *low* (1 word/cycle/node) or *high* (8 words/cycle/node) fabric;
    /// `combining` enables the cache-combining optimization.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(
        machine: MachineConfig,
        n: usize,
        network: NetworkConfig,
        combining: bool,
    ) -> MultiNode {
        MultiNode::with_topology(machine, n, network, combining, Topology::Flat)
    }

    /// Build an `n`-node machine with an explicit sum-back [`Topology`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if [`Topology::Hypercube`] is requested
    /// with a non-power-of-two node count.
    pub fn with_topology(
        machine: MachineConfig,
        n: usize,
        network: NetworkConfig,
        combining: bool,
        topology: Topology,
    ) -> MultiNode {
        assert!(n > 0, "need at least one node");
        if topology == Topology::Hypercube {
            assert!(
                n.is_power_of_two(),
                "hypercube needs a power-of-two node count"
            );
        }
        let nodes = (0..n)
            .map(|i| {
                let mut node = NodeMemSys::new(machine, i, combining);
                node.set_nodes(n);
                node
            })
            .collect();
        MultiNode {
            machine,
            nodes,
            net: Crossbar::new(n, network),
            combining,
            topology,
            fast_forward: sa_sim::fast_forward_default(),
        }
    }

    /// Enable or disable event-horizon fast-forward for this machine's
    /// runs (wall-clock only; reports are byte-identical either way),
    /// overriding the process-wide default.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether runs may fast-forward over provably-idle cycles.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Install `plan` on every node's memory system and on the fabric,
    /// overriding the process-wide [`sa_faults::default_plan`] applied at
    /// construction. Schedules are keyed by `(seed, site, node, component)`,
    /// so runs stay bit-identical across thread counts and fast-forward.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for node in &mut self.nodes {
            node.set_fault_plan(plan);
        }
        self.net.set_fault_plan(plan);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The home node of a word address.
    pub fn home_of(&self, addr: Addr) -> usize {
        home_of_line(addr, self.machine.cache.line_bytes, self.nodes.len())
    }

    /// Read the coherent global value of one word (for verification).
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.nodes[self.home_of(addr)].read_coherent(addr)
    }

    /// Replay a scatter-add reference trace: word index `trace[i]` receives
    /// `+values[i]` (f64). The trace is block-partitioned across nodes, as
    /// the paper's software would partition its data. Returns timing and
    /// throughput.
    ///
    /// Equivalent to [`MultiNode::run_trace_threads`] with one stepper
    /// thread (the fully sequential scheduler).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or the run deadlocks.
    pub fn run_trace(&mut self, trace: &[u64], values: &[f64]) -> TraceReport {
        self.run_trace_threads(trace, values, 1)
    }

    /// Replay a trace with `threads` node-stepper threads.
    ///
    /// Every cycle runs in two phases. In the *node phase*, each worker
    /// steps a disjoint subset of nodes through [`step_node`] against
    /// detached [`CrossbarPort`]s, so a node touches only its own memory
    /// system and its own edge queues. In the *exchange phase* (between two
    /// barriers, on the coordinating thread) the ports are re-attached, the
    /// crossbar moves messages, and the quiescence/flush decision is made.
    /// Because nodes never share mutable state within a phase, the schedule
    /// is bit-identical to the sequential scheduler for any thread count —
    /// same cycle count, same statistics, same lifecycle records (see
    /// `docs/PARALLELISM.md`).
    ///
    /// `threads` is clamped to `1..=node_count()`; `1` runs inline without
    /// spawning.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, the run deadlocks, or a stepper thread
    /// panics.
    pub fn run_trace_threads(
        &mut self,
        trace: &[u64],
        values: &[f64],
        threads: usize,
    ) -> TraceReport {
        self.run_trace_threads_probed(trace, values, threads, &mut Introspect::off())
    }

    /// [`MultiNode::run_trace_threads`] with live introspection attached:
    /// probe snapshots at the recorder's cadence (taken on the coordinator
    /// with all ports re-attached, at the same point in the serial and
    /// parallel schedulers, with the event-horizon skip clamped to due
    /// cycles — snapshot bytes are identical for every `threads` value and
    /// with fast-forward on or off), wall-clock-throttled heartbeats, and
    /// host-time attribution of the net/step/sync/skip phases. With
    /// [`Introspect::off`] every introspection site reduces to one branch.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, the run deadlocks, or a stepper thread
    /// panics.
    pub fn run_trace_threads_probed(
        &mut self,
        trace: &[u64],
        values: &[f64],
        threads: usize,
        probe: &mut Introspect,
    ) -> TraceReport {
        assert_eq!(trace.len(), values.len(), "trace/value length mismatch");
        let n = self.nodes.len();
        let total = trace.len();
        let params = StepParams {
            n,
            issue_width: (self.machine.ag.count as u32 * self.machine.ag.width) as usize,
            line_words: self.machine.cache.words_per_line() as u32,
            line_bytes: self.machine.cache.line_bytes,
            combining: self.combining,
            topology: self.topology,
        };
        let sample = self.machine.req_sample;

        // Block partition: node i owns trace[lo_i..hi_i]. All mutable
        // per-node run state lives in the node's context so a worker can
        // step it without touching anything shared.
        let mut ctxs: Vec<NodeCtx> = self
            .nodes
            .drain(..)
            .enumerate()
            .map(|(i, node)| {
                let lo = total * i / n;
                let hi = total * (i + 1) / n;
                NodeCtx {
                    index: i,
                    node,
                    inj: Injector {
                        items: (lo..hi).map(|j| (trace[j], values[j])).collect(),
                        cursor: 0,
                        staged: None,
                    },
                    outbox: VecDeque::new(),
                    port: None,
                    tracer: ReqTracer::every(sample),
                    next_seq: 0,
                    app_acks: 0,
                    apply_pending: 0,
                    sum_back_lines: 0,
                    backoff: Backoff::default(),
                    retry_at: Cycle::ZERO,
                    nacked: false,
                    net_retries: 0,
                }
            })
            .collect();

        let mut clock = Clock::with_limit(4_000_000_000);
        let mut flush_rounds = 0u32;
        let mut skipped_cycles = 0u64;
        let fast_forward = self.fast_forward;
        let workers = threads.clamp(1, n);

        if workers == 1 {
            loop {
                let now = clock.advance();
                probe.profiler.time("net", || self.net.tick(now));
                probe.profiler.time("step", || {
                    for ctx in &mut ctxs {
                        ctx.port = Some(self.net.detach_port(ctx.index));
                        step_node(ctx, now, &params);
                        self.net
                            .attach_port(ctx.port.take().expect("port attached this cycle"));
                    }
                });
                if probe.recorder.due(now.raw()) {
                    let mut reg = ProbeRegistry::new();
                    reg.register("net", &self.net);
                    for ctx in &ctxs {
                        reg.register(&format!("node{}", ctx.index), &ctx.node);
                    }
                    probe.recorder.record(reg, now.raw(), skipped_cycles);
                }
                if probe.progress.is_on() && now.raw() & 0x3FF == 0 {
                    emit_trace_heartbeat(&probe.progress, now, skipped_cycles, n);
                }
                let mut refs: Vec<&mut NodeCtx> = ctxs.iter_mut().collect();
                if probe.profiler.time("sync", || {
                    sync_phase(&self.net, &mut refs, total, &params, &mut flush_rounds)
                }) {
                    break;
                }
                if fast_forward {
                    let cap = probe.recorder.next_due();
                    skipped_cycles += probe.profiler.time("skip", || {
                        fast_forward_skip(&mut clock, &mut self.net, &mut refs, now, cap)
                    });
                }
            }
        } else {
            let cells: Vec<Mutex<NodeCtx>> = ctxs.into_iter().map(Mutex::new).collect();
            // Two barrier crossings per cycle separate the parallel node
            // phase from the serialized exchange phase.
            let barrier = Barrier::new(workers + 1);
            let done = AtomicBool::new(false);
            let now_raw = AtomicU64::new(0);
            let worker_panicked = AtomicBool::new(false);
            std::thread::scope(|s| {
                for t in 0..workers {
                    let cells = &cells;
                    let barrier = &barrier;
                    let done = &done;
                    let now_raw = &now_raw;
                    let worker_panicked = &worker_panicked;
                    let params = &params;
                    s.spawn(move || loop {
                        barrier.wait(); // cycle start: ports are detached
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        let now = Cycle(now_raw.load(Ordering::Acquire));
                        // Catch panics so the coordinator is never left
                        // waiting on a dead worker at the end-of-cycle
                        // barrier; it re-raises after the phase.
                        let stepped = catch_unwind(AssertUnwindSafe(|| {
                            let mut i = t;
                            while i < cells.len() {
                                let mut ctx = cells[i].lock().expect("node context lock");
                                step_node(&mut ctx, now, params);
                                i += workers;
                            }
                        }));
                        if stepped.is_err() {
                            worker_panicked.store(true, Ordering::Release);
                        }
                        barrier.wait(); // cycle end: hand back to coordinator
                    });
                }

                // Release the workers on every exit path (normal completion
                // or a coordinator panic such as the deadlock limit): they
                // are parked at the cycle-start barrier.
                struct ReleaseWorkers<'a> {
                    barrier: &'a Barrier,
                    done: &'a AtomicBool,
                }
                impl Drop for ReleaseWorkers<'_> {
                    fn drop(&mut self) {
                        self.done.store(true, Ordering::Release);
                        self.barrier.wait();
                    }
                }
                let _release = ReleaseWorkers {
                    barrier: &barrier,
                    done: &done,
                };

                loop {
                    let now = clock.advance();
                    probe.profiler.time("net", || self.net.tick(now));
                    for (i, cell) in cells.iter().enumerate() {
                        let mut ctx = cell.lock().expect("node context lock");
                        ctx.port = Some(self.net.detach_port(i));
                    }
                    now_raw.store(now.raw(), Ordering::Release);
                    probe.profiler.time("step", || {
                        barrier.wait(); // node phase runs on the workers
                        barrier.wait();
                    });
                    assert!(
                        !worker_panicked.load(Ordering::Acquire),
                        "a node stepper thread panicked"
                    );
                    let mut guards: Vec<_> = cells
                        .iter()
                        .map(|c| c.lock().expect("node context lock"))
                        .collect();
                    for guard in &mut guards {
                        self.net
                            .attach_port(guard.port.take().expect("port attached this cycle"));
                    }
                    // Same snapshot point as the sequential scheduler: all
                    // ports re-attached, before the sync decision, so the
                    // captured state is bit-identical for any thread count.
                    if probe.recorder.due(now.raw()) {
                        let mut reg = ProbeRegistry::new();
                        reg.register("net", &self.net);
                        for guard in guards.iter() {
                            reg.register(&format!("node{}", guard.index), &guard.node);
                        }
                        probe.recorder.record(reg, now.raw(), skipped_cycles);
                    }
                    if probe.progress.is_on() && now.raw() & 0x3FF == 0 {
                        emit_trace_heartbeat(&probe.progress, now, skipped_cycles, n);
                    }
                    let mut refs: Vec<&mut NodeCtx> = guards.iter_mut().map(|g| &mut **g).collect();
                    if probe.profiler.time("sync", || {
                        sync_phase(&self.net, &mut refs, total, &params, &mut flush_rounds)
                    }) {
                        break;
                    }
                    // Identical code to the sequential scheduler's skip, run
                    // on the same post-sync state, so the schedule stays
                    // bit-identical for every thread count.
                    if fast_forward {
                        let cap = probe.recorder.next_due();
                        skipped_cycles += probe.profiler.time("skip", || {
                            fast_forward_skip(&mut clock, &mut self.net, &mut refs, now, cap)
                        });
                    }
                }
            });
            ctxs = cells
                .into_iter()
                .map(|c| c.into_inner().expect("worker threads joined"))
                .collect();
        }

        // Materialize coherent per-node memory for verification reads, and
        // fold every node's lifecycle records into the run-level tracer in
        // node order: a remote request's source-side stamps (kept in its
        // issuing node's context) and home-side stamps merge into one
        // record keyed by id.
        let mut req_trace = ReqTracer::every(sample);
        let mut sum_back_lines = 0u64;
        let mut net_retries = 0u64;
        for ctx in ctxs {
            sum_back_lines += ctx.sum_back_lines;
            net_retries += ctx.net_retries;
            let mut node = ctx.node;
            node.flush_to_store();
            req_trace.absorb(ctx.tracer);
            req_trace.absorb(node.take_req_trace());
            node.set_req_sample(sample);
            self.nodes.push(node);
        }

        let node_stats: Vec<NodeStats> = self.nodes.iter().map(NodeMemSys::stats).collect();
        let mut resilience = self.net.resilience_stats();
        resilience.net_retries += net_retries;
        for ns in &node_stats {
            resilience.merge(&ns.resilience);
        }

        TraceReport {
            cycles: clock.now().raw(),
            skipped_cycles,
            adds: total as u64,
            nodes: n,
            sum_back_lines,
            flush_rounds,
            node_stats,
            net: self.net.stats(),
            resilience,
            req_trace,
        }
    }
}

/// Read-only per-run parameters shared by every node stepper.
#[derive(Copy, Clone, Debug)]
struct StepParams {
    n: usize,
    issue_width: usize,
    line_words: u32,
    line_bytes: u64,
    combining: bool,
    topology: Topology,
}

/// The home node of a word address under line interleaving.
fn home_of_line(addr: Addr, line_bytes: u64, n: usize) -> usize {
    (addr.line_index(line_bytes) % n as u64) as usize
}

/// The next hop of a sum-back travelling from `from` toward `home` (see
/// [`MultiNode::with_topology`] / [`Topology`]).
fn hop_toward(topology: Topology, from: usize, home: usize) -> usize {
    match topology {
        Topology::Flat => home,
        Topology::Hypercube => {
            if from == home {
                home
            } else {
                let diff = from ^ home;
                let bit = usize::BITS - 1 - diff.leading_zeros();
                from ^ (1 << bit)
            }
        }
    }
}

/// All mutable state one node owns during a run. A stepper thread holds
/// exclusive access while the node phase runs; nothing in here is shared.
#[derive(Debug)]
struct NodeCtx {
    index: usize,
    node: NodeMemSys,
    inj: Injector,
    outbox: VecDeque<Message<NetMsg>>,
    /// The node's detached crossbar edge queues; present only during the
    /// node phase of a cycle.
    port: Option<CrossbarPort<NetMsg>>,
    /// Source-side lifecycle stamps for requests this node sent across the
    /// fabric; merged by id with the home-side records at end of run.
    tracer: ReqTracer,
    next_seq: u64,
    app_acks: usize,
    /// Sum-back word applications in flight at this node.
    apply_pending: usize,
    sum_back_lines: u64,
    /// Exponential backoff for NACKed remote-request sends.
    backoff: Backoff,
    /// Cycle before which a NACKed staged request must not retry.
    retry_at: Cycle,
    /// Whether the currently staged request is waiting out a NACK (as
    /// opposed to ordinary queue back-pressure, which retries next cycle).
    nacked: bool,
    /// Remote-request sends re-attempted after a NACK backoff.
    net_retries: u64,
}

impl NodeCtx {
    /// Mint a request id from this node's private stream. Ids carry the
    /// node index in the high bits so concurrent nodes never collide and
    /// the id sequence depends only on the node's own progress — never on
    /// cross-node interleaving — which keeps lifecycle sampling
    /// (`id % sample`) identical for any thread count.
    fn mint_id(&mut self) -> ReqId {
        self.next_seq += 1;
        ((self.index as u64 + 1) << 40) | self.next_seq
    }
}

/// Advance one node by one cycle against its detached crossbar port. This
/// is the entire per-node cycle body; both the sequential scheduler and the
/// phase-parallel stepper run exactly this function, which is what makes
/// them bit-identical.
///
/// # Panics
///
/// Panics if `ctx.port` is absent or a capacity-checked injection fails.
fn step_node(ctx: &mut NodeCtx, now: Cycle, p: &StepParams) {
    let i = ctx.index;

    // Deliver network messages while the node can take them.
    while let Some(msg) = ctx.port.as_ref().expect("port attached").peek_delivered() {
        match &msg.payload {
            NetMsg::Request(req) => {
                let req = *req;
                if ctx.node.inject_traced(req, now).is_ok() {
                    let _ = ctx.port.as_mut().expect("port attached").pop_delivered();
                } else {
                    break;
                }
            }
            NetMsg::SumBack(sb) => {
                // Apply each word of the line as a scatter-add. At the home
                // node this goes through the normal cached path; at a
                // hypercube intermediate node the combining cache
                // zero-allocates and merges it (the address is still remote
                // there). All words of a line share one bank queue, so free
                // capacity must cover every non-zero word.
                let sb = sb.clone();
                let needed = sb.data.iter().filter(|&&b| b != 0).count();
                if ctx.node.inject_capacity(sb.base) < needed {
                    break;
                }
                let _ = ctx.port.as_mut().expect("port attached").pop_delivered();
                for (w, &bits) in sb.data.iter().enumerate() {
                    if bits == 0 {
                        continue; // additive identity: no work
                    }
                    let req = MemRequest {
                        id: ctx.mint_id(),
                        addr: Addr(sb.base.0 + w as u64 * WORD_BYTES),
                        op: MemOp::Scatter {
                            bits,
                            kind: ScalarKind::F64,
                            op: ScatterOp::Add,
                            fetch: false,
                        },
                        origin: Origin::Remote { node: i },
                    };
                    ctx.node.inject_traced(req, now).expect("room checked");
                    ctx.apply_pending += 1;
                }
            }
        }
    }

    // Inject this node's share of the trace. A request that the node or
    // the fabric rejects stays staged and retries with the *same* id next
    // cycle, so its (idempotent) issue stamp keeps measuring the first
    // attempt.
    for _ in 0..p.issue_width {
        let req = match ctx.inj.staged.take() {
            Some(r) => r,
            None => {
                let Some(&(word, value)) = ctx.inj.items.get(ctx.inj.cursor) else {
                    break;
                };
                MemRequest {
                    id: ctx.mint_id(),
                    addr: Addr::from_word_index(word),
                    op: MemOp::Scatter {
                        bits: value.to_bits(),
                        kind: ScalarKind::F64,
                        op: ScatterOp::Add,
                        fetch: false,
                    },
                    origin: Origin::AddrGen { node: i, ag: 0 },
                }
            }
        };
        let home = home_of_line(req.addr, p.line_bytes, p.n);
        if p.combining || home == i {
            match ctx.node.inject_traced(req, now) {
                Ok(()) => ctx.inj.cursor += 1,
                Err(r) => {
                    ctx.inj.staged = Some(r);
                    break;
                }
            }
        } else {
            // One word of payload (the paper's low-bandwidth network
            // carries one word per cycle per node). A send the fabric NACKs
            // (fault injection) backs off exponentially before retrying;
            // ordinary queue back-pressure still retries next cycle.
            if now < ctx.retry_at {
                ctx.inj.staged = Some(req);
                break;
            }
            let port = ctx.port.as_mut().expect("port attached");
            if port.can_inject() {
                // The request is issued here at node i's address generator
                // even though it executes at its home; stamp the
                // source-side stages into this node's tracer for the merge
                // at end of run.
                ctx.tracer.issue(req.id, i, now.raw());
                if ctx.nacked {
                    ctx.net_retries += 1;
                }
                match port.try_send_traced(
                    Message::new(i, home, 1, NetMsg::Request(req)),
                    now,
                    Some(req.id),
                    &mut ctx.tracer,
                ) {
                    Ok(()) => {
                        ctx.inj.cursor += 1;
                        ctx.nacked = false;
                        ctx.backoff.reset();
                    }
                    Err(e) => {
                        assert!(e.nack, "capacity checked");
                        let NetMsg::Request(r) = e.msg.payload else {
                            unreachable!("request payload sent above");
                        };
                        ctx.inj.staged = Some(r);
                        ctx.nacked = true;
                        ctx.retry_at = now + ctx.backoff.next_delay();
                        break;
                    }
                }
            } else {
                ctx.inj.staged = Some(req);
                break;
            }
        }
    }

    // Forward evicted partial-sum lines toward their homes (one hypercube
    // hop at a time under that topology).
    while let Some((_, sb)) = ctx.node.pop_sum_back() {
        let dst = hop_toward(p.topology, i, home_of_line(sb.base, p.line_bytes, p.n));
        ctx.sum_back_lines += 1;
        ctx.outbox
            .push_back(Message::new(i, dst, p.line_words, NetMsg::SumBack(sb)));
    }
    while let Some(msg) = ctx.outbox.pop_front() {
        if msg.dst == i {
            // Locally-homed sum-back (possible right after the flush):
            // apply without crossing the fabric.
            ctx.outbox.push_front(msg);
            break;
        }
        match ctx.port.as_mut().expect("port attached").try_inject(msg) {
            Ok(()) => {}
            Err(m) => {
                ctx.outbox.push_front(m);
                break;
            }
        }
    }
    // Apply locally-homed sum-backs directly.
    while ctx.outbox.front().is_some_and(|m| m.dst == i) {
        let msg = ctx.outbox.pop_front().expect("front checked");
        let Message {
            payload: NetMsg::SumBack(sb),
            ..
        } = msg
        else {
            unreachable!("only sum-backs are self-addressed");
        };
        let needed = sb.data.iter().filter(|&&b| b != 0).count();
        if ctx.node.inject_capacity(sb.base) < needed {
            ctx.outbox
                .push_front(Message::new(i, i, p.line_words, NetMsg::SumBack(sb)));
            break;
        }
        for (w, &bits) in sb.data.iter().enumerate() {
            if bits == 0 {
                continue;
            }
            let req = MemRequest {
                id: ctx.mint_id(),
                addr: Addr(sb.base.0 + w as u64 * WORD_BYTES),
                op: MemOp::Scatter {
                    bits,
                    kind: ScalarKind::F64,
                    op: ScatterOp::Add,
                    fetch: false,
                },
                origin: Origin::Remote { node: i },
            };
            ctx.node.inject_traced(req, now).expect("room checked");
            ctx.apply_pending += 1;
        }
    }

    ctx.node.tick(now);

    while let Some(c) = ctx.node.pop_completion() {
        match c.origin {
            Origin::AddrGen { .. } => ctx.app_acks += 1,
            Origin::Remote { .. } => ctx.apply_pending -= 1,
            _ => {}
        }
    }
}

/// Event-horizon fast-forward for the coordinator: when every node has
/// issued its whole trace share, holds nothing staged or outboxed, and
/// neither the fabric nor any node can change state before cycle `h`, jump
/// the clock to `h - 1` (the next [`Clock::advance`] lands exactly on the
/// horizon). Returns the number of cycles skipped (0 when any retry or
/// state change is possible next cycle).
///
/// Any cycle this skips is one in which `step_node` would only have ticked
/// idle components: delivery queues empty (fabric horizon covers them),
/// nothing to inject or forward (checked here), and no completions pending
/// (node horizon covers them). Per-cycle stall counters cannot advance in
/// such a cycle, and the time-weighted integrals are folded by
/// [`NodeMemSys::skip_cycles`] / [`Crossbar::skip_cycles`], so reports stay
/// byte-identical.
fn fast_forward_skip(
    clock: &mut Clock,
    net: &mut Crossbar<NetMsg>,
    ctxs: &mut [&mut NodeCtx],
    now: Cycle,
    probe_cap: Option<u64>,
) -> u64 {
    if ctxs
        .iter()
        .any(|c| c.inj.staged.is_some() || c.inj.cursor < c.inj.items.len() || !c.outbox.is_empty())
    {
        return 0;
    }
    let mut horizon = net.next_event(now);
    for c in ctxs.iter() {
        if let Some(t) = c.node.next_event(now) {
            horizon = Some(horizon.map_or(t, |h| h.min(t)));
        }
    }
    let Some(mut h) = horizon else { return 0 };
    // Never skip past a due probe cycle: snapshot cadence must see every
    // due cycle ticked regardless of skipping.
    if let Some(due) = probe_cap {
        h = h.min(Cycle(due.max(now.raw() + 1)));
    }
    if h <= now + 1 {
        return 0;
    }
    let k = h.raw() - now.raw() - 1;
    for ctx in ctxs.iter_mut() {
        ctx.node.skip_cycles(now, k);
    }
    net.skip_cycles(now, k);
    clock.skip_to(Cycle(h.raw() - 1));
    k
}

/// Emit one trace-replay heartbeat (coordinator only; wall-clock throttled
/// inside [`Progress::heartbeat`]).
fn emit_trace_heartbeat(progress: &Progress, now: Cycle, skipped_cycles: u64, nodes: usize) {
    let elapsed = progress.elapsed().as_secs_f64();
    progress.heartbeat(|o| {
        o.push("cycle", Json::UInt(now.raw()));
        o.push("nodes", Json::UInt(nodes as u64));
        o.push("skipped_cycles", Json::UInt(skipped_cycles));
        let rate = if elapsed > 0.0 {
            now.raw() as f64 / elapsed
        } else {
            0.0
        };
        o.push("sim_cycles_per_sec", Json::Num(rate));
        let ff = if now.raw() > 0 {
            skipped_cycles as f64 / now.raw() as f64
        } else {
            0.0
        };
        o.push("ff_ratio", Json::Num(ff));
    });
}

/// The serialized end-of-cycle phase: decide quiescence from the summed
/// per-node counters and, when quiescent, run one flush-with-sum-back
/// synchronization round (§3.2). Returns `true` when the run is complete.
/// Runs with all ports re-attached, so `net.is_idle()` sees the real edge
/// queues.
fn sync_phase(
    net: &Crossbar<NetMsg>,
    ctxs: &mut [&mut NodeCtx],
    total: usize,
    p: &StepParams,
    flush_rounds: &mut u32,
) -> bool {
    let injected_all = ctxs.iter().all(|c| c.inj.cursor == c.inj.items.len());
    let app_acks: usize = ctxs.iter().map(|c| c.app_acks).sum();
    let apply_pending: usize = ctxs.iter().map(|c| c.apply_pending).sum();
    let quiescent = injected_all
        && app_acks == total
        && apply_pending == 0
        && net.is_idle()
        && ctxs.iter().all(|c| c.outbox.is_empty())
        && ctxs.iter().all(|c| c.node.is_idle());
    if !quiescent {
        return false;
    }

    // Flush-with-sum-back synchronization: every node evicts its remaining
    // partial lines toward their homes. Under the hypercube topology
    // partials move one dimension per round and merge at intermediate
    // nodes, so rounds repeat until no node holds partial lines
    // (≤ log₂ n + 1).
    let mut produced = false;
    for ctx in ctxs.iter_mut() {
        let i = ctx.index;
        for sb in ctx.node.flush_sum_backs() {
            let home = home_of_line(sb.base, p.line_bytes, p.n);
            let dst = hop_toward(p.topology, i, home);
            ctx.sum_back_lines += 1;
            produced = true;
            ctx.outbox
                .push_back(Message::new(i, dst, p.line_words, NetMsg::SumBack(sb)));
        }
    }
    if produced {
        *flush_rounds += 1;
        false
    } else {
        true
    }
}

#[derive(Debug)]
struct Injector {
    items: Vec<(u64, f64)>,
    cursor: usize,
    /// A request already minted for `items[cursor]` that was rejected by a
    /// full queue; retried verbatim so the id is stable across attempts.
    staged: Option<MemRequest>,
}

/// Sequential reference: the expected value of every touched word.
pub fn trace_reference(trace: &[u64], values: &[f64]) -> std::collections::HashMap<u64, f64> {
    let mut out = std::collections::HashMap::new();
    for (&w, &v) in trace.iter().zip(values) {
        *out.entry(w).or_insert(0.0) += v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::Rng64;

    fn machine() -> MachineConfig {
        MachineConfig::merrimac()
    }

    fn uniform_trace(n: usize, range: u64, seed: u64) -> (Vec<u64>, Vec<f64>) {
        let mut rng = Rng64::new(seed);
        let trace: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
        let values = vec![1.0; n];
        (trace, values)
    }

    fn verify(mn: &MultiNode, trace: &[u64], values: &[f64]) {
        let reference = trace_reference(trace, values);
        for (&w, &expect) in &reference {
            let got = f64::from_bits(mn.read_word(Addr::from_word_index(w)));
            assert!(
                (got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "word {w}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn single_node_direct_is_correct() {
        let (trace, values) = uniform_trace(2000, 256, 1);
        let mut mn = MultiNode::new(machine(), 1, NetworkConfig::high(), false);
        let r = mn.run_trace(&trace, &values);
        verify(&mn, &trace, &values);
        assert_eq!(r.adds, 2000);
        assert!(r.throughput_gbps(1.0) > 0.0);
    }

    #[test]
    fn four_nodes_direct_is_correct() {
        let (trace, values) = uniform_trace(4000, 4096, 2);
        let mut mn = MultiNode::new(machine(), 4, NetworkConfig::high(), false);
        let r = mn.run_trace(&trace, &values);
        verify(&mn, &trace, &values);
        assert_eq!(r.sum_back_lines, 0, "no combining, no sum-backs");
        assert!(r.net.delivered > 0, "remote requests crossed the fabric");
    }

    #[test]
    fn four_nodes_combining_is_correct() {
        let (trace, values) = uniform_trace(4000, 256, 3);
        let mut mn = MultiNode::new(machine(), 4, NetworkConfig::low(), true);
        let r = mn.run_trace(&trace, &values);
        verify(&mn, &trace, &values);
        assert!(r.sum_back_lines > 0, "combining produces sum-backs");
    }

    #[test]
    fn wide_high_scales_with_nodes() {
        // Figure 13: the wide histogram with a high-bandwidth network is
        // memory-bandwidth limited and scales nearly perfectly.
        let (trace, values) = uniform_trace(16_384, 1 << 17, 4);
        let run = |n: usize| {
            let mut mn = MultiNode::new(machine(), n, NetworkConfig::high(), false);
            mn.run_trace(&trace, &values).throughput_gbps(1.0)
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(
            t4 > 2.5 * t1,
            "4 nodes should give near-linear speedup: {t1:.2} → {t4:.2} GB/s"
        );
    }

    #[test]
    fn narrow_low_does_not_scale_without_combining() {
        // Figure 13: "no scaling is achieved in the case of the
        // low-bandwidth network" for the narrow histogram.
        let (trace, values) = uniform_trace(8192, 256, 5);
        let run = |n: usize, combining: bool| {
            let mut mn = MultiNode::new(machine(), n, NetworkConfig::low(), combining);
            mn.run_trace(&trace, &values).throughput_gbps(1.0)
        };
        let t1 = run(1, false);
        let t4 = run(4, false);
        assert!(
            t4 < 1.8 * t1,
            "low-bandwidth narrow histogram should not scale: {t1:.2} → {t4:.2}"
        );
        // "Employing the multi-node optimization ... provided a significant
        // speedup": combining must beat direct on the same configuration.
        let t4c = run(4, true);
        assert!(
            t4c > t4,
            "combining ({t4c:.2} GB/s) should beat direct ({t4:.2} GB/s) on a slow network"
        );
    }

    #[test]
    fn traced_run_merges_remote_lifecycles() {
        use sa_telemetry::ReqStage;

        let (trace, values) = uniform_trace(2000, 4096, 11);
        let mut cfg = machine();
        cfg.req_sample = 4;
        let mut mn = MultiNode::new(cfg, 4, NetworkConfig::high(), false);
        let r = mn.run_trace(&trace, &values);
        verify(&mn, &trace, &values);

        let rt = &r.req_trace;
        assert!(rt.retired_len() > 0, "sampled requests were recorded");
        assert_eq!(rt.live_len(), 0, "every sampled request retired");
        let mut crossed = 0u64;
        for rec in rt.retired_records() {
            assert_eq!(
                rec.stamps.first().map(|&(s, _)| s),
                Some(ReqStage::Issued),
                "record {} starts at issue",
                rec.id
            );
            assert!(
                rec.stamps.windows(2).all(|w| w[0].1 <= w[1].1),
                "record {} has non-monotone stamps: {:?}",
                rec.id,
                rec.stamps
            );
            if let Some(x) = rec.stamp_at(ReqStage::Crossbar) {
                crossed += 1;
                // The merge put the source-side issue before fabric entry.
                assert!(rec.stamp_at(ReqStage::Issued).unwrap() <= x);
                assert!(rec.node < 4);
            }
        }
        assert!(crossed > 0, "remote requests stamped the crossbar stage");
    }

    #[test]
    fn untraced_run_records_nothing() {
        let (trace, values) = uniform_trace(500, 256, 12);
        let mut mn = MultiNode::new(machine(), 2, NetworkConfig::high(), false);
        let r = mn.run_trace(&trace, &values);
        assert_eq!(r.req_trace.issued_len(), 0);
    }

    #[test]
    fn deterministic() {
        let (trace, values) = uniform_trace(1000, 128, 6);
        let r1 =
            MultiNode::new(machine(), 2, NetworkConfig::low(), true).run_trace(&trace, &values);
        let r2 =
            MultiNode::new(machine(), 2, NetworkConfig::low(), true).run_trace(&trace, &values);
        assert_eq!(r1.cycles, r2.cycles);
    }

    /// Every observable field of two reports must agree (the req tracers
    /// are compared through their rendered latency documents).
    fn assert_reports_identical(a: &TraceReport, b: &TraceReport, what: &str) {
        assert_eq!(a.cycles, b.cycles, "{what}: cycles");
        assert_eq!(a.skipped_cycles, b.skipped_cycles, "{what}: skipped");
        assert_eq!(a.adds, b.adds, "{what}: adds");
        assert_eq!(a.sum_back_lines, b.sum_back_lines, "{what}: sum-backs");
        assert_eq!(a.flush_rounds, b.flush_rounds, "{what}: flush rounds");
        assert_eq!(a.node_stats, b.node_stats, "{what}: node stats");
        assert_eq!(a.resilience, b.resilience, "{what}: resilience counters");
        assert_eq!(a.net, b.net, "{what}: net stats");
        assert_eq!(
            a.req_trace.retired_len(),
            b.req_trace.retired_len(),
            "{what}: retired records"
        );
        assert_eq!(
            a.req_trace.latency_json(),
            b.req_trace.latency_json(),
            "{what}: latency document"
        );
    }

    #[test]
    fn parallel_stepping_is_bit_identical_to_serial() {
        // The heart of the determinism contract: for every mode the
        // phase-parallel stepper must reproduce the sequential scheduler's
        // cycle count, statistics, and lifecycle records exactly, at every
        // thread count.
        let (trace, values) = uniform_trace(3000, 512, 21);
        let mut cfg = machine();
        cfg.req_sample = 8;
        let cases: [(usize, NetworkConfig, bool, Topology); 4] = [
            (4, NetworkConfig::high(), false, Topology::Flat),
            (4, NetworkConfig::low(), true, Topology::Flat),
            (8, NetworkConfig::low(), true, Topology::Hypercube),
            (2, NetworkConfig::low(), false, Topology::Flat),
        ];
        for (n, net, combining, topo) in cases {
            let run = |threads: usize| {
                let mut mn = MultiNode::with_topology(cfg, n, net, combining, topo);
                let r = mn.run_trace_threads(&trace, &values, threads);
                verify(&mn, &trace, &values);
                r
            };
            let serial = run(1);
            for threads in [2, n, 2 * n] {
                let parallel = run(threads);
                assert_reports_identical(
                    &serial,
                    &parallel,
                    &format!("n={n} combining={combining} topo={topo:?} threads={threads}"),
                );
            }
        }
    }

    #[test]
    fn fast_forward_is_byte_identical() {
        let (trace, values) = uniform_trace(2000, 512, 33);
        let mut any_skipped = false;
        let cases: [(usize, NetworkConfig, bool, Topology); 3] = [
            (4, NetworkConfig::high(), false, Topology::Flat),
            (4, NetworkConfig::low(), true, Topology::Flat),
            (8, NetworkConfig::low(), true, Topology::Hypercube),
        ];
        for (n, net, combining, topo) in cases {
            let run = |ff: bool| {
                let mut mn = MultiNode::with_topology(machine(), n, net, combining, topo);
                mn.set_fast_forward(ff);
                let r = mn.run_trace(&trace, &values);
                verify(&mn, &trace, &values);
                r
            };
            let a = run(true);
            let b = run(false);
            assert_eq!(b.skipped_cycles, 0, "ff off must step every cycle");
            any_skipped |= a.skipped_cycles > 0;
            let mut a_wallclock = a.clone();
            a_wallclock.skipped_cycles = 0;
            assert_reports_identical(
                &a_wallclock,
                &b,
                &format!("ff on/off n={n} combining={combining} topo={topo:?}"),
            );
        }
        assert!(any_skipped, "no case exercised the coordinator skip path");
    }

    #[test]
    fn recoverable_faults_stay_bit_identical_across_schedulers() {
        // The resilience contract end to end: a plan mixing every fault
        // kind must leave application results bit-identical to each other
        // across serial/parallel stepping and fast-forward on/off, with the
        // recovery machinery (NACK backoff, flit retransmit, MSHR replay,
        // stall watchdog) visible in the counters.
        let plan = sa_faults::FaultPlan::parse(
            r#"{"schema":"sa-faultplan","version":1,"seed":77,"cs_timeout":48,"faults":[
                {"kind":"net_nack","period":5,"max":40},
                {"kind":"net_drop","period":7,"max":25},
                {"kind":"ecc_single","period":9},
                {"kind":"ecc_double","period":31,"max":20},
                {"kind":"cs_stall","cycles":24,"period":13,"max":30}
            ]}"#,
        )
        .expect("valid plan");
        let bins = 512u64;
        let (trace, values) = uniform_trace(3000, bins, 44);
        let run = |threads: usize, ff: bool, faulty: bool| {
            let mut mn = MultiNode::new(machine(), 4, NetworkConfig::low(), false);
            mn.set_fast_forward(ff);
            if faulty {
                mn.set_fault_plan(&plan);
            }
            let r = mn.run_trace_threads(&trace, &values, threads);
            verify(&mn, &trace, &values);
            let bits: Vec<u64> = (0..bins)
                .map(|w| mn.read_word(Addr::from_word_index(w)))
                .collect();
            (r, bits)
        };

        let (clean, _) = run(1, false, false);
        assert!(clean.resilience.is_zero(), "no plan leaves counters zero");

        let (faulty, bits) = run(1, false, true);
        let res = &faulty.resilience;
        assert!(res.net_nacks > 0, "NACKs fired: {res:?}");
        assert!(res.net_retries > 0, "NACKed sends retried: {res:?}");
        assert!(res.net_dropped > 0, "flits dropped: {res:?}");
        assert_eq!(
            res.net_dropped, res.net_recovered,
            "every dropped flit was retransmitted and delivered"
        );
        assert!(res.ecc_corrected > 0, "single-bit ECC corrected: {res:?}");
        assert!(res.cs_stalls > 0, "combining-store stalls fired: {res:?}");
        assert_eq!(res.ecc_uncorrected, 0, "all injected faults recoverable");
        assert!(
            faulty.cycles > clean.cycles,
            "recovery costs cycles: {} vs {}",
            faulty.cycles,
            clean.cycles
        );

        for (threads, ff) in [(3usize, false), (1, true), (4, true)] {
            let (r, rbits) = run(threads, ff, true);
            let what = format!("faulty threads={threads} ff={ff}");
            assert_eq!(bits, rbits, "{what}: application results bit-identical");
            let mut a = faulty.clone();
            let mut b = r;
            a.skipped_cycles = 0;
            b.skipped_cycles = 0;
            assert_reports_identical(&a, &b, &what);
        }
    }

    #[test]
    fn thread_count_exceeding_nodes_is_clamped() {
        let (trace, values) = uniform_trace(400, 64, 22);
        let mut mn = MultiNode::new(machine(), 2, NetworkConfig::high(), false);
        let r = mn.run_trace_threads(&trace, &values, 64);
        verify(&mn, &trace, &values);
        assert_eq!(r.adds, 400);
    }

    #[test]
    fn report_metrics() {
        let (trace, values) = uniform_trace(100, 16, 7);
        let mut mn = MultiNode::new(machine(), 2, NetworkConfig::high(), false);
        let r = mn.run_trace(&trace, &values);
        assert_eq!(r.nodes, 2);
        assert!(r.adds_per_cycle() > 0.0);
        assert_eq!(r.node_stats.len(), 2);
        let gbps = r.throughput_gbps(1.0);
        assert!((gbps - r.adds_per_cycle() * 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let mut mn = MultiNode::new(machine(), 1, NetworkConfig::high(), false);
        let _ = mn.run_trace(&[1, 2], &[1.0]);
    }

    #[test]
    fn hypercube_combining_is_correct() {
        let (trace, values) = uniform_trace(4000, 256, 8);
        let mut mn = MultiNode::with_topology(
            machine(),
            8,
            NetworkConfig::low(),
            true,
            Topology::Hypercube,
        );
        let r = mn.run_trace(&trace, &values);
        verify(&mn, &trace, &values);
        assert!(
            r.flush_rounds <= 4,
            "8-node hypercube needs at most log2(8)+1 rounds, took {}",
            r.flush_rounds
        );
        assert!(
            r.flush_rounds >= 2,
            "intermediate merges imply several rounds"
        );
    }

    #[test]
    fn hypercube_reduces_home_ingestion_on_hot_traces() {
        // Every node holds partials for every one of the hot lines; flat
        // combining sends n-1 lines per hot line straight to its home, the
        // hypercube merges en route so homes receive only ~log n.
        let (trace, values) = uniform_trace(8192, 32, 9); // 32 bins = 8 lines
        let run = |topo: Topology| {
            let mut mn = MultiNode::with_topology(machine(), 8, NetworkConfig::low(), true, topo);
            let r = mn.run_trace(&trace, &values);
            verify(&mn, &trace, &values);
            r
        };
        let flat = run(Topology::Flat);
        let hyper = run(Topology::Hypercube);
        assert!(
            hyper.cycles <= flat.cycles * 2,
            "hypercube should be competitive: {} vs {}",
            hyper.cycles,
            flat.cycles
        );
        assert!(hyper.flush_rounds > flat.flush_rounds);
    }

    #[test]
    fn hypercube_flat_equivalence_on_random_traces() {
        let (trace, values) = uniform_trace(2000, 1024, 10);
        for topo in [Topology::Flat, Topology::Hypercube] {
            let mut mn = MultiNode::with_topology(machine(), 4, NetworkConfig::high(), true, topo);
            mn.run_trace(&trace, &values);
            verify(&mn, &trace, &values);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_non_power_of_two() {
        let _ = MultiNode::with_topology(
            machine(),
            3,
            NetworkConfig::low(),
            true,
            Topology::Hypercube,
        );
    }
}
