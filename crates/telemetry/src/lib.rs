//! Unified telemetry layer for the scatter-add simulator.
//!
//! Five pieces, all dependency-free:
//!
//! * a hierarchical **metrics registry** ([`MetricsRegistry`]) keyed by
//!   dotted paths (`node0.cache.bank3.mshr_full`) holding counters, gauges,
//!   and fixed-bucket histograms;
//! * **cycle-sampled time series** ([`SeriesSet`]) for occupancies and
//!   utilizations, so stall phases are visible rather than just lifetime
//!   averages;
//! * an **event-trace sink** ([`TraceSink`]) with a zero-cost disabled
//!   implementation ([`NullTrace`]) and a Chrome `trace_event` JSON
//!   implementation ([`ChromeTrace`]) that opens in `chrome://tracing` and
//!   Perfetto;
//! * **request-lifecycle tracing** ([`ReqTracer`]): a 1-in-N sample of
//!   requests carries timestamped [`ReqStage`] records from address-generator
//!   issue to retirement, from which per-stage latency percentiles and an
//!   end-to-end attribution table are derived;
//! * a small **JSON** value type ([`Json`]) with a deterministic writer and a
//!   recursive-descent parser, used for the versioned `--stats-json` export
//!   (see [`stats_json`] / [`validate_stats_json`]).
//!
//! Everything is deterministic: map iteration is ordered (`BTreeMap`),
//! object keys keep insertion order, and float formatting uses Rust's
//! shortest-roundtrip `Display`, so two runs with identical inputs serialize
//! to byte-identical JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;

pub mod bottleneck;
pub mod probe;

pub use bottleneck::{
    attach_bottleneck, bottleneck_json, render_bottleneck, validate_bottleneck_json, OccClass,
    OccupancyStats, StallCause, BOUND_KINDS, STAGE_NAMES, STALL_CAUSES,
};
#[cfg(unix)]
pub use probe::ProbeListener;
pub use probe::{
    global_progress, progress_enabled, set_global_progress, validate_probe_json, HostProfiler,
    Inspectable, Introspect, ProbeRecorder, ProbeRegistry, Progress, PROBE_SCHEMA_NAME,
    PROBE_SCHEMA_VERSION,
};

/// Version stamped into every stats JSON document as `"version"`.
///
/// v2 added the optional `latency` (per-kernel per-stage percentiles from
/// [`ReqTracer`]) and `attribution` (per-kernel stall tables) sections.
/// v3 added `resilience.*` metric scopes (fault-injection recovery
/// counters), emitted only when a fault plan produced nonzero counts, so
/// fault-free documents differ from v2 only in this version field.
/// v4 added the optional `host_profile` sidecar (wall-clock attribution of
/// run-loop phases, opt-in via `--host-profile`), which is declared
/// nondeterministic: byte-determinism gates and `analyze --diff` exclude
/// it, and documents written without the flag differ from v3 only in this
/// version field.
/// v5 added per-resource occupancy counters (`occ_busy` / `occ_blocked` /
/// `occ_idle` / `occ_saturated` under every scatter-add unit, cache bank,
/// DRAM channel, and crossbar scope) and the optional derived `bottleneck`
/// section (see [`bottleneck::bottleneck_json`]): dominant-resource
/// classification, critical-path stage shares, and an analytic what-if
/// table. The section is deterministic and ordered before `host_profile`.
pub const STATS_SCHEMA_VERSION: u64 = 5;

/// Oldest stats schema version [`validate_stats_json`] still accepts.
///
/// Readers are backward compatible: every section added since v1 is
/// optional, so documents written by older tools (checked-in baselines,
/// archived runs) keep validating and diffing.
pub const STATS_SCHEMA_MIN_VERSION: u64 = 1;

/// Identifier stamped into every stats JSON document as `"schema"`.
pub const STATS_SCHEMA_NAME: &str = "sa-stats";

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A fixed-bucket histogram metric.
///
/// Buckets are caller-defined; the common case in this workspace is eight
/// equal-width occupancy buckets (octiles of a queue's capacity). The
/// `scheme` string documents the bucketing so downstream tooling can label
/// axes without guessing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramMetric {
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
    /// Human-readable description of the bucketing scheme.
    pub scheme: String,
}

impl HistogramMetric {
    /// Histogram from raw bucket counts.
    pub fn from_counts(counts: &[u64], scheme: &str) -> HistogramMetric {
        HistogramMetric {
            counts: counts.to_vec(),
            scheme: scheme.to_string(),
        }
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise sum with another histogram of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ in length.
    pub fn merge(&mut self, other: &HistogramMetric) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram bucket count mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A single metric value in the registry.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Monotonic event count; repeated records sum.
    Counter(u64),
    /// Point-in-time or derived value; repeated records overwrite.
    Gauge(f64),
    /// Fixed-bucket histogram; repeated records merge element-wise.
    Histogram(HistogramMetric),
}

/// Hierarchical metrics registry keyed by dotted paths.
///
/// Paths follow `node<N>.<component>.<instance>.<metric>` by convention, e.g.
/// `node0.cache.bank3.mshr_full` or `node0.dram.chan12.row_hits`. Components
/// record into the registry through [`Scope`], which prefixes a path segment
/// so callers never concatenate strings by hand.
///
/// ```
/// use sa_telemetry::{Metric, MetricsRegistry};
///
/// let mut reg = MetricsRegistry::new();
/// let mut node = reg.scope("node0");
/// let mut bank = node.scope("cache.bank3");
/// bank.counter("read_hits", 41);
/// bank.counter("read_hits", 1); // counters accumulate
/// assert_eq!(
///     reg.get("node0.cache.bank3.read_hits"),
///     Some(&Metric::Counter(42))
/// );
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A recording scope that prefixes `prefix` (plus a dot) to every path.
    pub fn scope<'a>(&'a mut self, prefix: &str) -> Scope<'a> {
        Scope {
            registry: self,
            prefix: prefix.to_string(),
        }
    }

    /// Add `value` to the counter at `path`, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-counter metric.
    pub fn counter(&mut self, path: &str, value: u64) {
        match self
            .metrics
            .entry(path.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += value,
            other => panic!("metric '{path}' is not a counter: {other:?}"),
        }
    }

    /// Set the gauge at `path`, overwriting any previous value.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-gauge metric.
    pub fn gauge(&mut self, path: &str, value: f64) {
        match self
            .metrics
            .entry(path.to_string())
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(g) => *g = value,
            other => panic!("metric '{path}' is not a gauge: {other:?}"),
        }
    }

    /// Merge `hist` into the histogram at `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-histogram metric or one with a
    /// different bucket count.
    pub fn histogram(&mut self, path: &str, hist: &HistogramMetric) {
        match self.metrics.entry(path.to_string()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(Metric::Histogram(hist.clone()));
            }
            std::collections::btree_map::Entry::Occupied(mut o) => match o.get_mut() {
                Metric::Histogram(h) => h.merge(hist),
                other => panic!("metric '{path}' is not a histogram: {other:?}"),
            },
        }
    }

    /// Look up a metric by its full path.
    pub fn get(&self, path: &str) -> Option<&Metric> {
        self.metrics.get(path)
    }

    /// The counter value at `path`, or zero if absent or not a counter.
    pub fn counter_value(&self, path: &str) -> u64 {
        match self.metrics.get(path) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Iterate metrics in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Serialize to a flat JSON object, keys in sorted order.
    ///
    /// Counters become JSON integers, gauges numbers, histograms objects of
    /// the form `{"buckets": [...], "scheme": "..."}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (path, metric) in &self.metrics {
            let value = match metric {
                Metric::Counter(c) => Json::UInt(*c),
                Metric::Gauge(g) => Json::Num(*g),
                Metric::Histogram(h) => {
                    let mut o = Json::obj();
                    o.push(
                        "buckets",
                        Json::Arr(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
                    );
                    o.push("scheme", Json::Str(h.scheme.clone()));
                    o
                }
            };
            obj.push(path, value);
        }
        obj
    }

    /// Rebuild a registry from the object layout [`to_json`](Self::to_json)
    /// writes: integers become counters, floats gauges,
    /// `{"buckets", "scheme"}` objects histograms.
    ///
    /// Exact inverse: the writer appends `.0` to integral floats, so the
    /// counter/gauge distinction survives a JSON round-trip and
    /// `from_json(reg.to_json()) == reg` byte-for-byte.
    pub fn from_json(doc: &Json) -> Result<MetricsRegistry, String> {
        let obj = doc.as_obj().ok_or("metrics document is not an object")?;
        let mut reg = MetricsRegistry::new();
        for (path, value) in obj {
            match value {
                Json::UInt(c) => reg.counter(path, *c),
                Json::Int(c) if *c >= 0 => reg.counter(path, *c as u64),
                Json::Num(g) => reg.gauge(path, *g),
                Json::Obj(_) => {
                    let buckets = value
                        .get("buckets")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| format!("metric '{path}': missing 'buckets'"))?;
                    let counts: Vec<u64> = buckets
                        .iter()
                        .map(|b| {
                            b.as_u64()
                                .ok_or_else(|| format!("metric '{path}': non-u64 bucket"))
                        })
                        .collect::<Result<_, _>>()?;
                    let scheme = value
                        .get("scheme")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("metric '{path}': missing 'scheme'"))?;
                    reg.histogram(path, &HistogramMetric::from_counts(&counts, scheme));
                }
                other => {
                    return Err(format!("metric '{path}': unsupported value {other:?}"));
                }
            }
        }
        Ok(reg)
    }

    /// Fold `other` into `self` with each metric kind's record semantics:
    /// counters add, gauges overwrite, histograms merge element-wise.
    ///
    /// Replaying per-point registries in point order therefore reproduces
    /// exactly what recording those points directly would have produced —
    /// the property the result cache's sweep integration relies on.
    ///
    /// # Panics
    ///
    /// Panics if a path holds different metric kinds in the two registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (path, metric) in other.iter() {
            match metric {
                Metric::Counter(c) => self.counter(path, *c),
                Metric::Gauge(g) => self.gauge(path, *g),
                Metric::Histogram(h) => self.histogram(path, h),
            }
        }
    }
}

/// A prefix-scoped view of a [`MetricsRegistry`].
pub struct Scope<'a> {
    registry: &'a mut MetricsRegistry,
    prefix: String,
}

impl Scope<'_> {
    /// A child scope nested one level deeper.
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        Scope {
            registry: self.registry,
            prefix: format!("{}.{}", self.prefix, name),
        }
    }

    /// Full registry path for `name` under this scope.
    pub fn path(&self, name: &str) -> String {
        format!("{}.{}", self.prefix, name)
    }

    /// Add to a counter under this scope.
    pub fn counter(&mut self, name: &str, value: u64) {
        let path = self.path(name);
        self.registry.counter(&path, value);
    }

    /// Set a gauge under this scope.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let path = self.path(name);
        self.registry.gauge(&path, value);
    }

    /// Merge a histogram under this scope.
    pub fn histogram(&mut self, name: &str, hist: &HistogramMetric) {
        let path = self.path(name);
        self.registry.histogram(&path, hist);
    }
}

// ---------------------------------------------------------------------------
// Cycle-sampled time series
// ---------------------------------------------------------------------------

/// Named time series sampled at a fixed cycle interval.
///
/// Components push one point per series per sample tick; the set remembers
/// the interval so exported JSON is self-describing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesSet {
    interval: u64,
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl SeriesSet {
    /// An empty set sampling every `interval` cycles (0 = sampling disabled).
    pub fn new(interval: u64) -> SeriesSet {
        SeriesSet {
            interval,
            series: BTreeMap::new(),
        }
    }

    /// The configured sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Append a `(cycle, value)` point to the series named `name`.
    pub fn push(&mut self, name: &str, cycle: u64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((cycle, value));
    }

    /// Iterate series in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(u64, f64)])> {
        self.series.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Serialize as `{"interval": N, "series": {name: [[cycle, value], ...]}}`.
    pub fn to_json(&self) -> Json {
        let mut names = Json::obj();
        for (name, points) in &self.series {
            names.push(
                name,
                Json::Arr(
                    points
                        .iter()
                        .map(|&(c, v)| Json::Arr(vec![Json::UInt(c), Json::Num(v)]))
                        .collect(),
                ),
            );
        }
        let mut obj = Json::obj();
        obj.push("interval", Json::UInt(self.interval));
        obj.push("series", names);
        obj
    }

    /// Rebuild a set from the layout [`to_json`](Self::to_json) writes.
    /// Exact inverse (cycle is a `u64`, value round-trips bit-exactly), so
    /// cached series re-serialize to identical bytes.
    pub fn from_json(doc: &Json) -> Result<SeriesSet, String> {
        let interval = doc
            .get("interval")
            .and_then(Json::as_u64)
            .ok_or("series document: missing 'interval'")?;
        let mut set = SeriesSet::new(interval);
        let names = doc
            .get("series")
            .and_then(Json::as_obj)
            .ok_or("series document: missing 'series' object")?;
        for (name, points) in names {
            let points = points
                .as_arr()
                .ok_or_else(|| format!("series '{name}': not an array"))?;
            for point in points {
                let pair = point
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("series '{name}': point is not a pair"))?;
                let cycle = pair[0]
                    .as_u64()
                    .ok_or_else(|| format!("series '{name}': non-u64 cycle"))?;
                let value = pair[1]
                    .as_f64()
                    .ok_or_else(|| format!("series '{name}': non-f64 value"))?;
                set.push(name, cycle, value);
            }
        }
        Ok(set)
    }
}

// ---------------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------------

/// Event-trace sink threaded through the hot simulation loop.
///
/// Implementations are selected at compile time (the simulator is generic
/// over `T: TraceSink`), so with [`NullTrace`] every call monomorphizes to an
/// empty inline function and the loop pays nothing. Guard any work needed to
/// *compute* an event's arguments behind [`TraceSink::enabled`] (or the
/// associated const `ENABLED`).
pub trait TraceSink {
    /// Compile-time flag: `false` only for the no-op sink.
    const ENABLED: bool = true;

    /// Runtime mirror of [`Self::ENABLED`].
    #[inline]
    fn enabled(&self) -> bool {
        Self::ENABLED
    }

    /// Record a counter sample on `track` (one Perfetto counter track per
    /// distinct `track.name` pair).
    fn counter(&mut self, track: &str, name: &str, cycle: u64, value: f64);

    /// Record a span `[start, end)` on `track`.
    fn span(&mut self, track: &str, name: &str, start: u64, end: u64);

    /// Record an instantaneous event on `track`.
    fn instant(&mut self, track: &str, name: &str, cycle: u64);
}

/// The always-off sink; all methods compile to nothing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    const ENABLED: bool = false;

    #[inline]
    fn counter(&mut self, _track: &str, _name: &str, _cycle: u64, _value: f64) {}

    #[inline]
    fn span(&mut self, _track: &str, _name: &str, _start: u64, _end: u64) {}

    #[inline]
    fn instant(&mut self, _track: &str, _name: &str, _cycle: u64) {}
}

/// Forwarding impl so callers can pass `&mut sink` down a call tree.
impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn counter(&mut self, track: &str, name: &str, cycle: u64, value: f64) {
        (**self).counter(track, name, cycle, value);
    }

    #[inline]
    fn span(&mut self, track: &str, name: &str, start: u64, end: u64) {
        (**self).span(track, name, start, end);
    }

    #[inline]
    fn instant(&mut self, track: &str, name: &str, cycle: u64) {
        (**self).instant(track, name, cycle);
    }
}

/// Chrome `trace_event` JSON sink.
///
/// Tracks map to threads: the first event on a track allocates a `tid` and
/// emits a `thread_name` metadata event, so Perfetto and `chrome://tracing`
/// show one named row per track. Counter samples use `"ph":"C"` with the
/// counter name `track.name`, which renders as one counter track per
/// instance (bank, channel, cluster). Timestamps are simulated cycles
/// reported in the trace's microsecond field.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
    tracks: BTreeMap<String, u64>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    fn tid(&mut self, track: &str) -> u64 {
        if let Some(&tid) = self.tracks.get(track) {
            return tid;
        }
        let tid = self.tracks.len() as u64 + 1;
        self.tracks.insert(track.to_string(), tid);
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            Json::Str(track.to_string()).to_string_compact()
        ));
        tid
    }

    /// Number of events recorded (excluding track metadata).
    pub fn event_count(&self) -> usize {
        self.events.len() - self.tracks.len()
    }

    /// The full trace as a JSON string (`{"traceEvents": [...]}`).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(ev);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Write the trace to `path`.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.to_json_string().as_bytes())
    }
}

impl TraceSink for ChromeTrace {
    fn counter(&mut self, track: &str, name: &str, cycle: u64, value: f64) {
        let tid = self.tid(track);
        let counter = Json::Str(format!("{track}.{name}")).to_string_compact();
        let value = Json::Num(value).to_string_compact();
        self.events.push(format!(
            "{{\"ph\":\"C\",\"name\":{counter},\"pid\":0,\"tid\":{tid},\
             \"ts\":{cycle},\"args\":{{\"value\":{value}}}}}"
        ));
    }

    fn span(&mut self, track: &str, name: &str, start: u64, end: u64) {
        let tid = self.tid(track);
        let name = Json::Str(name.to_string()).to_string_compact();
        let dur = end.saturating_sub(start).max(1);
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":{name},\"pid\":0,\"tid\":{tid},\
             \"ts\":{start},\"dur\":{dur}}}"
        ));
    }

    fn instant(&mut self, track: &str, name: &str, cycle: u64) {
        let tid = self.tid(track);
        let name = Json::Str(name.to_string()).to_string_compact();
        self.events.push(format!(
            "{{\"ph\":\"i\",\"name\":{name},\"pid\":0,\"tid\":{tid},\
             \"ts\":{cycle},\"s\":\"t\"}}"
        ));
    }
}

// ---------------------------------------------------------------------------
// Request-lifecycle tracing
// ---------------------------------------------------------------------------

/// Lifecycle stages of a memory/scatter-add request, in pipeline order.
///
/// Not every request visits every stage: a read hit never touches the MSHR
/// file or DRAM, a combined scatter-add never issues its own fill, and the
/// crossbar only appears on multi-node runs. Stage *durations* are derived
/// from consecutive stamps, so absent stages simply contribute nothing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReqStage {
    /// Presented by the address generator (first injection attempt).
    Issued,
    /// Accepted into a bank input queue.
    Enqueued,
    /// Injected into the inter-node crossbar (multi-node runs only).
    Crossbar,
    /// Won cache-bank arbitration (the bank port accepted the access).
    BankArb,
    /// Allocated or merged into an MSHR (cache miss path).
    Mshr,
    /// Accepted into the combining store of a scatter-add unit.
    CombStore,
    /// Entered the scatter-add functional-unit pipeline.
    FuPipe,
    /// Submitted to a DRAM channel.
    Dram,
    /// Reply delivered / acknowledgement posted.
    Retired,
}

impl ReqStage {
    /// All stages in pipeline order.
    pub const ALL: [ReqStage; 9] = [
        ReqStage::Issued,
        ReqStage::Enqueued,
        ReqStage::Crossbar,
        ReqStage::BankArb,
        ReqStage::Mshr,
        ReqStage::CombStore,
        ReqStage::FuPipe,
        ReqStage::Dram,
        ReqStage::Retired,
    ];

    /// Stable snake_case name used in stats documents and trace spans.
    /// Indexes the shared [`STAGE_NAMES`] table (one source of truth with
    /// the attribution renderers).
    pub fn name(self) -> &'static str {
        STAGE_NAMES[self as usize]
    }
}

/// The timestamped lifecycle of one sampled request.
///
/// Stamps are appended in simulation order, so their cycles are monotonically
/// non-decreasing; each stage appears at most once (the first occurrence
/// wins, which makes retried operations measure their *initial* attempt).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReqRecord {
    /// The request id (`MemRequest::id` in `sa-sim` terms).
    pub id: u64,
    /// The node whose address generator issued the request.
    pub node: usize,
    /// `(stage, cycle)` stamps in the order they occurred.
    pub stamps: Vec<(ReqStage, u64)>,
}

impl ReqRecord {
    fn add_stamp(&mut self, stage: ReqStage, cycle: u64) {
        if !self.stamps.iter().any(|&(s, _)| s == stage) {
            self.stamps.push((stage, cycle));
        }
    }

    /// The cycle a stage was stamped, if the request visited it.
    pub fn stamp_at(&self, stage: ReqStage) -> Option<u64> {
        self.stamps
            .iter()
            .find(|&&(s, _)| s == stage)
            .map(|&(_, c)| c)
    }

    /// Whether a [`ReqStage::Retired`] stamp is present.
    pub fn is_retired(&self) -> bool {
        self.stamp_at(ReqStage::Retired).is_some()
    }

    /// Cycles from the first stamp to the last.
    pub fn end_to_end(&self) -> u64 {
        match (self.stamps.first(), self.stamps.last()) {
            (Some(&(_, first)), Some(&(_, last))) => last.saturating_sub(first),
            _ => 0,
        }
    }
}

/// Records the lifecycle of a deterministic 1-in-N sample of requests.
///
/// The tracer is runtime-gated rather than monomorphized: with `sample == 0`
/// (the [`ReqTracer::off`] default) every call short-circuits on a single
/// integer compare, so the hot loop pays nothing when request tracing is
/// disabled. Sampling selects ids with `id % sample == 0`, which is
/// deterministic and independent of timing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReqTracer {
    sample: u64,
    live: BTreeMap<u64, ReqRecord>,
    retired: BTreeMap<u64, ReqRecord>,
}

impl ReqTracer {
    /// A disabled tracer; every call is a no-op.
    pub fn off() -> ReqTracer {
        ReqTracer::default()
    }

    /// A tracer sampling one in `sample` requests (0 disables).
    pub fn every(sample: u64) -> ReqTracer {
        ReqTracer {
            sample,
            live: BTreeMap::new(),
            retired: BTreeMap::new(),
        }
    }

    /// The sampling interval (0 = off).
    pub fn sample(&self) -> u64 {
        self.sample
    }

    /// Whether any request will be recorded.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.sample != 0
    }

    /// Whether `id` falls in the sample.
    #[inline]
    pub fn wants(&self, id: u64) -> bool {
        self.sample != 0 && id.is_multiple_of(self.sample)
    }

    /// Begin a record for `id` with an [`ReqStage::Issued`] stamp.
    ///
    /// Idempotent: re-issuing a live or already-retired id (a retried
    /// injection) is a no-op, so the stamp reflects the first attempt.
    #[inline]
    pub fn issue(&mut self, id: u64, node: usize, cycle: u64) {
        if !self.wants(id) {
            return;
        }
        self.issue_slow(id, node, cycle);
    }

    fn issue_slow(&mut self, id: u64, node: usize, cycle: u64) {
        if self.retired.contains_key(&id) {
            return;
        }
        self.live.entry(id).or_insert_with(|| ReqRecord {
            id,
            node,
            stamps: vec![(ReqStage::Issued, cycle)],
        });
    }

    /// Stamp `stage` on a live record; first occurrence wins. No-op for ids
    /// outside the sample or not (or no longer) live, so repurposed ids that
    /// outlive their request are harmless.
    #[inline]
    pub fn stamp(&mut self, id: u64, stage: ReqStage, cycle: u64) {
        if self.sample == 0 {
            return;
        }
        if let Some(rec) = self.live.get_mut(&id) {
            rec.add_stamp(stage, cycle);
        }
    }

    /// Move a live record to the retired set with a [`ReqStage::Retired`]
    /// stamp, returning it for streaming span emission.
    #[inline]
    pub fn retire(&mut self, id: u64, cycle: u64) -> Option<&ReqRecord> {
        if self.sample == 0 {
            return None;
        }
        let mut rec = self.live.remove(&id)?;
        rec.add_stamp(ReqStage::Retired, cycle);
        Some(self.retired.entry(id).or_insert(rec))
    }

    /// Number of sampled requests issued (live + retired).
    pub fn issued_len(&self) -> u64 {
        (self.live.len() + self.retired.len()) as u64
    }

    /// Number of sampled requests still in flight.
    pub fn live_len(&self) -> u64 {
        self.live.len() as u64
    }

    /// Number of sampled requests retired.
    pub fn retired_len(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Retired records in ascending id order.
    pub fn retired_records(&self) -> impl Iterator<Item = &ReqRecord> {
        self.retired.values()
    }

    /// Merge another tracer's records into this one (multi-node runs, where
    /// each node stamps the portion of a request's life it observes).
    ///
    /// Records with the same id are combined: stamps are concatenated,
    /// stably sorted by cycle, and deduplicated per stage keeping the
    /// earliest. A record is retired iff either side saw retirement.
    pub fn absorb(&mut self, other: ReqTracer) {
        if other.sample != 0 && self.sample == 0 {
            self.sample = other.sample;
        }
        for rec in other.live.into_values().chain(other.retired.into_values()) {
            let id = rec.id;
            let existing = match self.live.remove(&id) {
                Some(e) => Some(e),
                None => self.retired.remove(&id),
            };
            let merged = match existing {
                None => rec,
                Some(mut e) => {
                    e.stamps.extend(rec.stamps);
                    e.stamps.sort_by_key(|&(_, c)| c);
                    let mut seen = Vec::new();
                    e.stamps.retain(|&(s, _)| {
                        if seen.contains(&s) {
                            false
                        } else {
                            seen.push(s);
                            true
                        }
                    });
                    e
                }
            };
            if merged.is_retired() {
                self.retired.insert(id, merged);
            } else {
                self.live.insert(id, merged);
            }
        }
    }

    /// The per-stage and end-to-end latency report over retired records, as
    /// the `latency.<kernel>` object of a v2 stats document.
    ///
    /// A stage's duration in one record is the gap to the *next* stamp; its
    /// `share_pct` is the stage's summed duration as a percentage of the
    /// summed end-to-end latency — the critical-path attribution table.
    pub fn latency_json(&self) -> Json {
        let mut per_stage: Vec<Vec<u64>> = vec![Vec::new(); ReqStage::ALL.len()];
        let mut end_to_end: Vec<u64> = Vec::new();
        for rec in self.retired.values() {
            for pair in rec.stamps.windows(2) {
                let (stage, start) = pair[0];
                let (_, end) = pair[1];
                per_stage[stage as usize].push(end.saturating_sub(start));
            }
            end_to_end.push(rec.end_to_end());
        }
        let total_e2e: u64 = end_to_end.iter().sum();
        let mut stages = Json::obj();
        for stage in ReqStage::ALL {
            let durations = std::mem::take(&mut per_stage[stage as usize]);
            if let Some(summary) = LatencySummary::from_durations(durations) {
                let mut o = summary.to_json();
                let share = if total_e2e == 0 {
                    0.0
                } else {
                    summary.total as f64 * 100.0 / total_e2e as f64
                };
                o.push("share_pct", Json::Num(share));
                stages.push(stage.name(), o);
            }
        }
        let mut out = Json::obj();
        out.push("sample", Json::UInt(self.sample));
        out.push("issued", Json::UInt(self.issued_len()));
        out.push("retired", Json::UInt(self.retired_len()));
        out.push("stages", stages);
        if let Some(summary) = LatencySummary::from_durations(end_to_end) {
            out.push("end_to_end", summary.to_json());
        }
        out
    }
}

/// Percentile summary of a set of cycle durations.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub total: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observation.
    pub max: u64,
}

impl LatencySummary {
    /// Summarize `durations` (consumed and sorted); `None` if empty.
    ///
    /// Percentiles use the nearest-rank index `(len - 1) * p / 100` on the
    /// sorted data, so `p50` of a single observation is that observation.
    pub fn from_durations(mut durations: Vec<u64>) -> Option<LatencySummary> {
        if durations.is_empty() {
            return None;
        }
        durations.sort_unstable();
        let idx = |p: u64| durations[((durations.len() - 1) as u64 * p / 100) as usize];
        Some(LatencySummary {
            count: durations.len() as u64,
            total: durations.iter().sum(),
            p50: idx(50),
            p90: idx(90),
            p99: idx(99),
            max: *durations.last().expect("nonempty"),
        })
    }

    /// As a `{"count", "total", "p50", "p90", "p99", "max"}` object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("count", Json::UInt(self.count));
        o.push("total", Json::UInt(self.total));
        o.push("p50", Json::UInt(self.p50));
        o.push("p90", Json::UInt(self.p90));
        o.push("p99", Json::UInt(self.p99));
        o.push("max", Json::UInt(self.max));
        o
    }
}

/// Emit one span per stage of `record` onto `sink`, on the per-request track
/// `node<N>.req<ID>`.
///
/// The node id in the track name keeps multi-node traces from interleaving
/// requests of different nodes into one Perfetto lane.
pub fn emit_req_spans<T: TraceSink>(record: &ReqRecord, sink: &mut T) {
    if !sink.enabled() {
        return;
    }
    let track = format!("node{}.req{}", record.node, record.id);
    for pair in record.stamps.windows(2) {
        let (stage, start) = pair[0];
        let (_, end) = pair[1];
        sink.span(&track, stage.name(), start, end);
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// A JSON value with deterministic serialization.
///
/// Integers keep their signedness ([`Json::Int`]/[`Json::UInt`]) so counters
/// round-trip exactly; objects preserve insertion order. Non-finite floats
/// serialize as `null`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counters).
    UInt(u64),
    /// Floating-point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            other => panic!("Json::push on non-object: {other:?}"),
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's key/value pairs if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip Display; force a fractional part so
                    // the value parses back as a float, not an integer.
                    let start = out.len();
                    let _ = write!(out, "{n}");
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_compact(out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=indent {
                        out.push_str(PAD);
                    }
                    Json::Str(k.clone()).write_compact(out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                for _ in 0..indent {
                    out.push_str(PAD);
                }
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Serialize without whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if tok.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if !tok.contains(['.', 'e', 'E']) {
        if let Ok(i) = tok.parse::<i64>() {
            return Ok(if i >= 0 {
                Json::UInt(i as u64)
            } else {
                Json::Int(i)
            });
        }
        if let Ok(u) = tok.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    tok.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{tok}' at byte {start}"))
}

// ---------------------------------------------------------------------------
// Versioned stats documents
// ---------------------------------------------------------------------------

/// Assemble a versioned stats document.
///
/// Layout:
///
/// ```json
/// {
///   "schema": "sa-stats",
///   "version": 3,
///   "bench": "fig6",
///   "config": { ... },
///   "metrics": { "node0.cache.bank0.read_hits": 123, ... },
///   "series": { "interval": 256, "series": { ... } },
///   "latency": { "<kernel>": { "sample": 64, "stages": { ... }, ... } },
///   "attribution": { "<kernel>": { "cycles": 1234, "mshr_full": { ... } } },
///   "rows": [ {"label": "...", "cells": {"col": "val"}}, ... ]
/// }
/// ```
///
/// `latency` and `attribution` (new in v2) are optional; [`stats_json`]
/// omits them, [`stats_json_with`] takes them explicitly.
pub fn stats_json(
    bench: &str,
    config: Json,
    metrics: &MetricsRegistry,
    series: Option<&SeriesSet>,
    rows: Json,
) -> Json {
    stats_json_with(bench, config, metrics, series, None, None, rows)
}

/// [`stats_json`] plus the v2 `latency` and `attribution` sections: objects
/// keyed by kernel name holding [`ReqTracer::latency_json`] reports and
/// stall-attribution tables respectively.
pub fn stats_json_with(
    bench: &str,
    config: Json,
    metrics: &MetricsRegistry,
    series: Option<&SeriesSet>,
    latency: Option<Json>,
    attribution: Option<Json>,
    rows: Json,
) -> Json {
    stats_json_full(
        bench,
        config,
        metrics,
        series,
        latency,
        attribution,
        None,
        rows,
    )
}

/// [`stats_json_with`] plus the v4 `host_profile` sidecar: a
/// [`HostProfiler::to_json`] report attributing host wall-clock to run-loop
/// phases. The sidecar is nondeterministic by declaration — timing-metric
/// extraction ([`crate`]-external diff tooling) and byte-determinism gates
/// must exclude it, which is why it is opt-in rather than always present.
#[allow(clippy::too_many_arguments)]
pub fn stats_json_full(
    bench: &str,
    config: Json,
    metrics: &MetricsRegistry,
    series: Option<&SeriesSet>,
    latency: Option<Json>,
    attribution: Option<Json>,
    host_profile: Option<Json>,
    rows: Json,
) -> Json {
    let mut doc = Json::obj();
    doc.push("schema", Json::Str(STATS_SCHEMA_NAME.to_string()));
    doc.push("version", Json::UInt(STATS_SCHEMA_VERSION));
    doc.push("bench", Json::Str(bench.to_string()));
    doc.push("config", config);
    doc.push("metrics", metrics.to_json());
    if let Some(s) = series {
        doc.push("series", s.to_json());
    }
    if let Some(l) = latency {
        doc.push("latency", l);
    }
    if let Some(a) = attribution {
        doc.push("attribution", a);
    }
    if let Some(h) = host_profile {
        doc.push("host_profile", h);
    }
    doc.push("rows", rows);
    doc
}

/// Structural schema check for a stats document produced by [`stats_json`].
///
/// Verifies the schema tag and version, that `bench` is a string, that
/// `metrics` is an object whose values are numbers or `{buckets, scheme}`
/// histogram objects, that `series` (if present) is well-formed, and that
/// `rows` is an array of objects. Returns a description of the first
/// violation found.
pub fn validate_stats_json(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema'")?;
    if schema != STATS_SCHEMA_NAME {
        return Err(format!(
            "schema is '{schema}', expected '{STATS_SCHEMA_NAME}'"
        ));
    }
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing 'version'")?;
    if !(STATS_SCHEMA_MIN_VERSION..=STATS_SCHEMA_VERSION).contains(&version) {
        return Err(format!(
            "version is {version}, expected {STATS_SCHEMA_MIN_VERSION}..={STATS_SCHEMA_VERSION}"
        ));
    }
    doc.get("bench")
        .and_then(Json::as_str)
        .ok_or("missing 'bench'")?;
    doc.get("config").ok_or("missing 'config'")?;
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_obj)
        .ok_or("'metrics' missing or not an object")?;
    for (path, value) in metrics {
        let ok = value.as_f64().is_some()
            || value
                .get("buckets")
                .and_then(Json::as_arr)
                .is_some_and(|b| b.iter().all(|x| x.as_u64().is_some()));
        if !ok {
            return Err(format!("metric '{path}' is neither numeric nor histogram"));
        }
    }
    if let Some(series) = doc.get("series") {
        series
            .get("interval")
            .and_then(Json::as_u64)
            .ok_or("'series.interval' missing")?;
        let names = series
            .get("series")
            .and_then(Json::as_obj)
            .ok_or("'series.series' missing or not an object")?;
        for (name, points) in names {
            let points = points
                .as_arr()
                .ok_or_else(|| format!("series '{name}' is not an array"))?;
            for p in points {
                let ok = p.as_arr().is_some_and(|pair| {
                    pair.len() == 2 && pair[0].as_u64().is_some() && pair[1].as_f64().is_some()
                });
                if !ok {
                    return Err(format!("series '{name}' has a malformed point"));
                }
            }
        }
    }
    if let Some(latency) = doc.get("latency") {
        let kernels = latency.as_obj().ok_or("'latency' is not an object")?;
        for (kernel, report) in kernels {
            for field in ["sample", "issued", "retired"] {
                report
                    .get(field)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("latency '{kernel}' missing numeric '{field}'"))?;
            }
            let stages = report
                .get("stages")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("latency '{kernel}' missing 'stages' object"))?;
            let summaries = stages
                .iter()
                .map(|(n, s)| (n.as_str(), s))
                .chain(report.get("end_to_end").map(|s| ("end_to_end", s)));
            for (name, summary) in summaries {
                for field in ["count", "total", "p50", "p90", "p99", "max"] {
                    summary.get(field).and_then(Json::as_u64).ok_or_else(|| {
                        format!("latency '{kernel}.{name}' missing numeric '{field}'")
                    })?;
                }
            }
        }
    }
    if let Some(attribution) = doc.get("attribution") {
        let kernels = attribution
            .as_obj()
            .ok_or("'attribution' is not an object")?;
        for (kernel, table) in kernels {
            table
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("attribution '{kernel}' missing numeric 'cycles'"))?;
            for (cause, entry) in table.as_obj().into_iter().flatten() {
                if cause == "cycles" {
                    continue;
                }
                let ok = entry.get("events").and_then(Json::as_u64).is_some()
                    && entry.get("pct").and_then(Json::as_f64).is_some();
                if !ok {
                    return Err(format!(
                        "attribution '{kernel}.{cause}' is not an {{events, pct}} object"
                    ));
                }
            }
        }
    }
    if let Some(bottleneck) = doc.get("bottleneck") {
        validate_bottleneck_json(bottleneck)?;
    }
    if let Some(profile) = doc.get("host_profile") {
        profile
            .get("total_ns")
            .and_then(Json::as_u64)
            .ok_or("'host_profile' missing numeric 'total_ns'")?;
        let phases = profile
            .get("phases")
            .and_then(Json::as_obj)
            .ok_or("'host_profile.phases' missing or not an object")?;
        for (phase, entry) in phases {
            let ok = entry.get("calls").and_then(Json::as_u64).is_some()
                && entry.get("ns").and_then(Json::as_u64).is_some()
                && entry.get("pct").and_then(Json::as_f64).is_some();
            if !ok {
                return Err(format!(
                    "host_profile phase '{phase}' is not a {{calls, ns, pct}} object"
                ));
            }
        }
    }
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("'rows' missing or not an array")?;
    for row in rows {
        if row.as_obj().is_none() {
            return Err("row is not an object".to_string());
        }
    }
    Ok(())
}

/// Whether any metric path in `doc` contains `needle` (substring match).
pub fn has_metric_matching(doc: &Json, needle: &str) -> bool {
    doc.get("metrics")
        .and_then(Json::as_obj)
        .is_some_and(|m| m.iter().any(|(path, _)| path.contains(needle)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counters_accumulate_and_sort() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b.second", 2);
        reg.counter("a.first", 1);
        reg.counter("b.second", 3);
        let paths: Vec<&str> = reg.iter().map(|(p, _)| p).collect();
        assert_eq!(paths, ["a.first", "b.second"]);
        assert_eq!(reg.counter_value("b.second"), 5);
        assert_eq!(reg.counter_value("absent"), 0);
    }

    #[test]
    fn scope_nesting_builds_paths() {
        let mut reg = MetricsRegistry::new();
        {
            let mut node = reg.scope("node0");
            let mut bank = node.scope("cache.bank3");
            bank.counter("mshr_full", 7);
            bank.gauge("hit_rate", 0.5);
        }
        assert_eq!(
            reg.get("node0.cache.bank3.mshr_full"),
            Some(&Metric::Counter(7))
        );
        assert_eq!(
            reg.get("node0.cache.bank3.hit_rate"),
            Some(&Metric::Gauge(0.5))
        );
    }

    #[test]
    fn histograms_merge_elementwise() {
        let mut reg = MetricsRegistry::new();
        let h1 = HistogramMetric::from_counts(&[1, 0, 2], "octile");
        let h2 = HistogramMetric::from_counts(&[0, 5, 1], "octile");
        reg.histogram("q.occ", &h1);
        reg.histogram("q.occ", &h2);
        match reg.get("q.occ") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.counts, vec![1, 5, 3]);
                assert_eq!(h.total(), 9);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("x", 1.0);
        reg.counter("x", 1);
    }

    #[test]
    fn series_round_trip() {
        let mut s = SeriesSet::new(64);
        s.push("node0.sa.occupancy", 0, 0.0);
        s.push("node0.sa.occupancy", 64, 3.5);
        let json = s.to_json();
        assert_eq!(json.get("interval").and_then(Json::as_u64), Some(64));
        let pts = json
            .get("series")
            .and_then(|n| n.get("node0.sa.occupancy"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn null_trace_is_disabled() {
        const { assert!(!NullTrace::ENABLED) }
        assert!(!NullTrace.enabled());
        let mut t = NullTrace;
        t.counter("x", "y", 0, 1.0);
        t.span("x", "y", 0, 5);
        t.instant("x", "y", 0);
    }

    #[test]
    fn chrome_trace_names_tracks() {
        let mut t = ChromeTrace::new();
        t.counter("node0.cache.bank0", "occupancy", 0, 1.0);
        t.counter("node0.cache.bank1", "occupancy", 0, 2.0);
        t.counter("node0.cache.bank0", "occupancy", 64, 3.0);
        t.span("node0.dram.chan0", "burst", 10, 20);
        let text = t.to_json_string();
        let doc = Json::parse(&text).expect("trace is valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let metas = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        assert_eq!(metas, 3, "one thread_name per track");
        let counters: std::collections::BTreeSet<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(counters.len(), 2, "one counter name per bank");
        assert_eq!(t.event_count(), 4);
    }

    #[test]
    fn json_round_trip() {
        let mut obj = Json::obj();
        obj.push("a", Json::UInt(42));
        obj.push("b", Json::Int(-7));
        obj.push("c", Json::Num(0.25));
        obj.push("d", Json::Str("hi \"there\"\n".to_string()));
        obj.push("e", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = obj.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("a").and_then(Json::as_u64), Some(42));
        assert_eq!(back.get("b"), Some(&Json::Int(-7)));
        assert_eq!(back.get("c").and_then(Json::as_f64), Some(0.25));
        assert_eq!(back.get("d").and_then(Json::as_str), Some("hi \"there\"\n"));
        assert_eq!(
            back.get("e").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn json_num_always_has_fraction() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3.0");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Num(3.0));
        assert_eq!(Json::parse("3").unwrap(), Json::UInt(3));
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
    }

    #[test]
    fn stats_doc_validates() {
        let mut reg = MetricsRegistry::new();
        reg.counter("node0.sa.accepted", 10);
        reg.gauge("node0.cache.hit_rate", 0.9);
        reg.histogram(
            "node0.queue.bank_in.occ",
            &HistogramMetric::from_counts(&[1, 2], "octile"),
        );
        let mut series = SeriesSet::new(16);
        series.push("node0.dram.util", 16, 0.5);
        let doc = stats_json(
            "fig6",
            Json::obj(),
            &reg,
            Some(&series),
            Json::Arr(vec![Json::obj()]),
        );
        validate_stats_json(&doc).expect("valid");
        assert!(has_metric_matching(&doc, ".sa."));
        assert!(has_metric_matching(&doc, ".cache."));
        assert!(!has_metric_matching(&doc, ".net."));
        // Round-trip through text stays valid.
        let back = Json::parse(&doc.to_string_pretty()).unwrap();
        validate_stats_json(&back).expect("valid after round-trip");
    }

    #[test]
    fn stats_doc_rejects_bad_version() {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str("sa-stats".to_string()));
        doc.push("version", Json::UInt(99));
        assert!(validate_stats_json(&doc).unwrap_err().contains("version"));
    }

    #[test]
    fn req_tracer_off_is_inert() {
        let mut t = ReqTracer::off();
        assert!(!t.is_on());
        t.issue(0, 0, 5);
        t.stamp(0, ReqStage::Enqueued, 6);
        assert!(t.retire(0, 7).is_none());
        assert_eq!(t.issued_len(), 0);
    }

    #[test]
    fn req_tracer_samples_and_stamps_in_order() {
        let mut t = ReqTracer::every(2);
        for id in 0..4u64 {
            t.issue(id, 0, 10 + id);
        }
        assert_eq!(t.issued_len(), 2, "only even ids sampled");
        t.issue(0, 0, 99); // retried injection: idempotent
        t.stamp(0, ReqStage::Enqueued, 12);
        t.stamp(0, ReqStage::BankArb, 14);
        t.stamp(0, ReqStage::BankArb, 20); // first occurrence wins
        t.stamp(1, ReqStage::Enqueued, 12); // unsampled: ignored
        let rec = t.retire(0, 30).expect("live").clone();
        assert_eq!(
            rec.stamps,
            vec![
                (ReqStage::Issued, 10),
                (ReqStage::Enqueued, 12),
                (ReqStage::BankArb, 14),
                (ReqStage::Retired, 30),
            ]
        );
        assert_eq!(rec.end_to_end(), 20);
        assert!(rec.is_retired());
        assert_eq!(t.live_len(), 1);
        assert_eq!(t.retired_len(), 1);
        // Post-retirement stamps on a reused id are dropped.
        t.stamp(0, ReqStage::Dram, 40);
        t.issue(0, 0, 41);
        assert_eq!(t.retired_records().next().unwrap().stamps.len(), 4);
    }

    #[test]
    fn req_tracer_absorb_merges_partial_records() {
        // Node-side tracer saw issue + crossbar; home-node tracer saw the
        // rest. The merged record is ordered and retired.
        let mut a = ReqTracer::every(1);
        a.issue(7, 1, 100);
        a.stamp(7, ReqStage::Crossbar, 105);
        let mut b = ReqTracer::every(1);
        b.issue(7, 1, 110); // arrival at home node
        b.stamp(7, ReqStage::Enqueued, 110);
        b.retire(7, 150);
        a.absorb(b);
        assert_eq!(a.retired_len(), 1);
        assert_eq!(a.live_len(), 0);
        let rec = a.retired_records().next().unwrap();
        assert_eq!(
            rec.stamps,
            vec![
                (ReqStage::Issued, 100),
                (ReqStage::Crossbar, 105),
                (ReqStage::Enqueued, 110),
                (ReqStage::Retired, 150),
            ]
        );
        let cycles: Vec<u64> = rec.stamps.iter().map(|&(_, c)| c).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::from_durations((1..=100).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.total, 5050);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!(LatencySummary::from_durations(vec![]).is_none());
        let one = LatencySummary::from_durations(vec![42]).unwrap();
        assert_eq!((one.p50, one.p99, one.max), (42, 42, 42));
    }

    #[test]
    fn latency_json_attributes_stages() {
        let mut t = ReqTracer::every(1);
        for id in 0..10u64 {
            t.issue(id, 0, 0);
            t.stamp(id, ReqStage::Enqueued, 2);
            t.stamp(id, ReqStage::CombStore, 5);
            t.retire(id, 25);
        }
        let j = t.latency_json();
        assert_eq!(j.get("issued").and_then(Json::as_u64), Some(10));
        assert_eq!(j.get("retired").and_then(Json::as_u64), Some(10));
        let stages = j.get("stages").unwrap();
        let comb = stages.get("comb_store").unwrap();
        assert_eq!(comb.get("p50").and_then(Json::as_u64), Some(20));
        // 20 of 25 end-to-end cycles sit in the combining store.
        assert_eq!(comb.get("share_pct").and_then(Json::as_f64), Some(80.0));
        let e2e = j.get("end_to_end").unwrap();
        assert_eq!(e2e.get("max").and_then(Json::as_u64), Some(25));
        // The report embeds in a valid v2 document.
        let mut latency = Json::obj();
        latency.push("kern", j);
        let doc = stats_json_with(
            "t",
            Json::obj(),
            &MetricsRegistry::new(),
            None,
            Some(latency),
            None,
            Json::Arr(vec![]),
        );
        validate_stats_json(&doc).expect("valid v2 document");
    }

    #[test]
    fn attribution_section_validates() {
        let mut table = Json::obj();
        table.push("cycles", Json::UInt(100));
        let mut cause = Json::obj();
        cause.push("events", Json::UInt(7));
        cause.push("pct", Json::Num(7.0));
        table.push("mshr_full", cause);
        let mut attribution = Json::obj();
        attribution.push("kern", table);
        let doc = stats_json_with(
            "t",
            Json::obj(),
            &MetricsRegistry::new(),
            None,
            None,
            Some(attribution),
            Json::Arr(vec![]),
        );
        validate_stats_json(&doc).expect("valid");
        // A malformed cause entry is rejected.
        let mut bad = Json::obj();
        bad.push("cycles", Json::UInt(100));
        bad.push("mshr_full", Json::UInt(7));
        let mut attribution = Json::obj();
        attribution.push("kern", bad);
        let doc = stats_json_with(
            "t",
            Json::obj(),
            &MetricsRegistry::new(),
            None,
            None,
            Some(attribution),
            Json::Arr(vec![]),
        );
        assert!(validate_stats_json(&doc).is_err());
    }

    #[test]
    fn req_spans_use_node_scoped_tracks() {
        let mut t = ReqTracer::every(1);
        t.issue(3, 2, 0);
        t.stamp(3, ReqStage::Enqueued, 4);
        let rec = t.retire(3, 9).unwrap().clone();
        let mut sink = ChromeTrace::new();
        emit_req_spans(&rec, &mut sink);
        let text = sink.to_json_string();
        assert!(text.contains("node2.req3"), "track carries the node id");
        let doc = Json::parse(&text).unwrap();
        let spans = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        assert_eq!(spans, 2, "one span per stamped stage transition");
    }

    #[test]
    fn serialization_is_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.counter("z.last", 3);
            reg.counter("a.first", 1);
            reg.gauge("m.mid", 0.125);
            let mut series = SeriesSet::new(8);
            series.push("s.one", 8, 1.5);
            stats_json("det", Json::obj(), &reg, Some(&series), Json::Arr(vec![]))
                .to_string_pretty()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn registry_json_round_trip_is_exact() {
        let mut reg = MetricsRegistry::new();
        reg.counter("node0.sa.accepted", 42);
        reg.gauge("node0.util", 3.0); // integral gauge: the ".0" suffix must survive
        reg.gauge("node0.frac", 0.1234567890123);
        reg.histogram(
            "node0.queue.occ",
            &HistogramMetric::from_counts(&[1, 0, 7], "octiles"),
        );
        let doc = reg.to_json();
        let back = MetricsRegistry::from_json(&doc).unwrap();
        assert_eq!(back, reg);
        assert_eq!(back.to_json().to_string_compact(), doc.to_string_compact());
        // And through actual text, where the counter/gauge distinction
        // depends on the writer's integral-float convention.
        let reparsed = Json::parse(&doc.to_string_compact()).unwrap();
        let back2 = MetricsRegistry::from_json(&reparsed).unwrap();
        assert_eq!(back2, reg);
    }

    #[test]
    fn registry_merge_matches_direct_recording() {
        let mut direct = MetricsRegistry::new();
        direct.counter("a.hits", 3);
        direct.counter("a.hits", 4);
        direct.gauge("a.util", 0.5);
        direct.gauge("a.util", 0.75);
        direct.histogram("a.occ", &HistogramMetric::from_counts(&[1, 2], "b"));
        direct.histogram("a.occ", &HistogramMetric::from_counts(&[3, 0], "b"));

        let mut first = MetricsRegistry::new();
        first.counter("a.hits", 3);
        first.gauge("a.util", 0.5);
        first.histogram("a.occ", &HistogramMetric::from_counts(&[1, 2], "b"));
        let mut second = MetricsRegistry::new();
        second.counter("a.hits", 4);
        second.gauge("a.util", 0.75);
        second.histogram("a.occ", &HistogramMetric::from_counts(&[3, 0], "b"));

        let mut merged = MetricsRegistry::new();
        merged.merge(&first);
        merged.merge(&second);
        assert_eq!(merged, direct);
    }

    #[test]
    fn series_json_round_trip_is_exact() {
        let mut series = SeriesSet::new(64);
        series.push("node0.busy", 64, 0.25);
        series.push("node0.busy", 128, 1.0);
        series.push("net.flits", 64, 17.0);
        let doc = series.to_json();
        let back = SeriesSet::from_json(&doc).unwrap();
        assert_eq!(back, series);
        let reparsed = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(
            SeriesSet::from_json(&reparsed)
                .unwrap()
                .to_json()
                .to_string_compact(),
            doc.to_string_compact()
        );
    }
}
