//! Live introspection: point-in-time component snapshots (`sa-probe`),
//! streaming progress heartbeats, and host-time self-profiling.
//!
//! Three layers, all optional and all zero-cost when off:
//!
//! * **Probes** — every ticked component implements [`Inspectable`] and can
//!   render a cheap snapshot of its *current* state (queue depths, MSHR and
//!   combining-store occupancy, in-flight counts) as JSON. A run loop
//!   collects them through a [`ProbeRegistry`] at a fixed simulated-cycle
//!   cadence driven by a [`ProbeRecorder`]. Snapshots are part of the
//!   simulation's deterministic surface: at a fixed cadence the rendered
//!   bytes are identical across `--jobs`, `--step-threads` and
//!   `--fast-forward` (modulo the `skipped_cycles` tally, exactly like the
//!   stats documents).
//! * **Progress** — a [`Progress`] handle emits NDJSON heartbeat/point
//!   events to stderr or a [`ProbeListener`] unix socket, throttled by
//!   wall-clock. Heartbeats are *explicitly nondeterministic* (they carry
//!   wall-clock rates and ETAs) and never enter a stats document.
//! * **Host profiling** — a [`HostProfiler`] attributes wall-clock to named
//!   run-loop phases via scoped closures. Its report lands in the opt-in
//!   `host_profile` stats sidecar, which every byte-determinism gate and
//!   `analyze --diff` comparison excludes.
//!
//! [`Introspect`] bundles the three so run loops take one optional handle.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::Json;

/// The `schema` tag of a probe snapshot document.
pub const PROBE_SCHEMA_NAME: &str = "sa-probe";
/// Current probe snapshot schema version.
pub const PROBE_SCHEMA_VERSION: u64 = 1;

/// A component that can render a cheap point-in-time snapshot of its
/// internal occupancy state. Implementations must be O(state summarized):
/// queue lengths, occupancy counters, in-flight counts — never scans
/// proportional to cache capacity or trace length.
pub trait Inspectable {
    /// A short machine-readable component kind, e.g. `"cache_bank"`.
    fn probe_kind(&self) -> &'static str;
    /// The snapshot body as a JSON object of counters/gauges (and nested
    /// child components for aggregates).
    fn probe_json(&self) -> Json;
}

/// Collects named component snapshots for one probe point. The registry is
/// rebuilt per snapshot — components are borrowed only for the instant
/// their state is read, which sidesteps any long-lived registration
/// lifetime problem.
#[derive(Debug, Default)]
pub struct ProbeRegistry {
    components: Vec<(String, Json)>,
}

impl ProbeRegistry {
    /// An empty registry for one snapshot point.
    pub fn new() -> ProbeRegistry {
        ProbeRegistry::default()
    }

    /// Snapshot `component` now under `name`.
    pub fn register(&mut self, name: &str, component: &dyn Inspectable) {
        self.register_json(name, component.probe_kind(), component.probe_json());
    }

    /// Register an already-rendered snapshot body under `name`/`kind` (for
    /// owners that compose children into a tree by hand).
    pub fn register_json(&mut self, name: &str, kind: &str, body: Json) {
        let mut o = Json::obj();
        o.push("kind", Json::Str(kind.to_owned()));
        if let Json::Obj(pairs) = body {
            for (k, v) in pairs {
                o.push(&k, v);
            }
        }
        self.components.push((name.to_owned(), o));
    }

    /// Number of components registered so far.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Render just the components object (for aggregates composing child
    /// snapshots into a subtree of their own [`Inspectable::probe_json`]).
    pub fn into_components(self) -> Json {
        Json::Obj(self.components)
    }

    /// Render the versioned snapshot document. `label` names the run the
    /// snapshot belongs to (empty = omitted); `skipped_cycles` is the
    /// event-horizon tally so far — the one field determinism comparisons
    /// strip, exactly like the stats documents.
    pub fn into_snapshot(self, label: &str, cycle: u64, skipped_cycles: u64) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(PROBE_SCHEMA_NAME.to_owned()));
        doc.push("version", Json::UInt(PROBE_SCHEMA_VERSION));
        if !label.is_empty() {
            doc.push("label", Json::Str(label.to_owned()));
        }
        doc.push("cycle", Json::UInt(cycle));
        doc.push("skipped_cycles", Json::UInt(skipped_cycles));
        doc.push("components", Json::Obj(self.components));
        doc
    }
}

/// Structural check for a probe snapshot document: schema tag, version,
/// numeric `cycle`/`skipped_cycles`, and a `components` object whose every
/// entry carries a string `kind`. Returns the first violation found.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate_probe_json(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema'")?;
    if schema != PROBE_SCHEMA_NAME {
        return Err(format!(
            "schema is '{schema}', expected '{PROBE_SCHEMA_NAME}'"
        ));
    }
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing 'version'")?;
    if version == 0 || version > PROBE_SCHEMA_VERSION {
        return Err(format!(
            "version is {version}, expected 1..={PROBE_SCHEMA_VERSION}"
        ));
    }
    doc.get("cycle")
        .and_then(Json::as_u64)
        .ok_or("missing numeric 'cycle'")?;
    doc.get("skipped_cycles")
        .and_then(Json::as_u64)
        .ok_or("missing numeric 'skipped_cycles'")?;
    let components = doc
        .get("components")
        .and_then(Json::as_obj)
        .ok_or("'components' missing or not an object")?;
    for (name, c) in components {
        c.get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("component '{name}' has no string 'kind'"))?;
    }
    Ok(())
}

/// Drives snapshot cadence for a run loop: due every `interval` simulated
/// cycles, with the recorded lines retained in order (and optionally
/// streamed to a [`Progress`] sink as they are taken). Interval 0 = off;
/// the off path is a single integer compare per consultation.
#[derive(Debug, Default)]
pub struct ProbeRecorder {
    interval: u64,
    next: u64,
    label: String,
    lines: Vec<String>,
    sink: Option<Progress>,
}

impl ProbeRecorder {
    /// A disabled recorder (never due; records nothing).
    pub fn off() -> ProbeRecorder {
        ProbeRecorder::default()
    }

    /// A recorder due every `interval` simulated cycles (first at cycle
    /// `interval`). 0 disables.
    pub fn every(interval: u64) -> ProbeRecorder {
        ProbeRecorder {
            interval,
            next: interval,
            ..ProbeRecorder::default()
        }
    }

    /// Label stamped into every snapshot (names the run/sweep point).
    pub fn with_label(mut self, label: &str) -> ProbeRecorder {
        self.label = label.to_owned();
        self
    }

    /// Stream every recorded line to `sink` as it is taken (in addition to
    /// retaining it).
    pub fn with_sink(mut self, sink: Progress) -> ProbeRecorder {
        if sink.is_on() {
            self.sink = Some(sink);
        }
        self
    }

    /// Whether any snapshots will be taken.
    pub fn is_on(&self) -> bool {
        self.interval != 0
    }

    /// Whether a snapshot is due at simulated cycle `now`.
    pub fn due(&self, now: u64) -> bool {
        self.interval != 0 && now >= self.next
    }

    /// The next cycle a snapshot is due at, for fast-forward clamping: a
    /// skipping run loop must not jump past this cycle, or on/off cadence
    /// bytes would diverge.
    pub fn next_due(&self) -> Option<u64> {
        if self.interval != 0 {
            Some(self.next)
        } else {
            None
        }
    }

    /// Record the snapshot assembled in `reg` for simulated cycle `cycle`
    /// and advance the cadence.
    pub fn record(&mut self, reg: ProbeRegistry, cycle: u64, skipped_cycles: u64) {
        let doc = reg.into_snapshot(&self.label, cycle, skipped_cycles);
        let line = doc.to_string_compact();
        if let Some(sink) = &self.sink {
            sink.emit_line(&line);
        }
        self.lines.push(line);
        while self.next <= cycle {
            self.next += self.interval;
        }
    }

    /// The recorded snapshot lines (compact JSON, one per snapshot), in
    /// cadence order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Take the recorded lines, leaving the recorder empty.
    pub fn take_lines(&mut self) -> Vec<String> {
        std::mem::take(&mut self.lines)
    }
}

/// Shared writer state behind a [`Progress`] handle.
struct ProgressInner {
    writer: Mutex<Box<dyn Write + Send>>,
    start: Instant,
    min_period: Duration,
    last_beat: Mutex<Option<Instant>>,
    points_done: AtomicU64,
    points_total: AtomicU64,
}

/// A cloneable NDJSON progress emitter: heartbeats (wall-clock throttled),
/// sweep-point completions with ETA, and raw probe lines, all written as
/// single atomic lines so concurrent emitters never interleave mid-line.
///
/// Everything a `Progress` writes carries wall-clock content and is
/// **explicitly nondeterministic** — it goes to stderr or a live socket,
/// never into a stats document or any byte-compared output.
#[derive(Clone, Default)]
pub struct Progress {
    inner: Option<Arc<ProgressInner>>,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Progress({})", if self.is_on() { "on" } else { "off" })
    }
}

impl Progress {
    /// A disabled handle; every emission is a no-op behind one branch.
    pub fn off() -> Progress {
        Progress { inner: None }
    }

    /// Emit NDJSON to stderr (the `--progress` sink).
    pub fn stderr() -> Progress {
        Progress::to_writer(Box::new(std::io::stderr()))
    }

    /// Emit NDJSON to an arbitrary writer (e.g. a [`ProbeListener`]
    /// broadcast).
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Progress {
        Progress {
            inner: Some(Arc::new(ProgressInner {
                writer: Mutex::new(writer),
                start: Instant::now(),
                min_period: Duration::from_millis(250),
                last_beat: Mutex::new(None),
                points_done: AtomicU64::new(0),
                points_total: AtomicU64::new(0),
            })),
        }
    }

    /// Whether emissions reach anything.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall-clock since the handle was created.
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |i| i.start.elapsed())
    }

    /// Write one raw line (no throttle). Used for probe snapshot streaming.
    pub fn emit_line(&self, line: &str) {
        if let Some(inner) = &self.inner {
            let mut w = inner.writer.lock().expect("progress writer");
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }

    /// Write one event object as a line (no throttle).
    pub fn emit(&self, event: &Json) {
        if self.is_on() {
            self.emit_line(&event.to_string_compact());
        }
    }

    /// Emit a heartbeat, throttled to the handle's minimum period. `build`
    /// is only called when a heartbeat is actually due; it receives a base
    /// object already holding `kind: "heartbeat"` and `elapsed_ms` and adds
    /// its own fields (simulated cycle, cycles/sec, fast-forward ratio...).
    pub fn heartbeat(&self, build: impl FnOnce(&mut Json)) {
        let Some(inner) = &self.inner else { return };
        {
            let mut last = inner.last_beat.lock().expect("heartbeat clock");
            let now = Instant::now();
            match *last {
                Some(t) if now.duration_since(t) < inner.min_period => return,
                _ => *last = Some(now),
            }
        }
        let mut o = Json::obj();
        o.push("kind", Json::Str("heartbeat".to_owned()));
        o.push(
            "elapsed_ms",
            Json::UInt(inner.start.elapsed().as_millis() as u64),
        );
        build(&mut o);
        self.emit(&o);
    }

    /// Announce `n` more sweep points of upcoming work (for ETA).
    pub fn add_points(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.points_total.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one sweep point finished and emit a `point` event with the
    /// completion fraction and a naive linear ETA.
    pub fn point_done(&self, label: &str) {
        let Some(inner) = &self.inner else { return };
        let done = inner.points_done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = inner.points_total.load(Ordering::Relaxed).max(done);
        let elapsed = inner.start.elapsed();
        let eta_ms = (elapsed.as_millis() as u64 / done.max(1)) * (total - done);
        let mut o = Json::obj();
        o.push("kind", Json::Str("point".to_owned()));
        o.push("label", Json::Str(label.to_owned()));
        o.push("done", Json::UInt(done));
        o.push("total", Json::UInt(total));
        o.push("elapsed_ms", Json::UInt(elapsed.as_millis() as u64));
        o.push("eta_ms", Json::UInt(eta_ms));
        self.emit(&o);
    }
}

static GLOBAL_PROGRESS_ON: AtomicBool = AtomicBool::new(false);

fn global_progress_cell() -> &'static Mutex<Progress> {
    static CELL: OnceLock<Mutex<Progress>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(Progress::off()))
}

/// Install the process-wide progress sink (the `--progress` /
/// `--probe-listen` flags route through this, in the same idiom as
/// `sa_sim::set_fast_forward_default`).
pub fn set_global_progress(p: Progress) {
    GLOBAL_PROGRESS_ON.store(p.is_on(), Ordering::Release);
    *global_progress_cell().lock().expect("global progress") = p;
}

/// Whether a process-wide progress sink is installed — one relaxed atomic
/// load, so hot loops can gate on it.
pub fn progress_enabled() -> bool {
    GLOBAL_PROGRESS_ON.load(Ordering::Acquire)
}

/// A clone of the process-wide progress handle ([`Progress::off`] unless
/// [`set_global_progress`] installed one).
pub fn global_progress() -> Progress {
    global_progress_cell()
        .lock()
        .expect("global progress")
        .clone()
}

/// Attributes host wall-clock to named run-loop phases via scoped closures.
/// Disabled (`off`) it costs one branch per phase; enabled it brackets each
/// phase with two `Instant::now()` reads. The report is wall-clock and
/// therefore nondeterministic: it only ever lands in the opt-in
/// `host_profile` stats sidecar, which determinism gates exclude.
#[derive(Debug, Default)]
pub struct HostProfiler {
    on: bool,
    phases: BTreeMap<&'static str, (u64, u128)>,
}

impl HostProfiler {
    /// A disabled profiler.
    pub fn off() -> HostProfiler {
        HostProfiler::default()
    }

    /// An active profiler.
    pub fn on() -> HostProfiler {
        HostProfiler {
            on: true,
            phases: BTreeMap::new(),
        }
    }

    /// Active iff `on`.
    pub fn enabled(on: bool) -> HostProfiler {
        if on {
            HostProfiler::on()
        } else {
            HostProfiler::off()
        }
    }

    /// Whether timings are being collected.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Run `f`, attributing its wall-clock to `phase` when profiling is on.
    #[inline]
    pub fn time<R>(&mut self, phase: &'static str, f: impl FnOnce() -> R) -> R {
        if !self.on {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_nanos();
        let slot = self.phases.entry(phase).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += dt;
        out
    }

    /// Fold another profiler's timings into this one (sweep merging).
    pub fn absorb(&mut self, other: &HostProfiler) {
        self.on |= other.on;
        for (phase, (calls, nanos)) in &other.phases {
            let slot = self.phases.entry(phase).or_insert((0, 0));
            slot.0 += calls;
            slot.1 += nanos;
        }
    }

    /// The `host_profile` sidecar object:
    /// `{"total_ns": N, "phases": {"tick": {"calls": C, "ns": N, "pct": P}}}`.
    pub fn to_json(&self) -> Json {
        let total: u128 = self.phases.values().map(|&(_, ns)| ns).sum();
        let mut phases = Json::obj();
        for (phase, &(calls, nanos)) in &self.phases {
            let mut p = Json::obj();
            p.push("calls", Json::UInt(calls));
            p.push("ns", Json::UInt(nanos as u64));
            let pct = if total > 0 {
                nanos as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            p.push("pct", Json::Num(pct));
            phases.push(phase, p);
        }
        let mut o = Json::obj();
        o.push("total_ns", Json::UInt(total as u64));
        o.push("phases", phases);
        o
    }
}

/// The bundle a run loop takes to become introspectable: snapshot cadence,
/// progress sink, and host profiler. [`Introspect::off`] is the default
/// everywhere and costs one branch per consultation site.
#[derive(Debug, Default)]
pub struct Introspect {
    /// Deterministic snapshot cadence and storage.
    pub recorder: ProbeRecorder,
    /// Nondeterministic heartbeat sink.
    pub progress: Progress,
    /// Host wall-clock phase attribution.
    pub profiler: HostProfiler,
}

impl Introspect {
    /// Everything disabled.
    pub fn off() -> Introspect {
        Introspect::default()
    }
}

/// A unix-domain-socket NDJSON broadcaster: the `--probe-listen PATH` sink.
/// Clients (`analyze --watch PATH`) connect and receive every heartbeat,
/// point event, and probe snapshot line from the moment they attach. Dead
/// clients are dropped on the next write; the socket file is removed on
/// drop.
#[cfg(unix)]
pub struct ProbeListener {
    path: std::path::PathBuf,
    clients: Arc<Mutex<Vec<std::os::unix::net::UnixStream>>>,
}

#[cfg(unix)]
impl std::fmt::Debug for ProbeListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProbeListener({})", self.path.display())
    }
}

#[cfg(unix)]
impl ProbeListener {
    /// Bind `path` (removing any stale socket file) and start accepting
    /// clients on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error (bad path, permissions).
    pub fn bind(path: &std::path::Path) -> std::io::Result<ProbeListener> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        let clients: Arc<Mutex<Vec<std::os::unix::net::UnixStream>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept_clients = Arc::clone(&clients);
        std::thread::Builder::new()
            .name("sa-probe-listen".to_owned())
            .spawn(move || {
                for stream in listener.incoming().flatten() {
                    accept_clients.lock().expect("probe clients").push(stream);
                }
            })?;
        Ok(ProbeListener {
            path: path.to_owned(),
            clients,
        })
    }

    /// A [`Progress`] handle broadcasting to every connected client.
    pub fn progress(&self) -> Progress {
        Progress::to_writer(Box::new(Broadcast {
            clients: Arc::clone(&self.clients),
        }))
    }

    /// Currently connected clients.
    pub fn client_count(&self) -> usize {
        self.clients.lock().expect("probe clients").len()
    }

    /// Block until at least one client is connected (polling the accept
    /// thread's roster), or `timeout` elapses. Returns whether a client
    /// arrived. Lines emitted before the first client connects are not
    /// buffered, so a producer that wants a watcher to see the run from
    /// cycle zero calls this before simulating (`--probe-wait-client`).
    pub fn wait_for_client(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.client_count() > 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[cfg(unix)]
impl Drop for ProbeListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(unix)]
struct Broadcast {
    clients: Arc<Mutex<Vec<std::os::unix::net::UnixStream>>>,
}

#[cfg(unix)]
impl Write for Broadcast {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut clients = self.clients.lock().expect("probe clients");
        clients.retain_mut(|c| c.write_all(buf).is_ok());
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let mut clients = self.clients.lock().expect("probe clients");
        clients.retain_mut(|c| c.flush().is_ok());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake(u64);
    impl Inspectable for Fake {
        fn probe_kind(&self) -> &'static str {
            "fake"
        }
        fn probe_json(&self) -> Json {
            let mut o = Json::obj();
            o.push("depth", Json::UInt(self.0));
            o
        }
    }

    #[test]
    fn snapshots_validate_and_carry_components() {
        let mut reg = ProbeRegistry::new();
        reg.register("q0", &Fake(3));
        reg.register("q1", &Fake(5));
        let doc = reg.into_snapshot("run-a", 128, 64);
        validate_probe_json(&doc).expect("valid snapshot");
        assert_eq!(doc.get("cycle").and_then(Json::as_u64), Some(128));
        let q1 = doc.get("components").and_then(|c| c.get("q1")).unwrap();
        assert_eq!(q1.get("kind").and_then(Json::as_str), Some("fake"));
        assert_eq!(q1.get("depth").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn bad_snapshots_are_rejected() {
        let mut doc = ProbeRegistry::new().into_snapshot("", 0, 0);
        validate_probe_json(&doc).expect("empty snapshot is fine");
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "cycle");
        }
        assert!(validate_probe_json(&doc).unwrap_err().contains("cycle"));
        assert!(validate_probe_json(&Json::obj()).is_err());
    }

    #[test]
    fn recorder_cadence_and_ff_clamp() {
        let mut rec = ProbeRecorder::every(100);
        assert!(rec.is_on());
        assert!(!rec.due(99));
        assert!(rec.due(100));
        assert_eq!(rec.next_due(), Some(100));
        rec.record(ProbeRegistry::new(), 100, 0);
        assert_eq!(rec.next_due(), Some(200));
        assert!(!rec.due(150));
        rec.record(ProbeRegistry::new(), 200, 7);
        assert_eq!(rec.lines().len(), 2);
        let last = Json::parse(&rec.lines()[1]).unwrap();
        assert_eq!(last.get("skipped_cycles").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn off_recorder_is_never_due() {
        let rec = ProbeRecorder::off();
        assert!(!rec.is_on());
        assert!(!rec.due(0));
        assert!(!rec.due(u64::MAX));
        assert_eq!(rec.next_due(), None);
    }

    #[test]
    fn progress_off_is_inert_and_writer_collects_lines() {
        Progress::off().heartbeat(|_| panic!("must not build when off"));
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let p = Progress::to_writer(Box::new(Sink(Arc::clone(&buf))));
        p.add_points(2);
        p.point_done("a");
        p.heartbeat(|o| o.push("cycle", Json::UInt(42)));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let point = Json::parse(lines[0]).unwrap();
        assert_eq!(point.get("kind").and_then(Json::as_str), Some("point"));
        assert_eq!(point.get("done").and_then(Json::as_u64), Some(1));
        assert_eq!(point.get("total").and_then(Json::as_u64), Some(2));
        let beat = Json::parse(lines[1]).unwrap();
        assert_eq!(beat.get("kind").and_then(Json::as_str), Some("heartbeat"));
        assert_eq!(beat.get("cycle").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn host_profiler_attributes_phases() {
        let mut prof = HostProfiler::on();
        let x = prof.time("tick", || 2 + 2);
        assert_eq!(x, 4);
        prof.time("tick", || ());
        prof.time("skip", || ());
        let j = prof.to_json();
        let tick = j.get("phases").and_then(|p| p.get("tick")).unwrap();
        assert_eq!(tick.get("calls").and_then(Json::as_u64), Some(2));
        assert!(j.get("total_ns").and_then(Json::as_u64).is_some());
        let mut other = HostProfiler::on();
        other.time("tick", || ());
        prof.absorb(&other);
        let j2 = prof.to_json();
        let tick2 = j2.get("phases").and_then(|p| p.get("tick")).unwrap();
        assert_eq!(tick2.get("calls").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn off_profiler_records_nothing() {
        let mut prof = HostProfiler::off();
        assert_eq!(prof.time("tick", || 7), 7);
        assert_eq!(
            prof.to_json().get("total_ns").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[cfg(unix)]
    #[test]
    fn listener_broadcasts_to_clients() {
        use std::io::{BufRead, BufReader};
        let path = std::env::temp_dir().join(format!("sa-probe-test-{}.sock", std::process::id()));
        let listener = ProbeListener::bind(&path).expect("bind");
        let client = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        // Wait for the accept thread to register the client.
        for _ in 0..100 {
            if listener.client_count() > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(listener.client_count(), 1);
        let p = listener.progress();
        p.emit_line(r#"{"kind":"hello"}"#);
        let mut line = String::new();
        BufReader::new(client).read_line(&mut line).expect("read");
        assert_eq!(line.trim(), r#"{"kind":"hello"}"#);
        drop(listener);
        assert!(!path.exists(), "socket file removed on drop");
    }
}
