//! Bottleneck attribution: occupancy accounting, bound classification, and
//! analytic what-if speedup modeling.
//!
//! Three pieces:
//!
//! * [`OccupancyStats`] — a per-resource busy/blocked/idle/saturated cycle
//!   account shared by every arbitrated component (scatter-add units, cache
//!   banks, DRAM channels, the crossbar). The tick path and the fast-forward
//!   skip path feed the same counters through the same classification
//!   predicate, so totals are byte-identical with skipping on or off.
//! * shared name tables ([`STAGE_NAMES`], [`STALL_CAUSES`]) — the single
//!   source of truth for request-stage and stall-cause names used by the
//!   stats writer, the attribution tables, and `analyze`.
//! * the attribution engine ([`bottleneck_json`]) — reduces a stats
//!   document's occupancy counters, stage-latency shares, and stall tables
//!   to a per-run `bottleneck` section: a dominant-resource classification
//!   with utilization evidence, a critical-path stage breakdown, and an
//!   Amdahl what-if table of analytic speedup upper bounds.
//!
//! The what-if model is deliberately simple: scaling a resource by `k` can
//! remove at most its serial share `s` of the critical path, so
//! `speedup ≤ 1 / (1 - s·(1 - 1/k))`. It is an *upper bound*, not a
//! prediction of the realized speedup — contention can shift to another
//! resource well before the bound is reached. The `whatif` bench bin
//! measures the realized speedup against this bound.

use crate::{Json, Scope};

// ---------------------------------------------------------------------------
// Occupancy accounting
// ---------------------------------------------------------------------------

/// What a resource did during one cycle (or one fast-forward window).
///
/// Ordered so that a provisional classification can only be *upgraded*
/// (`Idle < Blocked < Busy`) as more happens within the cycle.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OccClass {
    /// Nothing resident and nothing served.
    Idle,
    /// Work outstanding (waiting on another resource) but no progress made.
    Blocked,
    /// Useful work performed this cycle.
    Busy,
}

/// Busy/blocked/idle/saturated cycle account for one arbitrated resource.
///
/// Invariant: `busy + blocked + idle` equals the cycles the resource has
/// been accounted over ([`elapsed`](OccupancyStats::elapsed)), whether those
/// cycles were ticked one at a time ([`cycle`](OccupancyStats::cycle)) or
/// folded in bulk by a fast-forward skip ([`skip`](OccupancyStats::skip)).
/// `saturated` counts cycles the resource was at admission capacity
/// (rejecting new work), independent of the busy/blocked/idle class.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OccupancyStats {
    /// Cycles the resource performed useful work.
    pub busy: u64,
    /// Cycles with work outstanding but no progress (waiting on another
    /// resource or on a fixed latency).
    pub blocked: u64,
    /// Cycles with nothing resident.
    pub idle: u64,
    /// Cycles at admission capacity (would reject new work).
    pub saturated: u64,
}

impl OccupancyStats {
    /// Account one ticked cycle.
    pub fn cycle(&mut self, class: OccClass, at_capacity: bool) {
        self.skip(1, class, at_capacity);
    }

    /// Account `n` fast-forwarded cycles in one fold. The caller guarantees
    /// the resource's state is frozen across the window, so a single
    /// classification covers every cycle in it.
    pub fn skip(&mut self, n: u64, class: OccClass, at_capacity: bool) {
        match class {
            OccClass::Busy => self.busy += n,
            OccClass::Blocked => self.blocked += n,
            OccClass::Idle => self.idle += n,
        }
        if at_capacity {
            self.saturated += n;
        }
    }

    /// Total cycles accounted (`busy + blocked + idle`).
    pub fn elapsed(&self) -> u64 {
        self.busy + self.blocked + self.idle
    }

    /// Merge another resource's account (for aggregating across instances).
    pub fn merge(&mut self, o: OccupancyStats) {
        self.busy += o.busy;
        self.blocked += o.blocked;
        self.idle += o.idle;
        self.saturated += o.saturated;
    }

    /// Record the counters into a telemetry scope as `occ_busy`,
    /// `occ_blocked`, `occ_idle`, `occ_saturated`.
    pub fn record(&self, scope: &mut Scope<'_>) {
        scope.counter("occ_busy", self.busy);
        scope.counter("occ_blocked", self.blocked);
        scope.counter("occ_idle", self.idle);
        scope.counter("occ_saturated", self.saturated);
    }
}

// ---------------------------------------------------------------------------
// Shared name tables
// ---------------------------------------------------------------------------

/// Stable snake_case names of the request lifecycle stages, indexed by
/// [`ReqStage`](crate::ReqStage) discriminant (pipeline order). The single
/// source of truth for stage names in stats documents, trace spans, and the
/// `analyze` renderer.
pub const STAGE_NAMES: [&str; 9] = [
    "issued",
    "enqueued",
    "crossbar",
    "bank_arb",
    "mshr",
    "comb_store",
    "fu_pipe",
    "dram",
    "retired",
];

/// One stall cause: the stats-document key and the human-readable label.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StallCause {
    /// Key used in `attribution.<kernel>.<key>` stats sections.
    pub key: &'static str,
    /// Label used by `Display` renderings and `analyze` tables.
    pub label: &'static str,
}

/// The stall causes tracked by attribution tables, in emission order. The
/// single source of truth shared by the stats writer (`StallBreakdown` in
/// `sa-core`) and the `analyze` renderer.
pub const STALL_CAUSES: [StallCause; 4] = [
    StallCause {
        key: "mshr_full",
        label: "MSHR full",
    },
    StallCause {
        key: "bank_conflict",
        label: "bank conflict",
    },
    StallCause {
        key: "cs_full",
        label: "combining-store full",
    },
    StallCause {
        key: "net_credit",
        label: "network credit",
    },
];

/// The bound taxonomy: every value the `bound` field of a bottleneck report
/// can take.
pub const BOUND_KINDS: [&str; 7] = [
    "compute",
    "comb_store",
    "mshr",
    "cache_bank",
    "dram_bandwidth",
    "crossbar",
    "latency",
];

// ---------------------------------------------------------------------------
// Attribution engine
// ---------------------------------------------------------------------------

/// A resource's busy fraction must reach this for a busy-based bound claim.
const BUSY_BOUND_THRESHOLD: f64 = 0.40;

/// A resource's saturated fraction must reach this for a capacity-based
/// bound claim (combining store / MSHR file full). Capacity claims also
/// require [`BUSY_BOUND_THRESHOLD`] busy-dominance: a structure full of
/// entries parked on outstanding memory is a symptom, not the limiter.
const SATURATION_BOUND_THRESHOLD: f64 = 0.25;

/// Per-resource occupancy aggregate harvested from a metrics object.
struct ResAgg {
    name: &'static str,
    busy: u64,
    blocked: u64,
    idle: u64,
    saturated: u64,
    instances: u64,
    queue_enqueued: u64,
    queue_rejected: u64,
}

impl ResAgg {
    fn elapsed(&self) -> u64 {
        self.busy + self.blocked + self.idle
    }

    fn busy_frac(&self) -> f64 {
        frac(self.busy, self.elapsed())
    }

    fn saturated_frac(&self) -> f64 {
        frac(self.saturated, self.elapsed())
    }
}

fn frac(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Round to 2 decimals (percentages in the report).
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Round to 4 decimals (speedup factors in the report).
fn round4(x: f64) -> f64 {
    (x * 10000.0).round() / 10000.0
}

fn metric_u64(metrics: &[(String, Json)], key: &str) -> Option<u64> {
    metrics
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_u64())
}

/// Sum every metric under `prefix.` whose path ends with `suffix`.
fn sum_suffix(metrics: &[(String, Json)], prefix: &str, suffix: &str) -> u64 {
    let head = format!("{prefix}.");
    metrics
        .iter()
        .filter(|(k, _)| k.starts_with(&head) && k.ends_with(suffix))
        .filter_map(|(_, v)| v.as_u64())
        .sum()
}

/// Count per-instance occupancy keys under `prefix.` containing `marker`.
fn count_instances(metrics: &[(String, Json)], prefix: &str, marker: &str) -> u64 {
    let head = format!("{prefix}.");
    metrics
        .iter()
        .filter(|(k, _)| k.starts_with(&head) && k.ends_with(".occ_busy") && k.contains(marker))
        .count() as u64
}

/// Whether a scope path segment is a per-node sub-scope (`node<digits>`).
fn is_node_segment(seg: &str) -> bool {
    seg.strip_prefix("node")
        .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
}

/// The report prefix for a scope that recorded `*.sa.occ_busy`: multi-node
/// documents record per-node stats under `<run>.node<i>`, which group into
/// one report for `<run>`.
fn report_prefix(member: &str) -> &str {
    match member.rsplit_once('.') {
        Some((parent, seg)) if is_node_segment(seg) => parent,
        _ => member,
    }
}

/// Derive the `bottleneck` section from an assembled stats document.
///
/// Scans `metrics` for occupancy counters (`<scope>.sa.occ_busy` with a
/// sibling `<scope>.cycles`, where `<scope>` may have per-node sub-scopes),
/// and produces one report per run scope, keyed by scope name — the same
/// keying as the `latency` and `attribution` sections, which are folded in
/// when present. Returns `None` if the document has no occupancy counters
/// (pre-v5 documents, or components built without accounting).
pub fn bottleneck_json(doc: &Json) -> Option<Json> {
    let metrics = doc.get("metrics").and_then(Json::as_obj)?;
    // Group occupancy-bearing scopes into report prefixes. `metrics` is
    // sorted by path, so discovery order (and the section's key order) is
    // deterministic.
    let mut groups: Vec<String> = Vec::new();
    for (key, _) in metrics {
        if let Some(member) = key.strip_suffix(".sa.occ_busy") {
            let rp = report_prefix(member);
            if metric_u64(metrics, &format!("{rp}.cycles")).is_some()
                && !groups.iter().any(|g| g == rp)
            {
                groups.push(rp.to_string());
            }
        }
    }
    if groups.is_empty() {
        return None;
    }
    let mut out = Json::obj();
    for rp in &groups {
        out.push(
            rp,
            report_for(metrics, rp, doc.get("latency"), doc.get("attribution")),
        );
    }
    Some(out)
}

/// Build one run scope's bottleneck report.
fn report_for(
    metrics: &[(String, Json)],
    rp: &str,
    latency: Option<&Json>,
    attribution: Option<&Json>,
) -> Json {
    // --- resource occupancy aggregates -------------------------------------
    // (resource name, occupancy scope suffix, per-instance scope marker,
    //  queue suffix prefix for pressure counters)
    const FAMILIES: [(&str, &str, &str, Option<&str>); 4] = [
        ("comb_store", "sa", ".sa.unit", None),
        ("cache_bank", "cache", ".cache.bank", Some(".queue.bank_in")),
        ("dram", "dram", ".dram.chan", Some(".queue.dram.chan")),
        ("net", "net", "", None),
    ];
    let mut aggs: Vec<ResAgg> = Vec::new();
    for (name, fam, marker, queue) in FAMILIES {
        let read = |field: &str| sum_suffix(metrics, rp, &format!(".{fam}.{field}"));
        let busy = read("occ_busy");
        let blocked = read("occ_blocked");
        let idle = read("occ_idle");
        if busy + blocked + idle == 0 {
            continue; // resource absent from this document (e.g. no crossbar)
        }
        let per_instance = if marker.is_empty() {
            0
        } else {
            count_instances(metrics, rp, marker)
        };
        // Multi-node documents only carry per-node merged counters; count at
        // least one instance per occupancy-bearing scope.
        let scopes = metrics
            .iter()
            .filter(|(k, _)| {
                k.starts_with(&format!("{rp}.")) && k.ends_with(&format!(".{fam}.occ_busy"))
            })
            .count() as u64;
        let (queue_enqueued, queue_rejected) = match queue {
            Some(".queue.bank_in") => (
                // Exact node-level merged counters; per-bank sub-scopes would
                // double-count.
                sum_suffix(metrics, rp, ".queue.bank_in.enqueued"),
                sum_suffix(metrics, rp, ".queue.bank_in.rejected"),
            ),
            Some(_) => (
                sum_dram_queue(metrics, rp, "enqueued"),
                sum_dram_queue(metrics, rp, "rejected"),
            ),
            None => (0, 0),
        };
        aggs.push(ResAgg {
            name,
            busy,
            blocked,
            idle,
            saturated: read("occ_saturated"),
            instances: per_instance.max(scopes).max(1),
            queue_enqueued,
            queue_rejected,
        });
    }

    // --- stage shares (critical-path breakdown) ----------------------------
    let mut stages = Json::obj();
    let mut stage_shares: Vec<(String, f64)> = Vec::new();
    if let Some(st) = latency
        .and_then(|l| l.get(rp))
        .and_then(|l| l.get("stages"))
        .and_then(Json::as_obj)
    {
        for (name, s) in st {
            if let Some(p) = s.get("share_pct").and_then(Json::as_f64) {
                let mut e = Json::obj();
                e.push("share_pct", Json::Num(round2(p)));
                if let Some(t) = s.get("total").and_then(Json::as_u64) {
                    e.push("total", Json::UInt(t));
                }
                stages.push(name, e);
                stage_shares.push((name.clone(), p));
            }
        }
    }
    let share = |stage: &str| {
        stage_shares
            .iter()
            .find(|(n, _)| n == stage)
            .map_or(0.0, |&(_, p)| p)
    };

    // --- bound classification ----------------------------------------------
    let agg = |name: &str| aggs.iter().find(|a| a.name == name);
    let sat = |name: &str| agg(name).map_or(0.0, ResAgg::saturated_frac);
    let busy = |name: &str| agg(name).map_or(0.0, ResAgg::busy_frac);
    // Saturation alone is not causation: a combining store full of entries
    // parked on outstanding fills is a *symptom* of memory latency, not the
    // limiter. A capacity claim therefore also needs busy-dominance — the
    // resource must be doing work most cycles, not waiting.
    let (bound, evidence) = if sat("comb_store") >= SATURATION_BOUND_THRESHOLD
        && busy("comb_store") >= BUSY_BOUND_THRESHOLD
    {
        (
            "comb_store",
            format!(
                "combining store at capacity {:.1}% of unit-cycles (busy {:.1}%)",
                sat("comb_store") * 100.0,
                busy("comb_store") * 100.0
            ),
        )
    } else if sat("cache_bank") >= SATURATION_BOUND_THRESHOLD
        && busy("cache_bank") >= BUSY_BOUND_THRESHOLD
    {
        (
            "mshr",
            format!(
                "MSHR file at capacity {:.1}% of bank-cycles (banks busy {:.1}%)",
                sat("cache_bank") * 100.0,
                busy("cache_bank") * 100.0
            ),
        )
    } else {
        // Busy-based claims in fixed priority order (ties go to the earlier
        // entry, keeping the classification deterministic).
        let candidates = [
            ("dram_bandwidth", "dram", "DRAM channels busy"),
            ("crossbar", "net", "crossbar moving traffic"),
            ("cache_bank", "cache_bank", "cache banks serving accesses"),
            ("compute", "comb_store", "scatter-add FU pipelines busy"),
        ];
        let best = candidates
            .iter()
            .map(|&(kind, res, verb)| (kind, busy(res), verb))
            .fold(None::<(&str, f64, &str)>, |acc, c| match acc {
                Some(a) if a.1 >= c.1 => Some(a),
                _ => Some(c),
            });
        match best {
            Some((kind, f, verb)) if f >= BUSY_BOUND_THRESHOLD => {
                (kind, format!("{verb} {:.1}% of cycles", f * 100.0))
            }
            _ => {
                let top = stage_shares.iter().filter(|(n, _)| n != "retired").fold(
                    None::<(&str, f64)>,
                    |acc, (n, p)| match acc {
                        Some(a) if a.1 >= *p => Some(a),
                        _ => Some((n, *p)),
                    },
                );
                let ev = match top {
                    Some((stage, p)) => format!(
                        "no resource above {:.0}% busy; dominant latency stage: {stage} ({p:.1}%)",
                        BUSY_BOUND_THRESHOLD * 100.0
                    ),
                    None => format!(
                        "no resource above {:.0}% busy and no latency samples",
                        BUSY_BOUND_THRESHOLD * 100.0
                    ),
                };
                ("latency", ev)
            }
        }
    };

    // --- what-if table ------------------------------------------------------
    let cs_stall_pct = attribution
        .and_then(|a| a.get(rp))
        .and_then(|t| t.get("cs_full"))
        .and_then(|e| e.get("pct"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let whatif_rows = [
        ("2x dram_channels", share("dram"), "amdahl_stage"),
        // Doubling the cache banks also doubles the scatter-add units (the
        // machine pairs one unit with each bank), so every per-bank stage
        // scales: arbitration, MSHRs, combining store, FU pipeline — plus
        // the upstream queueing those stages back-pressure (`enqueued`).
        // Over-attributing queueing keeps this an upper bound.
        (
            "2x cache_banks",
            share("enqueued")
                + share("bank_arb")
                + share("mshr")
                + share("comb_store")
                + share("fu_pipe"),
            "amdahl_stage",
        ),
        ("2x net_bw", share("crossbar"), "amdahl_stage"),
        ("0.5x fu_latency", share("fu_pipe"), "amdahl_stage"),
        ("2x cs_entries", cs_stall_pct, "amdahl_stall"),
    ];
    let mut whatif = Vec::new();
    for (change, share_pct, model) in whatif_rows {
        let s = (share_pct / 100.0).clamp(0.0, 0.99);
        let speedup = 1.0 / (1.0 - s * 0.5);
        let mut row = Json::obj();
        row.push("change", Json::Str(change.to_string()));
        row.push("model", Json::Str(model.to_string()));
        row.push("share_pct", Json::Num(round2(share_pct)));
        row.push("predicted_speedup_max", Json::Num(round4(speedup)));
        row.push(
            "predicted_max_gain_pct",
            Json::Num(round2((speedup - 1.0) * 100.0)),
        );
        whatif.push(row);
    }

    // --- assemble -----------------------------------------------------------
    let mut resources = Json::obj();
    for a in &aggs {
        let el = a.elapsed();
        let mut r = Json::obj();
        r.push("instances", Json::UInt(a.instances));
        r.push("busy", Json::UInt(a.busy));
        r.push("blocked", Json::UInt(a.blocked));
        r.push("idle", Json::UInt(a.idle));
        r.push("saturated", Json::UInt(a.saturated));
        r.push("busy_pct", Json::Num(round2(frac(a.busy, el) * 100.0)));
        r.push(
            "blocked_pct",
            Json::Num(round2(frac(a.blocked, el) * 100.0)),
        );
        r.push("idle_pct", Json::Num(round2(frac(a.idle, el) * 100.0)));
        r.push(
            "saturated_pct",
            Json::Num(round2(frac(a.saturated, el) * 100.0)),
        );
        if a.queue_enqueued != 0 || a.queue_rejected != 0 {
            r.push(
                "queue_reject_pct",
                Json::Num(round2(
                    frac(a.queue_rejected, a.queue_enqueued + a.queue_rejected) * 100.0,
                )),
            );
        }
        resources.push(a.name, r);
    }
    let mut report = Json::obj();
    report.push(
        "cycles",
        Json::UInt(metric_u64(metrics, &format!("{rp}.cycles")).unwrap_or(0)),
    );
    report.push("bound", Json::Str(bound.to_string()));
    report.push("evidence", Json::Str(evidence));
    report.push("resources", resources);
    report.push("stages", stages);
    report.push("whatif", Json::Arr(whatif));
    report
}

/// Sum per-channel DRAM queue counters (`<rp>.*.queue.dram.chan<c>.<field>`).
fn sum_dram_queue(metrics: &[(String, Json)], rp: &str, field: &str) -> u64 {
    let head = format!("{rp}.");
    let tail = format!(".{field}");
    metrics
        .iter()
        .filter(|(k, _)| {
            k.starts_with(&head) && k.contains(".queue.dram.chan") && k.ends_with(&tail)
        })
        .filter_map(|(_, v)| v.as_u64())
        .sum()
}

/// Compute the `bottleneck` section for an assembled stats document and
/// insert it after the deterministic sections (before `host_profile` /
/// `rows`). Returns whether a section was attached (documents without
/// occupancy counters are left untouched).
pub fn attach_bottleneck(doc: &mut Json) -> bool {
    let Some(section) = bottleneck_json(doc) else {
        return false;
    };
    match doc {
        Json::Obj(pairs) => {
            let pos = pairs
                .iter()
                .position(|(k, _)| k == "host_profile" || k == "rows")
                .unwrap_or(pairs.len());
            pairs.insert(pos, ("bottleneck".to_string(), section));
            true
        }
        _ => false,
    }
}

/// Structural check of a `bottleneck` section (see [`bottleneck_json`]).
pub fn validate_bottleneck_json(section: &Json) -> Result<(), String> {
    let runs = section.as_obj().ok_or("'bottleneck' is not an object")?;
    for (run, report) in runs {
        report
            .get("cycles")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("bottleneck '{run}' missing numeric 'cycles'"))?;
        let bound = report
            .get("bound")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bottleneck '{run}' missing 'bound'"))?;
        if !BOUND_KINDS.contains(&bound) {
            return Err(format!("bottleneck '{run}' has unknown bound '{bound}'"));
        }
        report
            .get("evidence")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bottleneck '{run}' missing 'evidence'"))?;
        let resources = report
            .get("resources")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("bottleneck '{run}' missing 'resources' object"))?;
        for (res, entry) in resources {
            for field in [
                "instances",
                "busy",
                "blocked",
                "idle",
                "saturated",
                "busy_pct",
                "blocked_pct",
                "idle_pct",
                "saturated_pct",
            ] {
                entry
                    .get(field)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("bottleneck '{run}.{res}' missing numeric '{field}'"))?;
            }
        }
        let stages = report
            .get("stages")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("bottleneck '{run}' missing 'stages' object"))?;
        for (stage, entry) in stages {
            entry
                .get("share_pct")
                .and_then(Json::as_f64)
                .ok_or_else(|| {
                    format!("bottleneck '{run}.stages.{stage}' missing numeric 'share_pct'")
                })?;
        }
        let whatif = report
            .get("whatif")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("bottleneck '{run}' missing 'whatif' array"))?;
        for row in whatif {
            let ok = row.get("change").and_then(Json::as_str).is_some()
                && row.get("model").and_then(Json::as_str).is_some()
                && row.get("share_pct").and_then(Json::as_f64).is_some()
                && row
                    .get("predicted_speedup_max")
                    .and_then(Json::as_f64)
                    .is_some()
                && row
                    .get("predicted_max_gain_pct")
                    .and_then(Json::as_f64)
                    .is_some();
            if !ok {
                return Err(format!("bottleneck '{run}' has a malformed whatif row"));
            }
        }
    }
    Ok(())
}

/// Render a `bottleneck` section as the text report `analyze bottleneck`
/// prints.
pub fn render_bottleneck(section: &Json) -> String {
    let mut out = String::new();
    let Some(runs) = section.as_obj() else {
        return out;
    };
    for (run, report) in runs {
        let cycles = report.get("cycles").and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!("== bottleneck: {run} ({cycles} cycles) ==\n"));
        let bound = report.get("bound").and_then(Json::as_str).unwrap_or("?");
        let evidence = report.get("evidence").and_then(Json::as_str).unwrap_or("");
        out.push_str(&format!("bound:    {bound}\n"));
        out.push_str(&format!("evidence: {evidence}\n"));
        if let Some(resources) = report.get("resources").and_then(Json::as_obj) {
            out.push_str(&format!(
                "{:<12} {:>5} {:>8} {:>9} {:>8} {:>10}\n",
                "resource", "inst", "busy%", "blocked%", "idle%", "saturated%"
            ));
            for (name, r) in resources {
                let f = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                out.push_str(&format!(
                    "{:<12} {:>5} {:>8.2} {:>9.2} {:>8.2} {:>10.2}\n",
                    name,
                    r.get("instances").and_then(Json::as_u64).unwrap_or(0),
                    f("busy_pct"),
                    f("blocked_pct"),
                    f("idle_pct"),
                    f("saturated_pct"),
                ));
            }
        }
        if let Some(stages) = report.get("stages").and_then(Json::as_obj) {
            if !stages.is_empty() {
                let parts: Vec<String> = stages
                    .iter()
                    .map(|(n, s)| {
                        format!(
                            "{n} {:.1}%",
                            s.get("share_pct").and_then(Json::as_f64).unwrap_or(0.0)
                        )
                    })
                    .collect();
                out.push_str(&format!("critical path: {}\n", parts.join(", ")));
            }
        }
        if let Some(whatif) = report.get("whatif").and_then(Json::as_arr) {
            if !whatif.is_empty() {
                out.push_str("what-if (analytic upper bounds):\n");
                for row in whatif {
                    out.push_str(&format!(
                        "  {:<18} share {:>5.1}%  ->  <= {:.3}x (+{:.1}%)  [{}]\n",
                        row.get("change").and_then(Json::as_str).unwrap_or("?"),
                        row.get("share_pct").and_then(Json::as_f64).unwrap_or(0.0),
                        row.get("predicted_speedup_max")
                            .and_then(Json::as_f64)
                            .unwrap_or(1.0),
                        row.get("predicted_max_gain_pct")
                            .and_then(Json::as_f64)
                            .unwrap_or(0.0),
                        row.get("model").and_then(Json::as_str).unwrap_or("?"),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReqStage;

    #[test]
    fn occupancy_cycle_and_skip_agree() {
        let mut ticked = OccupancyStats::default();
        for _ in 0..5 {
            ticked.cycle(OccClass::Blocked, false);
        }
        for _ in 0..3 {
            ticked.cycle(OccClass::Busy, true);
        }
        let mut skipped = OccupancyStats::default();
        skipped.skip(5, OccClass::Blocked, false);
        skipped.skip(3, OccClass::Busy, true);
        assert_eq!(ticked, skipped);
        assert_eq!(ticked.elapsed(), 8);
        assert_eq!(ticked.saturated, 3);
    }

    #[test]
    fn occupancy_merge_sums_fields() {
        let mut a = OccupancyStats {
            busy: 1,
            blocked: 2,
            idle: 3,
            saturated: 1,
        };
        a.merge(OccupancyStats {
            busy: 10,
            blocked: 20,
            idle: 30,
            saturated: 5,
        });
        assert_eq!(a.busy, 11);
        assert_eq!(a.blocked, 22);
        assert_eq!(a.idle, 33);
        assert_eq!(a.saturated, 6);
        assert_eq!(a.elapsed(), 66);
    }

    #[test]
    fn stage_names_match_req_stage() {
        for stage in ReqStage::ALL {
            assert_eq!(STAGE_NAMES[stage as usize], stage.name());
        }
    }

    fn doc_with_metrics(pairs: &[(&str, u64)]) -> Json {
        let mut metrics = Json::obj();
        for (k, v) in pairs {
            metrics.push(k, Json::UInt(*v));
        }
        let mut doc = Json::obj();
        doc.push("metrics", metrics);
        doc.push("rows", Json::Arr(Vec::new()));
        doc
    }

    #[test]
    fn engine_classifies_dram_bound_run() {
        let doc = doc_with_metrics(&[
            ("run.cycles", 100),
            ("run.sa.occ_busy", 20),
            ("run.sa.occ_blocked", 30),
            ("run.sa.occ_idle", 50),
            ("run.sa.occ_saturated", 0),
            ("run.cache.occ_busy", 30),
            ("run.cache.occ_blocked", 40),
            ("run.cache.occ_idle", 30),
            ("run.cache.occ_saturated", 0),
            ("run.dram.occ_busy", 90),
            ("run.dram.occ_blocked", 5),
            ("run.dram.occ_idle", 5),
            ("run.dram.occ_saturated", 60),
        ]);
        let section = bottleneck_json(&doc).expect("section");
        validate_bottleneck_json(&section).expect("valid");
        let report = section.get("run").expect("run report");
        assert_eq!(
            report.get("bound").and_then(Json::as_str),
            Some("dram_bandwidth")
        );
        let busy_pct = report
            .get("resources")
            .and_then(|r| r.get("dram"))
            .and_then(|d| d.get("busy_pct"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((busy_pct - 90.0).abs() < 1e-9);
        assert!(report
            .get("evidence")
            .and_then(Json::as_str)
            .unwrap()
            .contains("90.0%"));
    }

    #[test]
    fn engine_flags_saturated_combining_store() {
        let doc = doc_with_metrics(&[
            ("run.cycles", 100),
            ("run.sa.occ_busy", 50),
            ("run.sa.occ_blocked", 40),
            ("run.sa.occ_idle", 10),
            ("run.sa.occ_saturated", 45),
            ("run.dram.occ_busy", 80),
            ("run.dram.occ_blocked", 10),
            ("run.dram.occ_idle", 10),
            ("run.dram.occ_saturated", 0),
        ]);
        let section = bottleneck_json(&doc).expect("section");
        let report = section.get("run").expect("run report");
        assert_eq!(
            report.get("bound").and_then(Json::as_str),
            Some("comb_store")
        );
    }

    #[test]
    fn engine_groups_per_node_scopes() {
        let doc = doc_with_metrics(&[
            ("mesh.cycles", 200),
            ("mesh.node0.sa.occ_busy", 10),
            ("mesh.node0.sa.occ_blocked", 10),
            ("mesh.node0.sa.occ_idle", 180),
            ("mesh.node0.sa.occ_saturated", 0),
            ("mesh.node1.sa.occ_busy", 30),
            ("mesh.node1.sa.occ_blocked", 10),
            ("mesh.node1.sa.occ_idle", 160),
            ("mesh.node1.sa.occ_saturated", 0),
            ("mesh.net.occ_busy", 150),
            ("mesh.net.occ_blocked", 30),
            ("mesh.net.occ_idle", 20),
            ("mesh.net.occ_saturated", 10),
        ]);
        let section = bottleneck_json(&doc).expect("section");
        let report = section.get("mesh").expect("grouped report");
        assert_eq!(report.get("bound").and_then(Json::as_str), Some("crossbar"));
        let sa = report
            .get("resources")
            .and_then(|r| r.get("comb_store"))
            .expect("merged sa resource");
        assert_eq!(sa.get("busy").and_then(Json::as_u64), Some(40));
        assert_eq!(sa.get("instances").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn engine_returns_none_without_occupancy() {
        let doc = doc_with_metrics(&[("run.cycles", 100), ("run.sa.accepted", 5)]);
        assert!(bottleneck_json(&doc).is_none());
    }

    #[test]
    fn attach_inserts_before_rows() {
        let mut doc = doc_with_metrics(&[
            ("run.cycles", 10),
            ("run.sa.occ_busy", 5),
            ("run.sa.occ_blocked", 0),
            ("run.sa.occ_idle", 5),
            ("run.sa.occ_saturated", 0),
        ]);
        assert!(attach_bottleneck(&mut doc));
        let keys: Vec<&str> = doc
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["metrics", "bottleneck", "rows"]);
        // Attaching is idempotent in effect only if called once; callers
        // attach during document assembly. Render smoke check:
        let text = render_bottleneck(doc.get("bottleneck").unwrap());
        assert!(text.contains("== bottleneck: run"));
        assert!(text.contains("what-if"));
    }

    #[test]
    fn whatif_model_is_amdahl_upper_bound() {
        // 50% share halved => 1/(1 - 0.5*0.5) = 1.3333x
        let mut latency = Json::obj();
        let mut run = Json::obj();
        let mut stages = Json::obj();
        let mut dram = Json::obj();
        dram.push("share_pct", Json::Num(50.0));
        dram.push("total", Json::UInt(100));
        stages.push("dram", dram);
        run.push("stages", stages);
        latency.push("run", run);
        let mut doc = doc_with_metrics(&[
            ("run.cycles", 100),
            ("run.sa.occ_busy", 5),
            ("run.sa.occ_blocked", 0),
            ("run.sa.occ_idle", 95),
            ("run.sa.occ_saturated", 0),
        ]);
        doc.push("latency", latency);
        let section = bottleneck_json(&doc).expect("section");
        let report = section.get("run").unwrap();
        let rows = report.get("whatif").and_then(Json::as_arr).unwrap();
        let dram_row = rows
            .iter()
            .find(|r| r.get("change").and_then(Json::as_str) == Some("2x dram_channels"))
            .unwrap();
        let sp = dram_row
            .get("predicted_speedup_max")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((sp - 1.3333).abs() < 1e-9, "{sp}");
    }
}
