//! Deterministic fault injection for the scatter-add simulator.
//!
//! A [`FaultPlan`] is a seeded, schedule-driven description of transient
//! faults: ECC events on DRAM reads, crossbar injection NACKs and flit
//! drops, and stalled combining-store entries. Every decision is a pure
//! function of `(plan seed, fault site, rule index, per-site event
//! ordinal)` — never wall clock, thread id, or global iteration count — so
//! a faulted run is bit-reproducible under `--jobs N` sweeps, phase-parallel
//! multinode stepping, and `--fast-forward` cycle skipping alike.
//!
//! Components pull decisions from a per-site [`FaultInjector`] compiled out
//! of the plan; an inert injector ([`FaultInjector::none`]) costs one branch
//! per event, which keeps the fault-free fast path byte-identical to a build
//! without this crate. Recovery bookkeeping lives in [`ResilienceStats`] and
//! retry pacing in [`Backoff`]. See `docs/RESILIENCE.md` for the plan JSON
//! format and the recovery semantics of each fault kind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, OnceLock, RwLock};

use sa_telemetry::{Json, Scope};

/// `schema` field of a fault-plan JSON document.
pub const FAULTPLAN_SCHEMA_NAME: &str = "sa-faultplan";

/// Current fault-plan document version.
pub const FAULTPLAN_SCHEMA_VERSION: u64 = 1;

/// Default combining-store stall watchdog timeout (cycles); see
/// [`FaultPlan::cs_timeout`].
pub const DEFAULT_CS_TIMEOUT: u64 = 64;

/// Cap on MSHR fill replays for one line before the error is declared
/// uncorrectable and the (functionally intact) data is accepted anyway.
pub const ECC_REPLAY_LIMIT: u32 = 8;

// ---------------------------------------------------------------------------
// Fault kinds and sites
// ---------------------------------------------------------------------------

/// One injectable fault event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Single-bit DRAM read error: corrected inline by ECC, counted only.
    EccSingle,
    /// Double-bit DRAM read error: detected by ECC, the fill is refused and
    /// replayed from DRAM (MSHR replay).
    EccDouble,
    /// Crossbar injection refused (NACK); the sender retries with backoff.
    NetNack,
    /// Crossbar flit dropped in the fabric; link-level retransmission
    /// redelivers it after another hop latency.
    NetDrop,
    /// A combining-store entry wedges for this many cycles before it may
    /// issue to the FU (the node watchdog can cancel it sooner).
    CsStall {
        /// Stall duration in cycles.
        cycles: u64,
    },
}

impl FaultKind {
    /// The site class this kind of fault strikes.
    pub fn site(self) -> FaultSite {
        match self {
            FaultKind::EccSingle | FaultKind::EccDouble => FaultSite::DramRead,
            FaultKind::NetNack => FaultSite::NetInject,
            FaultKind::NetDrop => FaultSite::NetDeliver,
            FaultKind::CsStall { .. } => FaultSite::CsEntry,
        }
    }

    /// Stable lowercase name used in plan JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::EccSingle => "ecc_single",
            FaultKind::EccDouble => "ecc_double",
            FaultKind::NetNack => "net_nack",
            FaultKind::NetDrop => "net_drop",
            FaultKind::CsStall { .. } => "cs_stall",
        }
    }
}

/// Where in the machine a fault rule applies. Each simulated component owns
/// one injector per site instance, addressed by `(site, node, unit)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A DRAM channel read completion (`unit` = channel index).
    DramRead,
    /// A crossbar injection port (`unit` = port index).
    NetInject,
    /// Crossbar fabric delivery (one site per crossbar).
    NetDeliver,
    /// A combining-store submission (`unit` = bank index).
    CsEntry,
}

impl FaultSite {
    fn tag(self) -> u64 {
        match self {
            FaultSite::DramRead => 1,
            FaultSite::NetInject => 2,
            FaultSite::NetDeliver => 3,
            FaultSite::CsEntry => 4,
        }
    }
}

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// One schedule line of a plan: fire `kind` at its site whenever the seeded
/// hash of the event ordinal lands on `period`, up to `max` times per site
/// instance, skipping the first `after` events.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Average spacing in site events; the hash fires roughly one in
    /// `period` events. Must be at least 1 (1 = every event).
    pub period: u64,
    /// Upper bound on firings per site instance (keeps plans recoverable
    /// and runs terminating by construction).
    pub max: u64,
    /// Number of initial site events exempt from this rule.
    pub after: u64,
}

/// A seeded, deterministic fault schedule.
///
/// An empty plan ([`FaultPlan::empty`]) injects nothing and leaves the
/// simulator byte-identical to a run with no plan installed at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Watchdog timeout (cycles) after which `NodeMemSys` cancels a stalled
    /// combining-store entry and requeues it for FU issue.
    pub cs_timeout: u64,
    /// The schedule.
    pub rules: Vec<FaultRule>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::empty()
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn empty() -> FaultPlan {
        FaultPlan {
            seed: 0,
            cs_timeout: DEFAULT_CS_TIMEOUT,
            rules: Vec::new(),
        }
    }

    /// Whether the plan has no rules (injects nothing).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Compile the injector for one site instance. Only rules whose kind
    /// strikes `site` are retained; for a site no rule touches this returns
    /// an inert injector.
    pub fn injector(&self, site: FaultSite, node: u64, unit: u64) -> FaultInjector {
        let rules: Vec<CompiledRule> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind.site() == site)
            .map(|(idx, r)| CompiledRule {
                rule: *r,
                index: idx as u64,
                fired: 0,
            })
            .collect();
        if rules.is_empty() {
            return FaultInjector::none();
        }
        FaultInjector {
            site_key: mix(self.seed, site.tag(), node, unit),
            rules,
            k: 0,
        }
    }

    /// Parse a plan from its JSON document text.
    ///
    /// Unknown fields are rejected nowhere (forward compatibility); missing
    /// optional fields take defaults (`seed` 0, `cs_timeout`
    /// [`DEFAULT_CS_TIMEOUT`], `max` unbounded, `after` 0).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("fault plan: missing schema field")?;
        if schema != FAULTPLAN_SCHEMA_NAME {
            return Err(format!(
                "fault plan: schema is {schema:?}, expected {FAULTPLAN_SCHEMA_NAME:?}"
            ));
        }
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("fault plan: missing version field")?;
        if version == 0 || version > FAULTPLAN_SCHEMA_VERSION {
            return Err(format!(
                "fault plan: version {version} unsupported (expected 1..={FAULTPLAN_SCHEMA_VERSION})"
            ));
        }
        let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let cs_timeout = doc
            .get("cs_timeout")
            .and_then(Json::as_u64)
            .unwrap_or(DEFAULT_CS_TIMEOUT)
            .max(1);
        let mut rules = Vec::new();
        if let Some(faults) = doc.get("faults").and_then(Json::as_arr) {
            for (i, f) in faults.iter().enumerate() {
                rules.push(parse_rule(f).map_err(|e| format!("fault plan: faults[{i}]: {e}"))?);
            }
        }
        Ok(FaultPlan {
            seed,
            cs_timeout,
            rules,
        })
    }

    /// Load and parse a plan from a file on disk.
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("fault plan {}: {e}", path.display()))?;
        FaultPlan::parse(&text)
    }

    /// Serialize back to the plan JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(FAULTPLAN_SCHEMA_NAME.to_string()));
        doc.push("version", Json::UInt(FAULTPLAN_SCHEMA_VERSION));
        doc.push("seed", Json::UInt(self.seed));
        doc.push("cs_timeout", Json::UInt(self.cs_timeout));
        let mut faults = Vec::new();
        for r in &self.rules {
            let mut o = Json::obj();
            o.push("kind", Json::Str(r.kind.name().to_string()));
            if let FaultKind::CsStall { cycles } = r.kind {
                o.push("cycles", Json::UInt(cycles));
            }
            o.push("period", Json::UInt(r.period));
            if r.max != u64::MAX {
                o.push("max", Json::UInt(r.max));
            }
            if r.after != 0 {
                o.push("after", Json::UInt(r.after));
            }
            faults.push(o);
        }
        doc.push("faults", Json::Arr(faults));
        doc
    }
}

fn parse_rule(f: &Json) -> Result<FaultRule, String> {
    let name = f
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing kind field")?;
    let kind = match name {
        "ecc_single" => FaultKind::EccSingle,
        "ecc_double" => FaultKind::EccDouble,
        "net_nack" => FaultKind::NetNack,
        "net_drop" => FaultKind::NetDrop,
        "cs_stall" => FaultKind::CsStall {
            cycles: f.get("cycles").and_then(Json::as_u64).unwrap_or(32).max(1),
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    let period = f.get("period").and_then(Json::as_u64).unwrap_or(1).max(1);
    let max = f.get("max").and_then(Json::as_u64).unwrap_or(u64::MAX);
    let after = f.get("after").and_then(Json::as_u64).unwrap_or(0);
    Ok(FaultRule {
        kind,
        period,
        max,
        after,
    })
}

// ---------------------------------------------------------------------------
// Process-wide default plan
// ---------------------------------------------------------------------------

fn plan_cell() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static CELL: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    CELL.get_or_init(|| RwLock::new(None))
}

/// Install a process-wide default fault plan picked up by newly constructed
/// simulator components (mirrors `sa_sim`'s fast-forward default). Binaries
/// set this once from `--faults` before building anything; library callers
/// should prefer the explicit `set_fault_plan` setters, which override it.
pub fn set_default_plan(plan: Option<FaultPlan>) {
    *plan_cell().write().expect("fault plan lock") = plan.map(Arc::new);
}

/// The process-wide default fault plan, if one is installed.
pub fn default_plan() -> Option<Arc<FaultPlan>> {
    plan_cell().read().expect("fault plan lock").clone()
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct CompiledRule {
    rule: FaultRule,
    index: u64,
    fired: u64,
}

/// The per-site-instance decision stream compiled from a [`FaultPlan`].
///
/// Each call to [`FaultInjector::next`] consumes one site event ordinal and
/// returns the fault to inject there, if any. Decisions depend only on the
/// plan seed, the site identity, and the ordinal — identical regardless of
/// thread count, fast-forwarding, or wall clock.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    site_key: u64,
    rules: Vec<CompiledRule>,
    k: u64,
}

impl Default for FaultInjector {
    fn default() -> FaultInjector {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// An inert injector that never fires. [`FaultInjector::is_active`] is
    /// false, so hot paths can skip fault bookkeeping entirely.
    pub fn none() -> FaultInjector {
        FaultInjector {
            site_key: 0,
            rules: Vec::new(),
            k: 0,
        }
    }

    /// Whether any rule targets this site (false for [`FaultInjector::none`]).
    pub fn is_active(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Consume the next site event and return the fault striking it, if any.
    /// Rules are tried in plan order; the first hit wins.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, side-effecting
    pub fn next(&mut self) -> Option<FaultKind> {
        if self.rules.is_empty() {
            return None;
        }
        let k = self.k;
        self.k += 1;
        for c in &mut self.rules {
            if c.fired >= c.rule.max || k < c.rule.after {
                continue;
            }
            if mix(self.site_key, c.index, k, 0).is_multiple_of(c.rule.period) {
                c.fired += 1;
                return Some(c.rule.kind);
            }
        }
        None
    }

    /// Total faults fired by this injector so far.
    pub fn fired(&self) -> u64 {
        self.rules.iter().map(|c| c.fired).sum()
    }
}

/// SplitMix64 finalizer: the same bijective mixer the simulator's `Rng64`
/// uses, applied to a combination of words. Deterministic and well-spread.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    mix64(
        a.wrapping_add(GOLDEN)
            .wrapping_mul(GOLDEN)
            .wrapping_add(mix64(b ^ mix64(c.wrapping_add(d.wrapping_mul(GOLDEN))))),
    )
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

/// Bounded exponential backoff schedule for NACKed network requests:
/// delay `min(base << attempt, cap)` cycles, doubling per attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Backoff {
    base: u64,
    cap: u64,
    attempt: u32,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new(2, 256)
    }
}

impl Backoff {
    /// A schedule starting at `base` cycles and capped at `cap`.
    pub fn new(base: u64, cap: u64) -> Backoff {
        Backoff {
            base: base.max(1),
            cap: cap.max(1),
            attempt: 0,
        }
    }

    /// The delay for the next retry, advancing the attempt counter.
    pub fn next_delay(&mut self) -> u64 {
        let shift = self.attempt.min(62);
        let d = self.base.saturating_shl(shift).min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        d
    }

    /// Retries attempted so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Reset after a successful send.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

// ---------------------------------------------------------------------------
// Resilience counters
// ---------------------------------------------------------------------------

/// Graceful-degradation counters accumulated by the recovery machinery.
///
/// Grouped in one nested struct (rather than loose fields on each report
/// type) and recorded into the metrics registry only when non-zero, so an
/// empty fault plan leaves the sa-stats document byte-identical.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Single-bit DRAM errors corrected inline by ECC.
    pub ecc_corrected: u64,
    /// Double-bit DRAM errors detected by ECC (each triggers a replay).
    pub ecc_detected: u64,
    /// Lines whose replay budget ran out; data accepted, error declared
    /// uncorrectable.
    pub ecc_uncorrected: u64,
    /// MSHR fill replays issued for ECC-detected lines.
    pub mshr_replays: u64,
    /// Crossbar injections refused (NACKed).
    pub net_nacks: u64,
    /// Flits dropped in the crossbar fabric.
    pub net_dropped: u64,
    /// Dropped flits redelivered by link-level retransmission.
    pub net_recovered: u64,
    /// Sender-side backoff retries after a NACK.
    pub net_retries: u64,
    /// Combining-store entries wedged by an injected stall.
    pub cs_stalls: u64,
    /// Stalled entries cancelled and requeued by the node watchdog.
    pub cs_timeouts: u64,
}

impl ResilienceStats {
    /// Whether every counter is zero (nothing to report).
    pub fn is_zero(&self) -> bool {
        *self == ResilienceStats::default()
    }

    /// Accumulate another set of counters into this one.
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_detected += other.ecc_detected;
        self.ecc_uncorrected += other.ecc_uncorrected;
        self.mshr_replays += other.mshr_replays;
        self.net_nacks += other.net_nacks;
        self.net_dropped += other.net_dropped;
        self.net_recovered += other.net_recovered;
        self.net_retries += other.net_retries;
        self.cs_stalls += other.cs_stalls;
        self.cs_timeouts += other.cs_timeouts;
    }

    /// Record every counter under `scope` (callers gate on
    /// [`ResilienceStats::is_zero`] to preserve empty-plan byte-identity).
    pub fn record(&self, scope: &mut Scope<'_>) {
        scope.counter("ecc_corrected", self.ecc_corrected);
        scope.counter("ecc_detected", self.ecc_detected);
        scope.counter("ecc_uncorrected", self.ecc_uncorrected);
        scope.counter("mshr_replays", self.mshr_replays);
        scope.counter("net_nacks", self.net_nacks);
        scope.counter("net_dropped", self.net_dropped);
        scope.counter("net_recovered", self.net_recovered);
        scope.counter("net_retries", self.net_retries);
        scope.counter("cs_stalls", self.cs_stalls);
        scope.counter("cs_timeouts", self.cs_timeouts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_text() -> &'static str {
        r#"{
          "schema": "sa-faultplan",
          "version": 1,
          "seed": 7,
          "cs_timeout": 48,
          "faults": [
            {"kind": "ecc_single", "period": 10, "max": 100},
            {"kind": "ecc_double", "period": 37, "max": 4},
            {"kind": "net_nack", "period": 13},
            {"kind": "net_drop", "period": 31, "max": 8, "after": 5},
            {"kind": "cs_stall", "cycles": 40, "period": 29, "max": 16}
          ]
        }"#
    }

    #[test]
    fn parse_round_trips() {
        let plan = FaultPlan::parse(plan_text()).expect("parse");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.cs_timeout, 48);
        assert_eq!(plan.rules.len(), 5);
        assert_eq!(plan.rules[0].kind, FaultKind::EccSingle);
        assert_eq!(plan.rules[2].max, u64::MAX);
        assert_eq!(plan.rules[3].after, 5);
        assert_eq!(plan.rules[4].kind, FaultKind::CsStall { cycles: 40 });
        let text = plan.to_json().to_string_pretty();
        let again = FaultPlan::parse(&text).expect("reparse");
        assert_eq!(plan, again);
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(FaultPlan::parse("{}").is_err());
        assert!(FaultPlan::parse(r#"{"schema":"nope","version":1}"#).is_err());
        assert!(FaultPlan::parse(r#"{"schema":"sa-faultplan","version":99}"#).is_err());
        assert!(FaultPlan::parse(
            r#"{"schema":"sa-faultplan","version":1,"faults":[{"kind":"zap"}]}"#
        )
        .is_err());
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        let mut inj = plan.injector(FaultSite::DramRead, 0, 0);
        assert!(!inj.is_active());
        for _ in 0..1000 {
            assert_eq!(inj.next(), None);
        }
    }

    #[test]
    fn injector_is_deterministic_and_site_keyed() {
        let plan = FaultPlan::parse(plan_text()).expect("parse");
        let decide = |node, unit| {
            let mut inj = plan.injector(FaultSite::DramRead, node, unit);
            (0..500).map(|_| inj.next()).collect::<Vec<_>>()
        };
        // Same site: identical stream. Different site: (almost surely)
        // different stream. Seeds matter.
        assert_eq!(decide(0, 0), decide(0, 0));
        assert_ne!(decide(0, 0), decide(0, 1));
        assert_ne!(decide(0, 0), decide(1, 0));
        let mut other = plan.clone();
        other.seed = 8;
        let mut inj = other.injector(FaultSite::DramRead, 0, 0);
        let stream: Vec<_> = (0..500).map(|_| inj.next()).collect();
        assert_ne!(decide(0, 0), stream);
    }

    #[test]
    fn injector_respects_max_and_after() {
        let plan = FaultPlan {
            seed: 3,
            cs_timeout: DEFAULT_CS_TIMEOUT,
            rules: vec![FaultRule {
                kind: FaultKind::NetDrop,
                period: 1, // every event...
                max: 3,    // ...but only three times...
                after: 10, // ...and not in the first ten.
            }],
        };
        let mut inj = plan.injector(FaultSite::NetDeliver, 0, 0);
        let fired: Vec<usize> = (0..100)
            .filter_map(|i| inj.next().map(|_| i))
            .collect::<Vec<_>>();
        assert_eq!(fired, vec![10, 11, 12]);
        assert_eq!(inj.fired(), 3);
    }

    #[test]
    fn injector_only_compiles_matching_sites() {
        let plan = FaultPlan::parse(plan_text()).expect("parse");
        let mut cs = plan.injector(FaultSite::CsEntry, 0, 2);
        assert!(cs.is_active());
        for _ in 0..2000 {
            if let Some(kind) = cs.next() {
                assert!(matches!(kind, FaultKind::CsStall { cycles: 40 }));
            }
        }
        // A plan with only ECC rules is inert at network sites.
        let ecc_only = FaultPlan {
            rules: plan
                .rules
                .iter()
                .copied()
                .filter(|r| r.kind.site() == FaultSite::DramRead)
                .collect(),
            ..plan
        };
        assert!(!ecc_only.injector(FaultSite::NetInject, 0, 0).is_active());
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let mut b = Backoff::new(2, 256);
        let delays: Vec<u64> = (0..10).map(|_| b.next_delay()).collect();
        assert_eq!(delays, vec![2, 4, 8, 16, 32, 64, 128, 256, 256, 256]);
        assert_eq!(b.attempts(), 10);
        b.reset();
        assert_eq!(b.next_delay(), 2);
        // Extreme shifts saturate instead of overflowing.
        let mut wide = Backoff::new(u64::MAX / 2, u64::MAX);
        wide.next_delay();
        assert_eq!(wide.next_delay(), u64::MAX);
    }

    #[test]
    fn resilience_stats_merge_and_zero() {
        let mut a = ResilienceStats::default();
        assert!(a.is_zero());
        let b = ResilienceStats {
            ecc_corrected: 2,
            net_nacks: 1,
            ..ResilienceStats::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.ecc_corrected, 4);
        assert_eq!(a.net_nacks, 2);
        assert!(!a.is_zero());
    }

    #[test]
    fn default_plan_round_trips() {
        // Note: tests in this binary run concurrently; use a plan value
        // distinctive enough not to collide with other tests (none of which
        // touch the process default).
        set_default_plan(Some(FaultPlan {
            seed: 0xD00D,
            ..FaultPlan::empty()
        }));
        let got = default_plan().expect("installed");
        assert_eq!(got.seed, 0xD00D);
        set_default_plan(None);
        assert!(default_plan().is_none());
    }
}
