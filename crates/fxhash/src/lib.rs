//! A dependency-free, offline stand-in for the `fxhash`/`rustc-hash`
//! crates.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so the real crate cannot be vendored from crates.io.
//! This implements the same well-known Fx construction — fold each 8-byte
//! word into the state with a rotate, an xor, and a multiply by a fixed
//! odd constant — which is what makes it so much cheaper than the standard
//! library's SipHash for the small integer keys the simulator hashes on
//! every memory access (word addresses, line indices, request ids).
//!
//! Determinism matters as much as speed here: the hasher has no per-process
//! random seed (unlike `std`'s `RandomState`), so hash values — and
//! therefore map capacity growth and probe sequences — are identical across
//! runs and processes. No simulator map is ever iterated for output, so the
//! hasher choice cannot affect simulation results either way; see
//! `docs/PERFORMANCE.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox hash constant: a large odd number with well-mixed bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for small keys.
///
/// Not resistant to hash-flooding; use only on keys an adversary does not
/// control (simulator-internal addresses and ids).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(v: u64) -> u64 {
        let mut h = FxBuildHasher::default().build_hasher();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        for v in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(hash_of(v), hash_of(v));
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim, just a sanity check that the
        // mixer is not degenerate on small sequential keys.
        let hashes: FxHashSet<u64> = (0..10_000u64).map(hash_of).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        // Length is folded into the tail word, so a short write and its
        // zero-padded extension do not trivially collide.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(8, "line");
        assert_eq!(m.get(&8), Some(&"line"));
        let s: FxHashSet<u64> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
