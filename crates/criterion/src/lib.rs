//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The container this workspace builds in has no network access to a crates
//! registry, so the real criterion cannot be fetched. This crate implements
//! the small slice of its API the workspace's `benches/` use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a deliberately simple
//! wall-clock harness: each benchmark runs a short warm-up, then a fixed
//! number of timed samples, and the median ns/iteration is printed.
//!
//! It makes no statistical claims; it exists so `cargo bench` compiles, runs,
//! and produces stable relative numbers for coarse comparisons (e.g. the
//! telemetry-overhead check in `crates/bench/benches/`).

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
    n_samples: usize,
}

impl Bencher {
    fn new(n_samples: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            n_samples,
        }
    }

    /// Time `routine`, recording a handful of samples of a few iterations
    /// each. The routine's return value is passed through `black_box` so the
    /// optimizer cannot delete the measured work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for samples of at least ~1ms, capped so quick-mode
        // bench runs stay quick.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64();
        let target = 1e-3;
        self.iters_per_sample = if once > 0.0 {
            ((target / once).ceil() as u64).clamp(1, 1024)
        } else {
            1024
        };
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let dt = start.elapsed().as_secs_f64();
            self.samples.push(dt / self.iters_per_sample as f64);
        }
    }

    /// Median seconds per iteration over the recorded samples.
    fn median_secs(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        self.samples[self.samples.len() / 2]
    }
}

/// Identifier for a parameterized benchmark, mirroring criterion's type.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only the parameter, for use inside a named group.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness. Created by `criterion_group!`.
pub struct Criterion {
    n_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { n_samples: 10 }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, n_samples: usize, mut f: F) {
    let mut b = Bencher::new(n_samples);
    f(&mut b);
    let med = b.median_secs();
    if med >= 1.0 {
        println!("bench {label:<40} {:>12.3} s/iter", med);
    } else if med >= 1e-3 {
        println!("bench {label:<40} {:>12.3} ms/iter", med * 1e3);
    } else {
        println!("bench {label:<40} {:>12.0} ns/iter", med * 1e9);
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_one(id, self.n_samples, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            n_samples: self.n_samples,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    n_samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (criterion requires
    /// >= 10; we honor the request directly).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.n_samples = n.max(2);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.n_samples, f);
        self
    }

    /// Run a parameterized benchmark; the input is passed by reference to the
    /// closure alongside the `Bencher`.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.n_samples, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name. Only the simple `(name, targets...)` form used by
/// this workspace is supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $(
                $target(&mut c);
            )+
        }
    };
}

/// Entry point expanding to `fn main` that runs each group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(4);
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples.len(), 4);
        assert!(b.median_secs() >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(16).to_string(), "16");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn group_runs_everything() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0;
        group.bench_function("a", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 2);
        group.finish();
    }
}
