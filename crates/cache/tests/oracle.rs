//! Model-checking the cache bank: arbitrary interleavings of reads, writes,
//! fills, and evictions must behave exactly like a flat memory.

use std::collections::VecDeque;

use proptest::prelude::*;
use sa_cache::{AccessKind, CacheAccess, CacheBank};
use sa_mem::{BackingStore, DramKind, DramResponse};
use sa_sim::{Addr, CacheConfig, Cycle, Origin};

/// A tiny bank so evictions, MSHR merges, and write-arounds all trigger.
fn tiny() -> CacheConfig {
    CacheConfig {
        banks: 1,
        total_bytes: 256, // 8 lines of 32 B
        line_bytes: 32,
        ways: 2,
        mshrs_per_bank: 2,
        targets_per_mshr: 2,
        hit_latency: 1,
    }
}

#[derive(Copy, Clone, Debug)]
enum Op {
    Read(u64),
    Write(u64, u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(Op::Read),
            ((0u64..64), any::<u64>()).prop_map(|(w, v)| Op::Write(w, v)),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive random traffic through the bank with a 20-cycle memory behind
    /// it; every read must observe the latest prior write to its word, and
    /// the final flushed state must equal the reference memory.
    #[test]
    fn cache_behaves_like_flat_memory(ops in ops()) {
        let cfg = tiny();
        let mut bank = CacheBank::new(cfg, 0, 0);
        let mut store = BackingStore::new();
        let mut reference = std::collections::HashMap::<u64, u64>::new();
        let mut dram: VecDeque<(Cycle, sa_mem::DramCommand)> = VecDeque::new();
        let mut expected_reads = std::collections::HashMap::<u64, u64>::new();
        let mut now = Cycle(0);
        let mut next_op = 0usize;
        let mut reads_done = 0usize;
        let mut reads_total = 0usize;
        let lat = 20u64;

        for _ in 0..200_000 {
            now += 1;
            bank.tick(now);
            // One access attempt per cycle, strictly in program order.
            if next_op < ops.len() {
                let (access, is_read) = match ops[next_op] {
                    Op::Read(w) => (
                        CacheAccess {
                            id: next_op as u64,
                            addr: Addr::from_word_index(w),
                            kind: AccessKind::Read { zero_alloc: false },
                            origin: Origin::AddrGen { node: 0, ag: 0 },
                        },
                        true,
                    ),
                    Op::Write(w, v) => (
                        CacheAccess {
                            id: next_op as u64,
                            addr: Addr::from_word_index(w),
                            kind: AccessKind::Write { bits: v, partial_sum: false },
                            origin: Origin::AddrGen { node: 0, ag: 0 },
                        },
                        false,
                    ),
                };
                if bank.try_access(access, now).is_ok() {
                    match ops[next_op] {
                        Op::Read(w) => {
                            expected_reads.insert(
                                next_op as u64,
                                reference.get(&w).copied().unwrap_or(0),
                            );
                            reads_total += 1;
                            let _ = is_read;
                        }
                        Op::Write(w, v) => {
                            reference.insert(w, v);
                        }
                    }
                    next_op += 1;
                }
            }
            // Service DRAM with a fixed latency.
            while let Some(cmd) = bank.pop_mem_cmd() {
                dram.push_back((now + lat, cmd));
            }
            while dram.front().is_some_and(|(t, _)| *t <= now) {
                let (_, cmd) = dram.pop_front().unwrap();
                let data = match cmd.kind {
                    DramKind::Read => store.read_line(cmd.base, u64::from(cmd.words)),
                    DramKind::Write(ref d) => {
                        store.write_line(cmd.base, d);
                        Vec::new()
                    }
                };
                bank.on_mem_response(DramResponse {
                    id: cmd.id,
                    base: cmd.base,
                    data,
                    origin: cmd.origin,
                    at: now,
                    ecc_error: false,
                });
            }
            while let Some(r) = bank.pop_ready(now) {
                let expect = expected_reads.remove(&r.id).expect("read was issued");
                prop_assert_eq!(
                    r.bits, expect,
                    "read id {} at {} observed {} expected {}",
                    r.id, r.addr, r.bits, expect
                );
                reads_done += 1;
            }
            if next_op == ops.len() && bank.is_idle() && dram.is_empty() {
                break;
            }
        }
        prop_assert_eq!(reads_done, reads_total, "every read completed");
        // Flush the cache: memory must now equal the reference exactly.
        for (base, data) in bank.flush_dirty() {
            store.write_line(base, &data);
        }
        for (&w, &v) in &reference {
            prop_assert_eq!(
                store.read_word(Addr::from_word_index(w)), v,
                "word {} diverged", w
            );
        }
    }
}
