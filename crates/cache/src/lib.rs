//! The banked stream data cache of the simulated machine.
//!
//! The paper's base machine (Table 1) has an address-interleaved, 1 MB,
//! 8-bank stream cache acting as a bandwidth amplifier in front of the DRAM
//! channels. One scatter-add unit sits in front of each bank (Figure 4a);
//! this crate provides the bank itself, the scatter-add unit lives in
//! `sa-core`.
//!
//! Each [`CacheBank`] is set-associative with LRU replacement and a small
//! file of miss-status handling registers (MSHRs). Policy choices, chosen to
//! match a streaming memory system:
//!
//! * **Reads** allocate on miss (fill from DRAM, merging concurrent misses
//!   to the same line into one MSHR).
//! * **Plain writes** are *write-around*: a write that hits updates the line,
//!   a write that misses is forwarded to DRAM as a single-word write without
//!   allocating — streaming stores have no reuse, and allocation would double
//!   their traffic. A write that misses while a fill to its line is in flight
//!   merges into the MSHR and is applied after the fill (hit-under-miss).
//! * **Combining mode** (the multi-node optimization of §3.2): a read flagged
//!   `zero_alloc` that misses allocates the line *filled with zeros* instead
//!   of fetching it, and writes flagged `partial_sum` mark the line as a
//!   partial-sum line. Evicting a partial-sum line emits a [`SumBack`]
//!   (§3.2: "a sum-back is similar to a cache write-back except that the
//!   remote write-request appears as a scatter-add on the node owning the
//!   memory address"); [`CacheBank::flush_sum_backs`] implements the final
//!   flush-with-sum-back synchronization step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;

pub use bank::{AccessKind, CacheAccess, CacheBank, CacheStats, SumBack};
