//! One address-interleaved bank of the stream cache.

use std::collections::VecDeque;

use fxhash::FxHashMap;
use sa_faults::{ResilienceStats, ECC_REPLAY_LIMIT};
use sa_mem::{DramCommand, DramKind, DramResponse};
use sa_sim::{Addr, BoundedQueue, CacheConfig, Cycle, MemResponse, Origin, ReqId, WORD_BYTES};
use sa_telemetry::{OccClass, OccupancyStats};

/// What a cache access does. See the crate docs for the policies.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum AccessKind {
    /// Fetch one word. With `zero_alloc` (combining mode) a miss allocates a
    /// zero-filled line instead of fetching from memory.
    Read {
        /// Allocate-with-zero on miss instead of filling from DRAM.
        zero_alloc: bool,
    },
    /// Store one word. With `partial_sum` (combining mode) the line is marked
    /// as holding partial sums, so its eviction becomes a [`SumBack`].
    Write {
        /// Raw bits to store.
        bits: u64,
        /// Mark the target line as a partial-sum line.
        partial_sum: bool,
    },
}

/// A single-word access presented to a cache bank.
#[derive(Copy, Clone, Debug)]
pub struct CacheAccess {
    /// Echoed in the data response (reads only).
    pub id: ReqId,
    /// Word-aligned target address; must map to this bank.
    pub addr: Addr,
    /// Read or write, with combining-mode flags.
    pub kind: AccessKind,
    /// Issuer, echoed in the data response.
    pub origin: Origin,
}

/// An evicted partial-sum line on its way to the home node, where each word
/// is applied as a scatter-add (§3.2 multi-node optimization).
#[derive(Clone, Debug, PartialEq)]
pub struct SumBack {
    /// First byte address of the line.
    pub base: Addr,
    /// The partial sums accumulated in the line (words_per_line values).
    pub data: Vec<u64>,
}

/// Counters for one bank.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads that hit a resident line.
    pub read_hits: u64,
    /// Reads that required a DRAM fill.
    pub read_misses: u64,
    /// Reads absorbed by an already-pending fill (hit-under-miss).
    pub read_merges: u64,
    /// Writes that hit a resident line.
    pub write_hits: u64,
    /// Writes forwarded directly to DRAM (write-around).
    pub write_arounds: u64,
    /// Writes merged into a pending fill.
    pub write_merges: u64,
    /// Zero-allocated lines (combining mode).
    pub zero_allocs: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty lines written back to DRAM.
    pub write_backs: u64,
    /// Partial-sum lines emitted as sum-backs.
    pub sum_backs: u64,
    /// Accesses rejected for lack of a resource (caller retries).
    pub blocked: u64,
    /// Subset of `blocked`: rejections because the MSHR file was exhausted or
    /// a pending-fill MSHR had no free target slot.
    pub mshr_full: u64,
    /// Busy/blocked/idle cycle account (access granted or fill installed /
    /// misses outstanding / empty), with `saturated` counting cycles the
    /// MSHR file was at capacity or rejected for lack of a target slot.
    pub occ: OccupancyStats,
}

impl CacheStats {
    /// Read hit fraction (0 when no reads happened).
    pub fn read_hit_rate(&self) -> f64 {
        let n = self.read_hits + self.read_misses + self.read_merges;
        if n == 0 {
            0.0
        } else {
            self.read_hits as f64 / n as f64
        }
    }

    /// Merge another bank's counters.
    pub fn merge(&mut self, o: CacheStats) {
        self.read_hits += o.read_hits;
        self.read_misses += o.read_misses;
        self.read_merges += o.read_merges;
        self.write_hits += o.write_hits;
        self.write_arounds += o.write_arounds;
        self.write_merges += o.write_merges;
        self.zero_allocs += o.zero_allocs;
        self.evictions += o.evictions;
        self.write_backs += o.write_backs;
        self.sum_backs += o.sum_backs;
        self.blocked += o.blocked;
        self.mshr_full += o.mshr_full;
        self.occ.merge(o.occ);
    }

    /// Record these counters into a telemetry scope.
    pub fn record(&self, scope: &mut sa_telemetry::Scope<'_>) {
        scope.counter("read_hits", self.read_hits);
        scope.counter("read_misses", self.read_misses);
        scope.counter("read_merges", self.read_merges);
        scope.counter("write_hits", self.write_hits);
        scope.counter("write_arounds", self.write_arounds);
        scope.counter("write_merges", self.write_merges);
        scope.counter("zero_allocs", self.zero_allocs);
        scope.counter("evictions", self.evictions);
        scope.counter("write_backs", self.write_backs);
        scope.counter("sum_backs", self.sum_backs);
        scope.counter("blocked", self.blocked);
        scope.counter("mshr_full", self.mshr_full);
        self.occ.record(scope);
        scope.gauge("read_hit_rate", self.read_hit_rate());
    }
}

#[derive(Clone, Debug)]
struct Line {
    valid: bool,
    dirty: bool,
    partial_sum: bool,
    tag: u64,
    lru: u64,
    data: Vec<u64>,
}

/// One deferred access waiting on a line fill. Targets replay strictly in
/// arrival order when the fill returns, so a read issued before a write to
/// the same word observes the pre-write value (hit-under-miss ordering).
#[derive(Copy, Clone, Debug)]
enum MshrTarget {
    Read(ReqId, usize, Origin),
    Write(usize, u64, bool),
}

#[derive(Debug)]
struct Mshr {
    line_base: Addr,
    targets: Vec<MshrTarget>,
    /// Fill replays issued for this line after ECC-detected errors; capped
    /// at [`ECC_REPLAY_LIMIT`], after which the data is accepted as-is.
    replays: u32,
}

impl Mshr {
    fn occupancy(&self) -> usize {
        self.targets.len()
    }
}

/// One bank of the stream cache (see crate docs for policies).
#[derive(Debug)]
pub struct CacheBank {
    cfg: CacheConfig,
    node: usize,
    bank_index: usize,
    sets: Vec<Vec<Line>>,
    mshrs: Vec<Mshr>,
    /// Line base → index into `mshrs`. Line bases are unique across MSHRs by
    /// construction, and every access probes this on the miss path, so the
    /// deterministic fast hash replaces the former linear scans.
    mshr_lookup: FxHashMap<u64, usize>,
    mem_out: BoundedQueue<DramCommand>,
    pending_fills: VecDeque<DramResponse>,
    ready: VecDeque<MemResponse>,
    sum_backs: VecDeque<SumBack>,
    lru_tick: u64,
    next_cmd_id: ReqId,
    stats: CacheStats,
    resilience: ResilienceStats,
    /// Occupancy classification of the cycle currently in flight. A bank's
    /// class for one cycle is only known once the cycle's port accesses have
    /// been presented (which happens *after* [`CacheBank::tick`] in the node
    /// order), so the tick sets a provisional class, accesses upgrade it,
    /// and the next tick / skip / stats read commits it.
    pend: Option<(OccClass, bool)>,
}

impl CacheBank {
    /// Create bank `bank_index` of node `node` with geometry from `cfg`.
    pub fn new(cfg: CacheConfig, node: usize, bank_index: usize) -> CacheBank {
        assert!(bank_index < cfg.banks, "bank index out of range");
        let ways = cfg.ways;
        let words = cfg.words_per_line() as usize;
        let sets = (0..cfg.sets_per_bank())
            .map(|_| {
                (0..ways)
                    .map(|_| Line {
                        valid: false,
                        dirty: false,
                        partial_sum: false,
                        tag: 0,
                        lru: 0,
                        data: vec![0; words],
                    })
                    .collect()
            })
            .collect();
        CacheBank {
            node,
            bank_index,
            sets,
            mshrs: Vec::with_capacity(cfg.mshrs_per_bank),
            mshr_lookup: FxHashMap::default(),
            mem_out: BoundedQueue::new(cfg.mshrs_per_bank * 2),
            pending_fills: VecDeque::new(),
            ready: VecDeque::new(),
            sum_backs: VecDeque::new(),
            lru_tick: 0,
            next_cmd_id: 0,
            stats: CacheStats::default(),
            resilience: ResilienceStats::default(),
            pend: None,
            cfg,
        }
    }

    /// Commit the in-flight cycle's occupancy classification, if any.
    fn commit_pend(&mut self) {
        if let Some((class, at_capacity)) = self.pend.take() {
            self.stats.occ.cycle(class, at_capacity);
        }
    }

    /// Upgrade the in-flight cycle's class (`Idle < Blocked < Busy`) and/or
    /// flag it as at-capacity.
    fn occ_note(&mut self, class: OccClass, at_capacity: bool) {
        if let Some(p) = self.pend.as_mut() {
            p.0 = p.0.max(class);
            p.1 |= at_capacity;
        }
    }

    /// The state-only occupancy classification: misses or undrained output
    /// outstanding → blocked, else idle; at capacity when the MSHR file is
    /// exhausted. Shared by the per-cycle tick (as the provisional class)
    /// and the fast-forward fold (where the state is frozen, so no upgrades
    /// can occur and this is the final class).
    fn occ_baseline(&self) -> (OccClass, bool) {
        let class = if !self.mshrs.is_empty()
            || !self.pending_fills.is_empty()
            || !self.ready.is_empty()
            || !self.mem_out.is_empty()
            || !self.sum_backs.is_empty()
        {
            OccClass::Blocked
        } else {
            OccClass::Idle
        };
        (class, self.mshrs.len() >= self.cfg.mshrs_per_bank)
    }

    /// Map an address to (set, tag, word offset). The tag is the *full*
    /// global line index: the bank-selection hash is not invertible, so
    /// banks store complete line identities.
    fn locate(&self, addr: Addr) -> (usize, u64, usize) {
        let line_index = addr.line_index(self.cfg.line_bytes);
        debug_assert_eq!(
            self.cfg.bank_of_line(line_index),
            self.bank_index,
            "address {addr} does not map to bank {}",
            self.bank_index
        );
        let set = ((line_index / self.cfg.banks as u64) % self.cfg.sets_per_bank()) as usize;
        let tag = line_index;
        let offset = ((addr.0 % self.cfg.line_bytes) / WORD_BYTES) as usize;
        (set, tag, offset)
    }

    fn line_base_of(&self, addr: Addr) -> Addr {
        addr.line_base(self.cfg.line_bytes)
    }

    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        self.sets[set].iter().position(|l| l.valid && l.tag == tag)
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.lru_tick += 1;
        self.sets[set][way].lru = self.lru_tick;
    }

    fn line_base_from_parts(&self, _set: usize, tag: u64) -> Addr {
        Addr(tag * self.cfg.line_bytes)
    }

    /// Pick a victim way and evict it if needed. Returns the way on success,
    /// or `None` when eviction is blocked (the write-back queue is full).
    fn make_room(&mut self, set: usize) -> Option<usize> {
        if let Some(way) = self.sets[set].iter().position(|l| !l.valid) {
            return Some(way);
        }
        let way = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("ways > 0");
        let (dirty, partial) = {
            let l = &self.sets[set][way];
            (l.dirty, l.partial_sum)
        };
        if dirty {
            let tag = self.sets[set][way].tag;
            let base = self.line_base_from_parts(set, tag);
            if partial {
                let data = self.sets[set][way].data.clone();
                self.sum_backs.push_back(SumBack { base, data });
                self.stats.sum_backs += 1;
            } else {
                if !self.mem_out.can_accept() {
                    return None;
                }
                self.next_cmd_id += 1;
                let data = self.sets[set][way].data.clone();
                // Write-backs retire traffic from many past requests; no
                // single originator to attribute.
                let cmd = DramCommand {
                    id: self.next_cmd_id,
                    req: None,
                    base,
                    words: self.cfg.words_per_line() as u32,
                    kind: DramKind::Write(data),
                    origin: Origin::CacheBank {
                        node: self.node,
                        bank: self.bank_index,
                    },
                };
                self.mem_out.try_push(cmd).expect("capacity checked");
                self.stats.write_backs += 1;
            }
        }
        self.stats.evictions += 1;
        let l = &mut self.sets[set][way];
        l.valid = false;
        l.dirty = false;
        l.partial_sum = false;
        Some(way)
    }

    /// Present one access to the bank (at most one per cycle in the base
    /// machine — the caller enforces the port limit).
    ///
    /// # Errors
    ///
    /// Returns the access back when a resource is exhausted (MSHR file,
    /// MSHR target slots, memory command queue, or an eviction that cannot
    /// proceed); the caller retries next cycle — this is the back-pressure
    /// path of the machine.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the address does not map to this bank.
    pub fn try_access(&mut self, access: CacheAccess, now: Cycle) -> Result<(), CacheAccess> {
        let mshr_full_before = self.stats.mshr_full;
        let r = self.try_access_inner(access, now);
        // Occupancy: a granted access makes this a busy cycle; a rejection
        // means work was pushed back (blocked), and an MSHR-full rejection
        // additionally marks the cycle as at-capacity.
        let note = if r.is_ok() {
            OccClass::Busy
        } else {
            OccClass::Blocked
        };
        self.occ_note(note, self.stats.mshr_full > mshr_full_before);
        r
    }

    fn try_access_inner(&mut self, access: CacheAccess, now: Cycle) -> Result<(), CacheAccess> {
        let (set, tag, offset) = self.locate(access.addr);
        let line_base = self.line_base_of(access.addr);
        let hit_way = self.find_way(set, tag);
        match access.kind {
            AccessKind::Read { zero_alloc } => {
                if let Some(way) = hit_way {
                    let bits = self.sets[set][way].data[offset];
                    self.touch(set, way);
                    self.stats.read_hits += 1;
                    self.push_ready(access, bits, now);
                    return Ok(());
                }
                if let Some(&idx) = self.mshr_lookup.get(&line_base.0) {
                    let m = &mut self.mshrs[idx];
                    if zero_alloc {
                        // A zero-alloc read racing a real fill would fork the
                        // line's value; wait for the fill instead.
                        self.stats.blocked += 1;
                        return Err(access);
                    }
                    if m.occupancy() >= self.cfg.targets_per_mshr {
                        self.stats.blocked += 1;
                        self.stats.mshr_full += 1;
                        return Err(access);
                    }
                    m.targets
                        .push(MshrTarget::Read(access.id, offset, access.origin));
                    self.stats.read_merges += 1;
                    return Ok(());
                }
                if zero_alloc {
                    let Some(way) = self.make_room(set) else {
                        self.stats.blocked += 1;
                        return Err(access);
                    };
                    let words = self.cfg.words_per_line() as usize;
                    let l = &mut self.sets[set][way];
                    l.valid = true;
                    l.dirty = false;
                    l.partial_sum = false;
                    l.tag = tag;
                    l.data = vec![0; words];
                    self.touch(set, way);
                    self.stats.zero_allocs += 1;
                    self.push_ready(access, 0, now);
                    return Ok(());
                }
                if self.mshrs.len() >= self.cfg.mshrs_per_bank {
                    self.stats.blocked += 1;
                    self.stats.mshr_full += 1;
                    return Err(access);
                }
                if !self.mem_out.can_accept() {
                    self.stats.blocked += 1;
                    return Err(access);
                }
                self.next_cmd_id += 1;
                let cmd = DramCommand {
                    id: self.next_cmd_id,
                    req: Some(access.id),
                    base: line_base,
                    words: self.cfg.words_per_line() as u32,
                    kind: DramKind::Read,
                    origin: Origin::CacheBank {
                        node: self.node,
                        bank: self.bank_index,
                    },
                };
                self.mem_out.try_push(cmd).expect("capacity checked");
                self.mshr_lookup.insert(line_base.0, self.mshrs.len());
                self.mshrs.push(Mshr {
                    line_base,
                    targets: vec![MshrTarget::Read(access.id, offset, access.origin)],
                    replays: 0,
                });
                self.stats.read_misses += 1;
                Ok(())
            }
            AccessKind::Write { bits, partial_sum } => {
                if let Some(way) = hit_way {
                    let l = &mut self.sets[set][way];
                    l.data[offset] = bits;
                    l.dirty = true;
                    l.partial_sum |= partial_sum;
                    self.touch(set, way);
                    self.stats.write_hits += 1;
                    return Ok(());
                }
                if let Some(&idx) = self.mshr_lookup.get(&line_base.0) {
                    let m = &mut self.mshrs[idx];
                    if m.occupancy() >= self.cfg.targets_per_mshr {
                        self.stats.blocked += 1;
                        self.stats.mshr_full += 1;
                        return Err(access);
                    }
                    m.targets.push(MshrTarget::Write(offset, bits, partial_sum));
                    self.stats.write_merges += 1;
                    return Ok(());
                }
                if partial_sum {
                    // Combining mode always zero-allocates before summing, so
                    // a partial-sum write miss allocates its line locally.
                    let Some(way) = self.make_room(set) else {
                        self.stats.blocked += 1;
                        return Err(access);
                    };
                    let words = self.cfg.words_per_line() as usize;
                    let l = &mut self.sets[set][way];
                    l.valid = true;
                    l.dirty = true;
                    l.partial_sum = true;
                    l.tag = tag;
                    l.data = vec![0; words];
                    l.data[offset] = bits;
                    self.touch(set, way);
                    self.stats.zero_allocs += 1;
                    return Ok(());
                }
                // Write-around: forward the word write to DRAM.
                if !self.mem_out.can_accept() {
                    self.stats.blocked += 1;
                    return Err(access);
                }
                self.next_cmd_id += 1;
                let cmd = DramCommand {
                    id: self.next_cmd_id,
                    req: Some(access.id),
                    base: access.addr,
                    words: 1,
                    kind: DramKind::Write(vec![bits]),
                    origin: Origin::CacheBank {
                        node: self.node,
                        bank: self.bank_index,
                    },
                };
                self.mem_out.try_push(cmd).expect("capacity checked");
                self.stats.write_arounds += 1;
                Ok(())
            }
        }
    }

    /// [`try_access`](Self::try_access), recording the request's lifecycle
    /// stages into `tracer`: winning bank arbitration (any accepted access)
    /// and MSHR residency (accesses that allocate or merge into an MSHR).
    ///
    /// # Errors
    ///
    /// Returns the access back when a resource is exhausted, exactly as
    /// [`try_access`](Self::try_access) does.
    pub fn try_access_traced(
        &mut self,
        access: CacheAccess,
        now: Cycle,
        tracer: &mut sa_telemetry::ReqTracer,
    ) -> Result<(), CacheAccess> {
        let id = access.id;
        let before = self.stats;
        let r = self.try_access(access, now);
        if r.is_ok() {
            tracer.stamp(id, sa_telemetry::ReqStage::BankArb, now.raw());
            let s = self.stats;
            let mshr_events = |c: &CacheStats| c.read_misses + c.read_merges + c.write_merges;
            if mshr_events(&s) > mshr_events(&before) {
                tracer.stamp(id, sa_telemetry::ReqStage::Mshr, now.raw());
            }
        }
        r
    }

    fn push_ready(&mut self, access: CacheAccess, bits: u64, now: Cycle) {
        self.ready.push_back(MemResponse {
            id: access.id,
            addr: access.addr,
            bits,
            origin: access.origin,
            at: now + u64::from(self.cfg.hit_latency),
        });
    }

    /// Hand a DRAM response (a line fill or a write acknowledgement) to the
    /// bank. Fills are installed by [`CacheBank::tick`].
    pub fn on_mem_response(&mut self, resp: DramResponse) {
        if resp.data.is_empty() {
            return; // write-back / write-around acknowledgement
        }
        self.pending_fills.push_back(resp);
    }

    /// Advance one cycle: install at most one pending fill.
    pub fn tick(&mut self, now: Cycle) {
        self.commit_pend();
        self.mem_out.advance(now.raw());
        let installed = self.tick_install(now);
        let mut state = self.occ_baseline();
        if installed {
            state.0 = OccClass::Busy;
        }
        self.pend = Some(state);
    }

    /// The fill-install body of [`tick`](Self::tick). Returns whether the
    /// bank did useful work this cycle (installed a fill or launched an ECC
    /// replay), for occupancy classification.
    fn tick_install(&mut self, now: Cycle) -> bool {
        let Some(resp) = self.pending_fills.front() else {
            return false;
        };
        if resp.ecc_error {
            self.replay_poisoned_fill();
            return true;
        }
        let base = resp.base;
        let (set, tag, _) = self.locate(base);
        let Some(way) = self.make_room(set) else {
            return false; // eviction blocked on the command queue; retry next cycle
        };
        let resp = self.pending_fills.pop_front().expect("front checked");
        let mshr_idx = self.mshr_lookup.remove(&base.0).expect("fill without MSHR");
        let mshr = self.mshrs.swap_remove(mshr_idx);
        // swap_remove moved the former tail into `mshr_idx`; re-index it.
        if mshr_idx < self.mshrs.len() {
            self.mshr_lookup
                .insert(self.mshrs[mshr_idx].line_base.0, mshr_idx);
        }
        debug_assert_eq!(self.mshr_lookup.len(), self.mshrs.len());
        debug_assert!(self
            .mshr_lookup
            .iter()
            .all(|(&b, &i)| self.mshrs[i].line_base.0 == b));
        {
            let l = &mut self.sets[set][way];
            l.valid = true;
            l.dirty = false;
            l.partial_sum = false;
            l.tag = tag;
            l.data = resp.data;
        }
        self.touch(set, way);
        // Replay deferred accesses in arrival order so reads observe
        // exactly the writes that preceded them.
        for target in mshr.targets {
            match target {
                MshrTarget::Read(id, offset, origin) => {
                    let bits = self.sets[set][way].data[offset];
                    self.ready.push_back(MemResponse {
                        id,
                        addr: Addr(base.0 + (offset as u64) * WORD_BYTES),
                        bits,
                        origin,
                        at: now + u64::from(self.cfg.hit_latency),
                    });
                }
                MshrTarget::Write(offset, bits, partial) => {
                    let l = &mut self.sets[set][way];
                    l.data[offset] = bits;
                    l.dirty = true;
                    l.partial_sum |= partial;
                }
            }
        }
        true
    }

    /// Fold `skipped` provably-uneventful cycles (fast-forward) into the
    /// busy/blocked/idle account. The caller guarantees no access is
    /// presented and no fill installs during the window, so every skipped
    /// cycle carries the frozen [`occ_baseline`](Self::occ_baseline) class —
    /// exactly what per-cycle ticking would have recorded.
    pub fn skip_cycles(&mut self, now: Cycle, skipped: u64) {
        debug_assert!(
            self.next_event(now).is_none_or(|t| t > now + skipped),
            "fast-forward skipped past a cache-bank event"
        );
        self.commit_pend();
        let (class, at_capacity) = self.occ_baseline();
        self.stats.occ.skip(skipped, class, at_capacity);
    }

    /// The fill at the head of the queue carries an ECC-detected error:
    /// refuse to install it and re-read the line from DRAM instead. The
    /// MSHR (and its deferred targets) stays allocated, so the replayed
    /// fill replays them in the original arrival order — recovery never
    /// reorders same-address traffic. After [`ECC_REPLAY_LIMIT`] strikes on
    /// one line the error is declared uncorrectable and the (functionally
    /// intact) data is accepted so the run completes.
    fn replay_poisoned_fill(&mut self) {
        let base = self.pending_fills.front().expect("front checked").base;
        let idx = *self.mshr_lookup.get(&base.0).expect("fill without MSHR");
        if self.mshrs[idx].replays >= ECC_REPLAY_LIMIT {
            self.resilience.ecc_uncorrected += 1;
            let resp = self.pending_fills.front_mut().expect("front checked");
            resp.ecc_error = false; // installs normally next tick
            return;
        }
        if !self.mem_out.can_accept() {
            return; // command queue full; retry next cycle
        }
        let resp = self.pending_fills.pop_front().expect("front checked");
        self.mshrs[idx].replays += 1;
        self.resilience.mshr_replays += 1;
        self.next_cmd_id += 1;
        // Like write-backs, the replay serves every target of the MSHR; no
        // single originating request to attribute.
        let cmd = DramCommand {
            id: self.next_cmd_id,
            req: None,
            base: resp.base,
            words: resp.data.len() as u32,
            kind: DramKind::Read,
            origin: Origin::CacheBank {
                node: self.node,
                bank: self.bank_index,
            },
        };
        self.mem_out.try_push(cmd).expect("capacity checked");
    }

    /// Next outgoing DRAM command, if any (the node routes it to a channel).
    pub fn pop_mem_cmd(&mut self) -> Option<DramCommand> {
        self.mem_out.pop()
    }

    /// Pop the next outgoing DRAM command only if `accept` commits to it
    /// (single-touch routing; see [`sa_sim::BoundedQueue::pop_if`]).
    pub fn pop_mem_cmd_if<F: FnMut(&DramCommand) -> bool>(
        &mut self,
        accept: F,
    ) -> Option<DramCommand> {
        self.mem_out.pop_if(accept)
    }

    /// Earliest future cycle at which a tick can change this bank's state.
    ///
    /// Pending fills, queued DRAM commands, and queued sum-backs all make
    /// progress (or may be drained by the node) on the very next cycle. A
    /// waiting read response becomes poppable at its hit-latency expiry.
    /// `None` means the bank is dormant: any remaining MSHRs are waiting on
    /// DRAM, and that wakeup belongs to the channels' horizons.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.pending_fills.is_empty() || !self.mem_out.is_empty() || !self.sum_backs.is_empty()
        {
            return Some(now + 1);
        }
        // `ready` is pushed in completion order (constant hit latency), so
        // the front is the earliest.
        self.ready.front().map(|r| r.at.max(now + 1))
    }

    /// Peek whether an outgoing DRAM command is waiting.
    pub fn has_mem_cmd(&self) -> bool {
        !self.mem_out.is_empty()
    }

    /// Peek the next outgoing DRAM command without removing it (so the node
    /// can check the target channel's queue before committing).
    pub fn peek_mem_cmd(&self) -> Option<&DramCommand> {
        self.mem_out.front()
    }

    /// Next read completion whose latency has elapsed.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<MemResponse> {
        if self.ready.front().is_some_and(|r| r.at <= now) {
            self.ready.pop_front()
        } else {
            None
        }
    }

    /// Next evicted partial-sum line (combining mode; the node's network
    /// interface forwards it to the home node).
    pub fn pop_sum_back(&mut self) -> Option<SumBack> {
        self.sum_backs.pop_front()
    }

    /// Evict every remaining partial-sum line — the flush-with-sum-back
    /// synchronization step at the end of a multi-node scatter-add (§3.2).
    pub fn flush_sum_backs(&mut self) -> Vec<SumBack> {
        let mut out = Vec::new();
        for set in 0..self.sets.len() {
            for way in 0..self.cfg.ways {
                let (valid, partial) = {
                    let l = &self.sets[set][way];
                    (l.valid, l.partial_sum && l.dirty)
                };
                if valid && partial {
                    let tag = self.sets[set][way].tag;
                    let base = self.line_base_from_parts(set, tag);
                    let data = self.sets[set][way].data.clone();
                    out.push(SumBack { base, data });
                    self.stats.sum_backs += 1;
                    let l = &mut self.sets[set][way];
                    l.valid = false;
                    l.dirty = false;
                    l.partial_sum = false;
                }
            }
        }
        out
    }

    /// Invalidate every line, returning the dirty (non-partial-sum) ones so
    /// the caller can apply them to backing memory — a functional flush used
    /// at the end of a run to materialize the coherent memory image.
    /// Partial-sum lines are left untouched (flush those with
    /// [`CacheBank::flush_sum_backs`], which applies scatter-add semantics).
    pub fn flush_dirty(&mut self) -> Vec<(Addr, Vec<u64>)> {
        let mut out = Vec::new();
        for set in 0..self.sets.len() {
            for way in 0..self.cfg.ways {
                let l = &self.sets[set][way];
                if !l.valid || l.partial_sum {
                    continue;
                }
                let base = self.line_base_from_parts(set, l.tag);
                if l.dirty {
                    out.push((base, l.data.clone()));
                }
                let l = &mut self.sets[set][way];
                l.valid = false;
                l.dirty = false;
            }
        }
        out
    }

    /// Whether the bank has no pending fills, queued commands, waiting
    /// responses, or queued sum-backs.
    pub fn is_idle(&self) -> bool {
        self.mshrs.is_empty()
            && self.pending_fills.is_empty()
            && self.ready.is_empty()
            && self.mem_out.is_empty()
            && self.sum_backs.is_empty()
    }

    /// Counters accumulated so far. The in-flight cycle's occupancy
    /// classification (see [`CacheBank::tick`]) is folded into the returned
    /// copy without being committed, so mid-run snapshots (probes) and
    /// end-of-run reads both see every ticked cycle accounted.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        if let Some((class, at_capacity)) = self.pend {
            s.occ.cycle(class, at_capacity);
        }
        s
    }

    /// ECC recovery counters accumulated so far (all zero unless poisoned
    /// fills arrived).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilience
    }

    /// Read-only probe of a resident word (for tests); `None` on miss.
    pub fn probe(&self, addr: Addr) -> Option<u64> {
        let (set, tag, offset) = self.locate(addr);
        self.find_way(set, tag)
            .map(|way| self.sets[set][way].data[offset])
    }
}

impl sa_telemetry::Inspectable for CacheBank {
    fn probe_kind(&self) -> &'static str {
        "cache_bank"
    }

    fn probe_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::Json;
        let mut o = Json::obj();
        o.push("mshrs", Json::UInt(self.mshrs.len() as u64));
        o.push("mshr_capacity", Json::UInt(self.cfg.mshrs_per_bank as u64));
        let targets: usize = self.mshrs.iter().map(Mshr::occupancy).sum();
        o.push("mshr_targets", Json::UInt(targets as u64));
        o.push("mem_out", Json::UInt(self.mem_out.len() as u64));
        o.push(
            "mem_out_capacity",
            Json::UInt(self.mem_out.capacity() as u64),
        );
        o.push("pending_fills", Json::UInt(self.pending_fills.len() as u64));
        o.push("ready", Json::UInt(self.ready.len() as u64));
        o.push("sum_backs", Json::UInt(self.sum_backs.len() as u64));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_mem::BackingStore;
    use sa_sim::CacheConfig;

    fn cfg() -> CacheConfig {
        CacheConfig::default()
    }

    /// A tiny config so eviction paths are easy to exercise.
    fn tiny() -> CacheConfig {
        CacheConfig {
            banks: 1,
            total_bytes: 256, // 8 lines of 32 B
            line_bytes: 32,
            ways: 2,
            mshrs_per_bank: 2,
            targets_per_mshr: 2,
            hit_latency: 1,
        }
    }

    fn orig() -> Origin {
        Origin::AddrGen { node: 0, ag: 0 }
    }

    fn read(id: ReqId, addr: u64) -> CacheAccess {
        CacheAccess {
            id,
            addr: Addr(addr),
            kind: AccessKind::Read { zero_alloc: false },
            origin: orig(),
        }
    }

    fn write(id: ReqId, addr: u64, bits: u64) -> CacheAccess {
        CacheAccess {
            id,
            addr: Addr(addr),
            kind: AccessKind::Write {
                bits,
                partial_sum: false,
            },
            origin: orig(),
        }
    }

    /// Run the bank against a directly-attached functional memory until idle.
    fn drain(
        bank: &mut CacheBank,
        store: &mut BackingStore,
        mut now: Cycle,
    ) -> (Vec<MemResponse>, Cycle) {
        let mut dram: VecDeque<(Cycle, DramCommand)> = VecDeque::new();
        let mut out = Vec::new();
        let lat = 20u64;
        for _ in 0..100_000 {
            now += 1;
            bank.tick(now);
            while let Some(cmd) = bank.pop_mem_cmd() {
                dram.push_back((now + lat, cmd));
            }
            while dram.front().is_some_and(|(t, _)| *t <= now) {
                let (_, cmd) = dram.pop_front().unwrap();
                let data = match cmd.kind {
                    DramKind::Read => store.read_line(cmd.base, u64::from(cmd.words)),
                    DramKind::Write(ref d) => {
                        store.write_line(cmd.base, d);
                        Vec::new()
                    }
                };
                bank.on_mem_response(DramResponse {
                    id: cmd.id,
                    base: cmd.base,
                    data,
                    origin: cmd.origin,
                    at: now,
                    ecc_error: false,
                });
            }
            while let Some(r) = bank.pop_ready(now) {
                out.push(r);
            }
            if bank.is_idle() && dram.is_empty() {
                return (out, now);
            }
        }
        panic!("bank did not drain");
    }

    #[test]
    fn read_miss_fills_then_hits() {
        let mut store = BackingStore::new();
        store.write_word(Addr(8), 42);
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 8), Cycle(0)).unwrap();
        let (resp, now) = drain(&mut bank, &mut store, Cycle(0));
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].bits, 42);
        assert_eq!(bank.stats().read_misses, 1);
        // Second read is a hit.
        bank.try_access(read(2, 8), now).unwrap();
        let r = bank.pop_ready(now + 10).unwrap();
        assert_eq!(r.bits, 42);
        assert_eq!(bank.stats().read_hits, 1);
    }

    #[test]
    fn concurrent_misses_merge_into_one_mshr() {
        let mut store = BackingStore::new();
        store.write_line(Addr(0), &[1, 2, 3, 4]);
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        bank.try_access(read(2, 16), Cycle(0)).unwrap(); // same line, word 2
        assert_eq!(bank.stats().read_merges, 1);
        let (resp, _) = drain(&mut bank, &mut store, Cycle(0));
        assert_eq!(resp.len(), 2);
        assert_eq!(resp[0].bits, 1);
        assert_eq!(resp[1].bits, 3);
        // Only one fill went to memory.
        assert_eq!(bank.stats().read_misses, 1);
    }

    #[test]
    fn mshr_target_cap_blocks() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        bank.try_access(read(2, 8), Cycle(0)).unwrap();
        // targets_per_mshr = 2; the third access to the line must block.
        assert!(bank.try_access(read(3, 16), Cycle(0)).is_err());
        assert_eq!(bank.stats().blocked, 1);
        assert_eq!(bank.stats().mshr_full, 1);
    }

    #[test]
    fn mshr_file_exhaustion_blocks() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        bank.try_access(read(2, 32), Cycle(0)).unwrap();
        assert!(bank.try_access(read(3, 64), Cycle(0)).is_err());
        assert_eq!(bank.stats().mshr_full, 1);
    }

    #[test]
    fn write_hit_updates_line_and_write_back_on_evict() {
        let mut store = BackingStore::new();
        let mut bank = CacheBank::new(tiny(), 0, 0);
        // Fill line 0.
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        let (_, now) = drain(&mut bank, &mut store, Cycle(0));
        // Dirty it.
        bank.try_access(write(2, 0, 99), now).unwrap();
        assert_eq!(bank.stats().write_hits, 1);
        assert_eq!(bank.probe(Addr(0)), Some(99));
        // Evict it by filling both ways of set 0 (tiny: 4 sets, 2 ways;
        // set stride = 32 B × 4 sets = 128 B).
        bank.try_access(read(3, 128), now).unwrap();
        let (_, now) = drain(&mut bank, &mut store, now);
        bank.try_access(read(4, 256), now).unwrap();
        let (_, now) = drain(&mut bank, &mut store, now);
        assert_eq!(bank.stats().write_backs, 1);
        assert_eq!(store.read_word(Addr(0)), 99, "write-back reached memory");
        let _ = now;
    }

    #[test]
    fn write_miss_goes_around() {
        let mut store = BackingStore::new();
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(write(1, 8, 7), Cycle(0)).unwrap();
        assert_eq!(bank.stats().write_arounds, 1);
        let (_, _) = drain(&mut bank, &mut store, Cycle(0));
        assert_eq!(store.read_word(Addr(8)), 7);
        assert_eq!(bank.probe(Addr(8)), None, "write-around does not allocate");
    }

    #[test]
    fn write_under_miss_merges_and_applies_after_fill() {
        let mut store = BackingStore::new();
        store.write_line(Addr(0), &[1, 2, 3, 4]);
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        bank.try_access(write(2, 8, 77), Cycle(0)).unwrap();
        assert_eq!(bank.stats().write_merges, 1);
        let (_, now) = drain(&mut bank, &mut store, Cycle(0));
        assert_eq!(
            bank.probe(Addr(8)),
            Some(77),
            "pending write applied on fill"
        );
        // The line is dirty; evicting must write 77 back.
        bank.try_access(read(3, 128), now).unwrap();
        let (_, now) = drain(&mut bank, &mut store, now);
        bank.try_access(read(4, 256), now).unwrap();
        let (_, _) = drain(&mut bank, &mut store, now);
        assert_eq!(store.read_word(Addr(8)), 77);
    }

    #[test]
    fn zero_alloc_read_returns_zero_without_memory_traffic() {
        let mut store = BackingStore::new();
        store.write_word(Addr(0), 1234); // memory value must NOT be fetched
        let mut bank = CacheBank::new(tiny(), 0, 0);
        let acc = CacheAccess {
            id: 1,
            addr: Addr(0),
            kind: AccessKind::Read { zero_alloc: true },
            origin: orig(),
        };
        bank.try_access(acc, Cycle(0)).unwrap();
        let r = bank.pop_ready(Cycle(10)).unwrap();
        assert_eq!(r.bits, 0);
        assert_eq!(bank.stats().zero_allocs, 1);
        assert!(!bank.has_mem_cmd(), "no fill issued");
    }

    #[test]
    fn partial_sum_eviction_becomes_sum_back() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        let w = CacheAccess {
            id: 1,
            addr: Addr(0),
            kind: AccessKind::Write {
                bits: 5,
                partial_sum: true,
            },
            origin: orig(),
        };
        bank.try_access(w, Cycle(0)).unwrap();
        // Force eviction of set 0 by allocating two more partial lines.
        for (i, a) in [(2u64, 128u64), (3, 256)] {
            let w = CacheAccess {
                id: i,
                addr: Addr(a),
                kind: AccessKind::Write {
                    bits: 1,
                    partial_sum: true,
                },
                origin: orig(),
            };
            bank.try_access(w, Cycle(0)).unwrap();
        }
        let sb = bank.pop_sum_back().expect("eviction produced a sum-back");
        assert_eq!(sb.base, Addr(0));
        assert_eq!(sb.data, vec![5, 0, 0, 0]);
        assert_eq!(bank.stats().sum_backs, 1);
        assert!(!bank.has_mem_cmd(), "sum-back is not a DRAM write-back");
    }

    #[test]
    fn flush_sum_backs_drains_all_partial_lines() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        for (i, a) in [(1u64, 0u64), (2, 32), (3, 64)] {
            let w = CacheAccess {
                id: i,
                addr: Addr(a),
                kind: AccessKind::Write {
                    bits: i,
                    partial_sum: true,
                },
                origin: orig(),
            };
            bank.try_access(w, Cycle(0)).unwrap();
        }
        let mut flushed = bank.flush_sum_backs();
        flushed.sort_by_key(|s| s.base);
        assert_eq!(flushed.len(), 3);
        assert_eq!(flushed[0].base, Addr(0));
        assert_eq!(flushed[0].data[0], 1);
        assert!(bank.flush_sum_backs().is_empty(), "flush is idempotent");
        assert_eq!(bank.probe(Addr(0)), None, "flushed lines are invalid");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut store = BackingStore::new();
        store.write_word(Addr(0), 10);
        store.write_word(Addr(128), 20);
        let mut bank = CacheBank::new(tiny(), 0, 0);
        // Fill both ways of set 0.
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        let (_, now) = drain(&mut bank, &mut store, Cycle(0));
        bank.try_access(read(2, 128), now).unwrap();
        let (_, now) = drain(&mut bank, &mut store, now);
        // Touch line 0 so line 128 is LRU.
        bank.try_access(read(3, 0), now).unwrap();
        let _ = bank.pop_ready(now + 10);
        // Allocate a third line in set 0; 128 must be the victim.
        bank.try_access(read(4, 256), now).unwrap();
        let (_, _) = drain(&mut bank, &mut store, now);
        assert!(bank.probe(Addr(0)).is_some(), "recently used line kept");
        assert!(bank.probe(Addr(128)).is_none(), "LRU line evicted");
    }

    #[test]
    fn hit_latency_delays_response() {
        let c = cfg(); // hit_latency = 4
        let mut store = BackingStore::new();
        store.write_word(Addr(0), 9);
        let mut bank = CacheBank::new(c, 0, 0);
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        let (_, now) = drain(&mut bank, &mut store, Cycle(0));
        bank.try_access(read(2, 0), now).unwrap();
        assert!(bank.pop_ready(now).is_none());
        assert!(bank.pop_ready(now + 3).is_none());
        assert!(bank.pop_ready(now + 4).is_some());
    }

    #[test]
    fn default_config_addresses_interleave() {
        // With 8 banks, line i maps to bank i % 8; bank 3 owns lines 3, 11, ...
        let c = cfg();
        let mut bank = CacheBank::new(c, 0, 3);
        let addr = Addr(3 * c.line_bytes); // line 3
        bank.try_access(read(1, addr.0), Cycle(0)).unwrap();
        assert_eq!(bank.stats().read_misses, 1);
    }

    #[test]
    fn next_event_tracks_bank_state() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        assert_eq!(bank.next_event(Cycle(0)), None, "fresh bank is dormant");
        // A read miss queues a DRAM command: progress next cycle.
        bank.try_access(read(1, 8), Cycle(0)).unwrap();
        assert_eq!(bank.next_event(Cycle(0)), Some(Cycle(1)));
        // Once the command is drained, the MSHR waits on DRAM: dormant.
        let cmd = bank.pop_mem_cmd().unwrap();
        assert_eq!(bank.next_event(Cycle(0)), None);
        // The fill makes the bank busy again...
        bank.on_mem_response(DramResponse {
            id: cmd.id,
            base: cmd.base,
            data: vec![0; 4],
            origin: cmd.origin,
            at: Cycle(20),
            ecc_error: false,
        });
        assert_eq!(bank.next_event(Cycle(20)), Some(Cycle(21)));
        bank.tick(Cycle(21));
        // ...and the replayed read waits out the hit latency (1 in tiny()).
        assert_eq!(bank.next_event(Cycle(21)), Some(Cycle(22)));
        assert!(bank.pop_ready(Cycle(22)).is_some());
        assert_eq!(bank.next_event(Cycle(22)), None);
    }

    #[test]
    fn pop_mem_cmd_if_leaves_rejected_command_queued() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 8), Cycle(0)).unwrap();
        assert!(bank.pop_mem_cmd_if(|_| false).is_none());
        assert!(bank.has_mem_cmd(), "rejected command stays at the head");
        let got = bank.pop_mem_cmd_if(|c| c.kind == DramKind::Read).unwrap();
        assert_eq!(got.base, Addr(0));
        assert!(!bank.has_mem_cmd());
    }

    #[test]
    fn ecc_poisoned_fill_is_replayed_not_installed() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 8), Cycle(0)).unwrap();
        let cmd = bank.pop_mem_cmd().unwrap();
        // A poisoned fill must not install; the bank re-reads the line.
        bank.on_mem_response(DramResponse {
            id: cmd.id,
            base: cmd.base,
            data: vec![1, 2, 3, 4],
            origin: cmd.origin,
            at: Cycle(5),
            ecc_error: true,
        });
        bank.tick(Cycle(6));
        assert_eq!(bank.probe(Addr(8)), None, "poisoned data not installed");
        assert!(!bank.is_idle(), "MSHR stays allocated across the replay");
        let replay = bank.pop_mem_cmd().expect("replacement fill issued");
        assert_eq!(replay.base, cmd.base);
        assert_eq!(replay.kind, DramKind::Read);
        assert_eq!(bank.resilience_stats().mshr_replays, 1);
        // The clean retry installs and replays the waiting read target.
        bank.on_mem_response(DramResponse {
            id: replay.id,
            base: replay.base,
            data: vec![10, 20, 30, 40],
            origin: replay.origin,
            at: Cycle(30),
            ecc_error: false,
        });
        bank.tick(Cycle(31));
        let r = bank.pop_ready(Cycle(40)).expect("deferred read replayed");
        assert_eq!(r.bits, 20);
        assert_eq!(bank.resilience_stats().ecc_uncorrected, 0);
    }

    #[test]
    fn ecc_replay_budget_exhaustion_accepts_data() {
        let mut bank = CacheBank::new(tiny(), 0, 0);
        bank.try_access(read(1, 0), Cycle(0)).unwrap();
        let mut cmd = bank.pop_mem_cmd().unwrap();
        let mut now = Cycle(0);
        // Every replay comes back poisoned too; after the budget runs out
        // the bank must accept the data and flag it uncorrectable.
        for _ in 0..=ECC_REPLAY_LIMIT {
            now += 1;
            bank.on_mem_response(DramResponse {
                id: cmd.id,
                base: cmd.base,
                data: vec![7, 8, 9, 10],
                origin: cmd.origin,
                at: now,
                ecc_error: true,
            });
            now += 1;
            bank.tick(now);
            match bank.pop_mem_cmd() {
                Some(next) => cmd = next,
                None => break, // budget exhausted: no further replay
            }
        }
        now += 1;
        bank.tick(now); // installs the accepted (de-poisoned) fill
        let rs = bank.resilience_stats();
        assert_eq!(rs.mshr_replays, u64::from(ECC_REPLAY_LIMIT));
        assert_eq!(rs.ecc_uncorrected, 1);
        let r = bank.pop_ready(now + 10).expect("read completes regardless");
        assert_eq!(r.bits, 7);
    }

    #[test]
    fn read_hit_rate_reporting() {
        let s = CacheStats {
            read_hits: 3,
            read_misses: 1,
            ..CacheStats::default()
        };
        assert!((s.read_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().read_hit_rate(), 0.0);
    }
}
