//! A small blocking HTTP client for talking to an `sa-serve` daemon — used
//! by `analyze submit` / `analyze serve` and the CI smoke job, and handy
//! for tests. Connections retry briefly so a freshly forked daemon has time
//! to bind.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How many times [`connect`] retries before giving up.
const CONNECT_ATTEMPTS: u32 = 40;
/// Pause between connection attempts.
const CONNECT_BACKOFF: Duration = Duration::from_millis(250);

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body. For streaming submissions this is the final NDJSON
    /// line (the result document).
    pub body: String,
}

impl Response {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Connect to `addr`, retrying for ~10 s to ride out daemon startup.
pub fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last = String::new();
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
        if attempt + 1 < CONNECT_ATTEMPTS {
            std::thread::sleep(CONNECT_BACKOFF);
        }
    }
    Err(format!("could not connect to {addr}: {last}"))
}

/// Issue one request and read the whole response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> Result<Response, String> {
    let mut stream = connect(addr)?;
    write_request(&mut stream, addr, method, path, headers, body)?;
    let raw = read_all(&mut stream)?;
    let (status, resp_headers, payload) = split_response(&raw)?;
    Ok(Response {
        status,
        headers: resp_headers,
        body: payload,
    })
}

/// Submit a job spec. `tenant` becomes the `X-SA-Tenant` header when
/// non-empty. With `on_line` set the submission streams: every NDJSON line
/// before the final result document is passed to the callback.
pub fn submit(
    addr: &str,
    spec_text: &str,
    tenant: &str,
    mut on_line: Option<&mut dyn FnMut(&str)>,
) -> Result<Response, String> {
    let mut headers: Vec<(&str, &str)> = vec![("Content-Type", "application/json")];
    if !tenant.is_empty() {
        headers.push(("X-SA-Tenant", tenant));
    }
    if on_line.is_some() {
        headers.push(("X-SA-Stream", "progress"));
    }
    let mut stream = connect(addr)?;
    write_request(
        &mut stream,
        addr,
        "POST",
        "/v1/jobs",
        &headers,
        Some(spec_text),
    )?;
    let raw = read_all(&mut stream)?;
    let (status, resp_headers, payload) = split_response(&raw)?;
    let is_ndjson = resp_headers
        .iter()
        .any(|(k, v)| k.eq_ignore_ascii_case("content-type") && v.contains("ndjson"));
    if !is_ndjson {
        return Ok(Response {
            status,
            headers: resp_headers,
            body: payload,
        });
    }
    // Streamed response: the last non-empty line is the result document.
    let mut result_line = String::new();
    for line in payload.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if !result_line.is_empty() {
            if let Some(cb) = on_line.as_deref_mut() {
                cb(&result_line);
            }
        }
        result_line = line.to_string();
    }
    Ok(Response {
        status,
        headers: resp_headers,
        body: result_line,
    })
}

/// `GET /v1/stats`.
pub fn stats(addr: &str) -> Result<Response, String> {
    request(addr, "GET", "/v1/stats", &[], None)
}

/// `GET /healthz`.
pub fn health(addr: &str) -> Result<Response, String> {
    request(addr, "GET", "/healthz", &[], None)
}

/// `POST /v1/shutdown`.
pub fn shutdown(addr: &str) -> Result<Response, String> {
    request(addr, "POST", "/v1/shutdown", &[], None)
}

fn write_request(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> Result<(), String> {
    let body = body.unwrap_or("");
    let mut text = format!("{method} {path} HTTP/1.1\r\n");
    text.push_str(&format!("Host: {addr}\r\n"));
    for (k, v) in headers {
        text.push_str(&format!("{k}: {v}\r\n"));
    }
    text.push_str(&format!("Content-Length: {}\r\n", body.len()));
    text.push_str("Connection: close\r\n\r\n");
    text.push_str(body);
    stream
        .write_all(text.as_bytes())
        .map_err(|e| format!("send failed: {e}"))
}

fn read_all(stream: &mut TcpStream) -> Result<String, String> {
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read failed: {e}"))?;
    String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())
}

/// Status code, headers, body.
type ResponseParts = (u16, Vec<(String, String)>, String);

fn split_response(raw: &str) -> Result<ResponseParts, String> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    Ok((status, headers, body.to_string()))
}
