//! `sa-serve`: a multi-tenant simulation service over the [`SessionSpec`]
//! job API.
//!
//! The daemon speaks plain HTTP/1.1 on a `std::net::TcpListener` — no
//! framework, no async runtime — and accepts JSON job specs (the
//! [`SessionSpec`] wire form, see `docs/SERVING.md`):
//!
//! * `POST /v1/jobs` — submit a spec; the response embeds a validated
//!   sa-stats document plus the exact [`SessionReport`]. The `X-SA-Tenant`
//!   header names the submitting tenant for quota accounting; the
//!   `X-SA-Stream: progress` header upgrades the response to NDJSON with
//!   live heartbeat/probe lines ahead of the final result line.
//! * `GET /v1/stats` — server counters (jobs, rejections, cache traffic,
//!   per-tenant accounting) as an `sa-serve-stats` document.
//! * `GET /healthz` — liveness probe.
//! * `POST /v1/shutdown` — drain and stop.
//!
//! Jobs run on a bounded worker pool; when the connection queue is full the
//! accept loop answers `429` immediately (admission control), and per-tenant
//! quotas (total jobs, concurrent jobs) answer `429` with a quota error.
//! Results are memoized through `sa-memo`: the spec's canonical fingerprint
//! is looked up before any simulation, so a warm repeat of a job performs
//! zero simulation yet returns a byte-identical body — the `X-SA-Cache` and
//! `X-SA-Simulated` response headers are the sidecar that says which path
//! served it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sa_memo::ResultCache;
use sa_telemetry::{Json, MetricsRegistry, Progress};
use scatter_add_repro::{SessionReport, SessionSpec};

/// Schema tag of the job-result document returned by `POST /v1/jobs`.
pub const RESULT_SCHEMA_NAME: &str = "sa-serve-result";
/// Version of the job-result document.
pub const RESULT_SCHEMA_VERSION: u64 = 1;
/// Schema tag of the server-counters document returned by `GET /v1/stats`.
pub const SERVER_STATS_SCHEMA_NAME: &str = "sa-serve-stats";
/// Version of the server-counters document.
pub const SERVER_STATS_SCHEMA_VERSION: u64 = 1;

/// Tenant name used when a submission carries no `X-SA-Tenant` header.
pub const DEFAULT_TENANT: &str = "anonymous";

/// Tunables for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing jobs (min 1).
    pub workers: usize,
    /// Accepted-but-unserviced connections held beyond the workers; when
    /// the queue is full new connections are answered `429 busy`.
    pub queue_depth: usize,
    /// Lifetime job quota per tenant; 0 means unlimited.
    pub tenant_jobs: u64,
    /// Concurrent in-flight job quota per tenant; 0 means unlimited.
    pub tenant_inflight: u64,
    /// Result cache consulted before simulating and populated after.
    pub cache: Option<Arc<ResultCache>>,
    /// Largest request body accepted, in bytes.
    pub max_body_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            tenant_jobs: 0,
            tenant_inflight: 0,
            cache: None,
            max_body_bytes: 64 << 20,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TenantLedger {
    submitted: u64,
    completed: u64,
    inflight: u64,
    rejected: u64,
}

struct State {
    cfg: ServeConfig,
    addr: SocketAddr,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_quota: AtomicU64,
    tenants: Mutex<BTreeMap<String, TenantLedger>>,
}

impl State {
    /// Admit one job for `tenant`, or explain the quota it would bust.
    fn admit(&self, tenant: &str) -> Result<(), String> {
        let mut tenants = self.tenants.lock().unwrap();
        let ledger = tenants.entry(tenant.to_string()).or_default();
        if self.cfg.tenant_jobs > 0 && ledger.submitted >= self.cfg.tenant_jobs {
            ledger.rejected += 1;
            return Err(format!(
                "tenant '{tenant}' exhausted its quota of {} jobs",
                self.cfg.tenant_jobs
            ));
        }
        if self.cfg.tenant_inflight > 0 && ledger.inflight >= self.cfg.tenant_inflight {
            ledger.rejected += 1;
            return Err(format!(
                "tenant '{tenant}' already has {} jobs in flight",
                self.cfg.tenant_inflight
            ));
        }
        ledger.submitted += 1;
        ledger.inflight += 1;
        Ok(())
    }

    fn release(&self, tenant: &str, ok: bool) {
        let mut tenants = self.tenants.lock().unwrap();
        let ledger = tenants.entry(tenant.to_string()).or_default();
        ledger.inflight = ledger.inflight.saturating_sub(1);
        if ok {
            ledger.completed += 1;
        }
    }

    fn stats_json(&self) -> Json {
        let mut jobs = Json::obj();
        jobs.push(
            "submitted",
            Json::UInt(self.submitted.load(Ordering::Relaxed)),
        );
        jobs.push(
            "completed",
            Json::UInt(self.completed.load(Ordering::Relaxed)),
        );
        jobs.push("failed", Json::UInt(self.failed.load(Ordering::Relaxed)));
        jobs.push(
            "rejected_busy",
            Json::UInt(self.rejected_busy.load(Ordering::Relaxed)),
        );
        jobs.push(
            "rejected_quota",
            Json::UInt(self.rejected_quota.load(Ordering::Relaxed)),
        );
        let mut cache = Json::obj();
        match &self.cfg.cache {
            Some(c) => {
                cache.push("enabled", Json::Bool(true));
                cache.push("hits", Json::UInt(c.hits()));
                cache.push("misses", Json::UInt(c.misses()));
                cache.push("stores", Json::UInt(c.stores()));
            }
            None => cache.push("enabled", Json::Bool(false)),
        }
        let mut tenants = Json::obj();
        for (name, ledger) in self.tenants.lock().unwrap().iter() {
            let mut t = Json::obj();
            t.push("submitted", Json::UInt(ledger.submitted));
            t.push("completed", Json::UInt(ledger.completed));
            t.push("inflight", Json::UInt(ledger.inflight));
            t.push("rejected", Json::UInt(ledger.rejected));
            tenants.push(name, t);
        }
        let mut doc = Json::obj();
        doc.push("schema", Json::Str(SERVER_STATS_SCHEMA_NAME.to_string()));
        doc.push("version", Json::UInt(SERVER_STATS_SCHEMA_VERSION));
        doc.push("workers", Json::UInt(self.cfg.workers as u64));
        doc.push("jobs", jobs);
        doc.push("cache", cache);
        doc.push("tenants", tenants);
        doc
    }
}

/// A running `sa-serve` daemon: accept loop plus worker pool.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving in background
    /// threads. Returns once the listener is live.
    pub fn bind(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let state = Arc::new(State {
            cfg: ServeConfig { workers, ..cfg },
            addr: local,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            tenants: Mutex::new(BTreeMap::new()),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sa-serve-worker{i}"))
                    .spawn(move || worker_loop(&state))?,
            );
        }
        {
            let state = Arc::clone(&state);
            threads.push(
                std::thread::Builder::new()
                    .name("sa-serve-accept".to_string())
                    .spawn(move || accept_loop(&listener, &state))?,
            );
        }
        Ok(Server {
            state,
            addr: local,
            threads,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop: the accept loop exits, workers drain the
    /// queue and exit. Idempotent.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.state.addr);
        self.state.available.notify_all();
    }

    /// True once shutdown has been requested (by [`Server::shutdown`] or
    /// `POST /v1/shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Block until every server thread has exited.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Server counters as an `sa-serve-stats` document (what `GET
    /// /v1/stats` returns).
    pub fn stats_json(&self) -> Json {
        self.state.stats_json()
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut queue = state.queue.lock().unwrap();
        if queue.len() >= state.cfg.queue_depth + state.cfg.workers {
            drop(queue);
            state.rejected_busy.fetch_add(1, Ordering::Relaxed);
            let mut body = Json::obj();
            body.push("error", Json::Str("server busy: job queue is full".into()));
            let mut stream = stream;
            let _ = respond_json(&mut stream, 429, &body, &[]);
        } else {
            queue.push_back(stream);
            drop(queue);
            state.available.notify_one();
        }
    }
    state.available.notify_all();
}

fn worker_loop(state: &Arc<State>) {
    loop {
        let stream = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = state.available.wait(queue).unwrap();
            }
        };
        let _ = handle_connection(state, stream);
    }
}

/// One parsed HTTP/1.1 request.
struct Request {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn handle_connection(state: &Arc<State>, mut stream: TcpStream) -> io::Result<()> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match read_request(&mut stream, state.cfg.max_body_bytes) {
        Ok(request) => request,
        Err((status, message)) => {
            let mut body = Json::obj();
            body.push("error", Json::Str(message));
            return respond_json(&mut stream, status, &body, &[]);
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => respond_raw(&mut stream, 200, "text/plain", &[], b"ok\n"),
        ("GET", "/v1/stats") => respond_json(&mut stream, 200, &state.stats_json(), &[]),
        ("POST", "/v1/shutdown") => {
            let mut body = Json::obj();
            body.push("ok", Json::Bool(true));
            let result = respond_json(&mut stream, 200, &body, &[]);
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(state.addr);
            state.available.notify_all();
            result
        }
        ("POST", "/v1/jobs") => submit_job(state, &mut stream, &request),
        (_, "/healthz") | (_, "/v1/stats") | (_, "/v1/shutdown") | (_, "/v1/jobs") => {
            let mut body = Json::obj();
            body.push(
                "error",
                Json::Str(format!("method {} not allowed here", request.method)),
            );
            respond_json(&mut stream, 405, &body, &[])
        }
        (_, path) => {
            let mut body = Json::obj();
            body.push("error", Json::Str(format!("no such endpoint: {path}")));
            respond_json(&mut stream, 404, &body, &[])
        }
    }
}

/// Serve one `POST /v1/jobs`: admission, cache lookup, simulation on miss,
/// identical result bytes either way.
fn submit_job(state: &Arc<State>, stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let tenant = request
        .header("x-sa-tenant")
        .unwrap_or(DEFAULT_TENANT)
        .to_string();
    if let Err(reason) = state.admit(&tenant) {
        state.rejected_quota.fetch_add(1, Ordering::Relaxed);
        let mut body = Json::obj();
        body.push("error", Json::Str(reason));
        body.push("tenant", Json::Str(tenant));
        return respond_json(stream, 429, &body, &[]);
    }
    state.submitted.fetch_add(1, Ordering::Relaxed);
    let result = run_job(state, stream, request);
    state.release(&tenant, result.is_ok());
    match result {
        Ok(()) => {
            state.completed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        Err(JobError::Client(status, message)) => {
            state.failed.fetch_add(1, Ordering::Relaxed);
            let mut body = Json::obj();
            body.push("error", Json::Str(message));
            respond_json(stream, status, &body, &[])
        }
        Err(JobError::Io(e)) => {
            state.failed.fetch_add(1, Ordering::Relaxed);
            Err(e)
        }
    }
}

enum JobError {
    /// The spec was unusable; answer `status` with the message.
    Client(u16, String),
    /// The response socket died mid-write; nothing left to say.
    Io(io::Error),
}

impl From<io::Error> for JobError {
    fn from(e: io::Error) -> JobError {
        JobError::Io(e)
    }
}

fn run_job(state: &Arc<State>, stream: &mut TcpStream, request: &Request) -> Result<(), JobError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| JobError::Client(400, "body is not UTF-8".to_string()))?;
    let doc =
        Json::parse(text).map_err(|e| JobError::Client(400, format!("body is not JSON: {e}")))?;
    let spec = SessionSpec::from_json(&doc).map_err(|e| JobError::Client(400, e))?;
    let fingerprint = spec.fingerprint();
    let digest = fingerprint.digest();
    let streaming = request
        .header("x-sa-stream")
        .is_some_and(|v| !v.eq_ignore_ascii_case("off"));

    // Warm path: the memo cache already holds this spec's report.
    let cached = state.cfg.cache.as_ref().and_then(|cache| {
        let payload = cache.lookup(&fingerprint)?;
        SessionReport::from_json(&payload).ok()
    });
    let sidecar = |hit: bool| {
        vec![
            (
                "X-SA-Cache".to_string(),
                if hit { "hit" } else { "miss" }.to_string(),
            ),
            (
                "X-SA-Simulated".to_string(),
                if hit { "0" } else { "1" }.to_string(),
            ),
        ]
    };

    let (report, hit) = match cached {
        Some(report) => {
            if streaming {
                let mut writer = begin_stream(stream, &sidecar(true))?;
                for line in &report.probe_lines {
                    writeln!(writer, "{line}")?;
                }
                let body = result_json(&digest, &spec, &report);
                writeln!(writer, "{}", body.to_string_compact())?;
                writer.flush()?;
                return Ok(());
            }
            (report, true)
        }
        None => {
            // Build without the cache attached: the serve layer owns
            // lookup/store so the sidecar headers stay truthful.
            let mut builder = spec.to_builder();
            if streaming {
                let sink = stream.try_clone()?;
                builder = builder.progress(Progress::to_writer(Box::new(sink)));
            }
            let session = builder
                .build()
                .map_err(|e| JobError::Client(400, format!("spec rejected: {e}")))?;
            if streaming {
                begin_stream(stream, &sidecar(false))?;
            }
            let report = session.run();
            if let Some(cache) = &state.cfg.cache {
                let _ = cache.store(&fingerprint, &report.to_json());
            }
            (report, false)
        }
    };

    let body = result_json(&digest, &spec, &report);
    if streaming {
        // Headers already sent (miss path); emit the final result line.
        writeln!(stream, "{}", body.to_string_compact())?;
        stream.flush()?;
        Ok(())
    } else {
        respond_json(stream, 200, &body, &sidecar(hit))?;
        Ok(())
    }
}

/// The `sa-serve-result` document: digest + a validated sa-stats document +
/// the exact report. Deterministic for a given spec, so cold and warm
/// responses are byte-identical.
pub fn result_json(spec_digest: &str, spec: &SessionSpec, report: &SessionReport) -> Json {
    let mut doc = Json::obj();
    doc.push("schema", Json::Str(RESULT_SCHEMA_NAME.to_string()));
    doc.push("version", Json::UInt(RESULT_SCHEMA_VERSION));
    doc.push("spec_digest", Json::Str(spec_digest.to_string()));
    doc.push("stats", job_stats_json(spec, report));
    doc.push("report", report.to_json());
    doc
}

/// A full `sa-stats` document for one served job, mirroring the registry
/// layout [`SessionReport::bottleneck`] uses so bound classification works.
/// Also what `--spec --stats-json` runs write, keeping CLI and HTTP
/// exports interchangeable under `analyze --check`.
pub fn job_stats_json(spec: &SessionSpec, report: &SessionReport) -> Json {
    let mut registry = MetricsRegistry::new();
    {
        let mut scope = registry.scope("session");
        scope.counter("cycles", report.cycles);
        scope.counter("adds", report.adds);
        if let [only] = report.node_stats.as_slice() {
            only.record(&mut scope);
        } else {
            for (i, ns) in report.node_stats.iter().enumerate() {
                ns.record(&mut scope.scope(&format!("node{i}")));
            }
        }
    }
    let mut doc = sa_telemetry::stats_json(
        "sa-serve",
        spec.config.fingerprint_json(),
        &registry,
        None,
        Json::Arr(Vec::new()),
    );
    sa_telemetry::attach_bottleneck(&mut doc);
    doc
}

/// Send streaming response headers and hand back a buffered writer for the
/// NDJSON lines.
fn begin_stream<'a>(
    stream: &'a mut TcpStream,
    extra: &[(String, String)],
) -> io::Result<io::BufWriter<&'a mut TcpStream>> {
    let mut head = String::new();
    head.push_str("HTTP/1.1 200 OK\r\n");
    head.push_str("Content-Type: application/x-ndjson\r\n");
    head.push_str("Connection: close\r\n");
    for (k, v) in extra {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;
    Ok(io::BufWriter::new(stream))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    }
}

fn respond_raw(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(String, String)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = String::new();
    head.push_str(&format!("HTTP/1.1 {status} {}\r\n", status_text(status)));
    head.push_str(&format!("Content-Type: {content_type}\r\n"));
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    head.push_str("Connection: close\r\n");
    for (k, v) in extra {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &Json,
    extra: &[(String, String)],
) -> io::Result<()> {
    let mut text = body.to_string_pretty();
    text.push('\n');
    respond_raw(stream, status, "application/json", extra, text.as_bytes())
}

/// Read one HTTP/1.1 request. Errors carry the status to answer with.
fn read_request(stream: &mut TcpStream, max_body: u64) -> Result<Request, (u16, String)> {
    let mut reader = LineReader::new(stream);
    let request_line = reader
        .read_line()
        .map_err(|e| (400, format!("bad request line: {e}")))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or((400, "empty request line".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or((400, "request line has no target".to_string()))?;
    // Strip any query string; routing is on the path alone.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let line = reader
            .read_line()
            .map_err(|e| (400, format!("bad header line: {e}")))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= 64 {
            return Err((431, "too many headers".to_string()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or((400, format!("malformed header: {line}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let length: u64 = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse())
        .transpose()
        .map_err(|_| (400, "unparseable Content-Length".to_string()))?
        .unwrap_or(0);
    if length > max_body {
        return Err((
            413,
            format!("body of {length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; length as usize];
    reader
        .read_exact(&mut body)
        .map_err(|e| (400, format!("short body: {e}")))?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Minimal buffered CRLF-line reader that can hand leftover bytes to an
/// exact body read (std's `BufReader` would work too; this keeps the
/// buffering in one obvious place and caps line length).
struct LineReader<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl<'a> LineReader<'a> {
    fn new(stream: &'a mut TcpStream) -> LineReader<'a> {
        LineReader {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Next line without its terminator; CRLF or bare LF both end a line.
    fn read_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let line = &self.buf[self.pos..self.pos + nl];
                let line = line.strip_suffix(b"\r").unwrap_or(line);
                let text = String::from_utf8_lossy(line).into_owned();
                self.pos += nl + 1;
                return Ok(text);
            }
            if self.buf.len() - self.pos > 8192 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "header line over 8 KiB",
                ));
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ));
            }
        }
    }

    fn read_exact(&mut self, out: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        let buffered = (self.buf.len() - self.pos).min(out.len());
        out[..buffered].copy_from_slice(&self.buf[self.pos..self.pos + buffered]);
        self.pos += buffered;
        filled += buffered;
        while filled < out.len() {
            let n = self.stream.read(&mut out[filled..])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            filled += n;
        }
        Ok(())
    }
}
