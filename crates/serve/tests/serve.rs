//! End-to-end exercises of the daemon over real sockets: warm hits are
//! byte-identical with zero simulation, quotas answer 429, streaming
//! replays probe lines, shutdown drains cleanly.

use std::path::PathBuf;
use std::sync::Arc;

use sa_serve::{client, ServeConfig, Server};
use sa_telemetry::Json;
use scatter_add_repro::{ResultCache, SessionSpec, Workload};

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sa-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn histogram_spec(n: u64, range: u64) -> String {
    let spec = SessionSpec::new(Workload::Histogram {
        base_word: 0,
        indices: (0..n).map(|i| (i * 17 + 3) % range).collect(),
    });
    spec.to_json().to_string_pretty()
}

fn start(cfg: ServeConfig) -> (Server, String) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn warm_hit_is_byte_identical_and_simulation_free() {
    let dir = temp_cache("warm");
    let cache = Arc::new(ResultCache::open(&dir).expect("cache"));
    let (server, addr) = start(ServeConfig {
        cache: Some(Arc::clone(&cache)),
        ..ServeConfig::default()
    });

    let spec = histogram_spec(512, 64);
    let cold = client::submit(&addr, &spec, "", None).expect("cold submit");
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-sa-cache"), Some("miss"));
    assert_eq!(cold.header("x-sa-simulated"), Some("1"));

    let warm = client::submit(&addr, &spec, "", None).expect("warm submit");
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-sa-cache"), Some("hit"));
    assert_eq!(warm.header("x-sa-simulated"), Some("0"));
    assert_eq!(cold.body, warm.body, "warm body must be byte-identical");
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.stores(), 1);

    // The embedded stats section is a valid sa-stats document.
    let doc = Json::parse(&cold.body).expect("result json");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("sa-serve-result")
    );
    sa_telemetry::validate_stats_json(doc.get("stats").expect("stats")).expect("valid stats");
    let report = doc.get("report").expect("report");
    scatter_add_repro::SessionReport::from_json(report).expect("report parses");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_job_quota_rejects_with_429() {
    let (server, addr) = start(ServeConfig {
        tenant_jobs: 2,
        ..ServeConfig::default()
    });
    let spec = histogram_spec(64, 16);
    for _ in 0..2 {
        let ok = client::submit(&addr, &spec, "alice", None).expect("submit");
        assert_eq!(ok.status, 200);
    }
    let over = client::submit(&addr, &spec, "alice", None).expect("submit");
    assert_eq!(over.status, 429);
    let doc = Json::parse(&over.body).expect("error json");
    let error = doc.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("quota"), "unexpected error: {error}");

    // A different tenant is still served.
    let other = client::submit(&addr, &spec, "bob", None).expect("submit");
    assert_eq!(other.status, 200);

    let stats = client::stats(&addr).expect("stats");
    let doc = Json::parse(&stats.body).expect("stats json");
    assert_eq!(
        doc.get("jobs")
            .and_then(|j| j.get("rejected_quota"))
            .and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        doc.get("tenants")
            .and_then(|t| t.get("alice"))
            .and_then(|a| a.get("completed"))
            .and_then(Json::as_u64),
        Some(2)
    );
    server.shutdown();
    server.join();
}

#[test]
fn streaming_replays_probe_lines_on_warm_hits() {
    let dir = temp_cache("stream");
    let cache = Arc::new(ResultCache::open(&dir).expect("cache"));
    let (server, addr) = start(ServeConfig {
        cache: Some(Arc::clone(&cache)),
        ..ServeConfig::default()
    });

    let mut spec = SessionSpec::new(Workload::Histogram {
        base_word: 0,
        indices: (0..2048u64).map(|i| (i * 31 + 7) % 128).collect(),
    });
    spec.probe_interval = 256;
    let text = spec.to_json().to_string_pretty();

    let mut cold_lines = Vec::new();
    let cold = {
        let mut sink = |line: &str| cold_lines.push(line.to_string());
        client::submit(&addr, &text, "", Some(&mut sink)).expect("cold stream")
    };
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-sa-cache"), Some("miss"));

    let mut warm_lines = Vec::new();
    let warm = {
        let mut sink = |line: &str| warm_lines.push(line.to_string());
        client::submit(&addr, &text, "", Some(&mut sink)).expect("warm stream")
    };
    assert_eq!(warm.header("x-sa-cache"), Some("hit"));
    assert_eq!(warm.header("x-sa-simulated"), Some("0"));
    assert_eq!(cold.body, warm.body, "final result line must match");

    // Warm replay carries the stored probe snapshots (heartbeats are live
    // progress and intentionally absent), every one a valid probe line.
    let warm_probes: Vec<_> = warm_lines
        .iter()
        .filter(|l| l.contains("\"sa-probe\""))
        .collect();
    assert!(!warm_probes.is_empty(), "warm stream should replay probes");
    for line in &warm_probes {
        let doc = Json::parse(line).expect("probe json");
        sa_telemetry::validate_probe_json(&doc).expect("valid probe line");
    }
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_specs_and_unknown_routes_answer_4xx() {
    let (server, addr) = start(ServeConfig::default());
    let bad = client::submit(&addr, "{\"schema\":\"nope\"}", "", None).expect("submit");
    assert_eq!(bad.status, 400);
    let not_json = client::submit(&addr, "not json at all", "", None).expect("submit");
    assert_eq!(not_json.status, 400);
    let missing = client::request(&addr, "GET", "/v1/nothing", &[], None).expect("request");
    assert_eq!(missing.status, 404);
    let wrong_method = client::request(&addr, "GET", "/v1/jobs", &[], None).expect("request");
    assert_eq!(wrong_method.status, 405);
    let health = client::health(&addr).expect("health");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");
    server.shutdown();
    server.join();
}

#[test]
fn http_shutdown_drains_the_server() {
    let (server, addr) = start(ServeConfig::default());
    let resp = client::shutdown(&addr).expect("shutdown");
    assert_eq!(resp.status, 200);
    assert!(server.is_shutting_down());
    server.join();
}
