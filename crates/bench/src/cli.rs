//! One shared command-line surface for every sa-bench binary.
//!
//! The figure binaries grew identical run-control flags one copy at a time
//! (`--jobs` scanned raw argv in `sweep`, `--step-threads` was parsed in
//! both `fig13` and `explore`, `--fast-forward` lived inside `BenchRun`).
//! [`Cli`] parses them once and installs the process-wide defaults they
//! control, so a binary only handles flags specific to its experiment:
//!
//! - `--jobs N` — sweep worker threads (beats `SA_JOBS`, defaults to cores)
//! - `--step-threads N` — phase-parallel multinode stepping width
//! - `--fast-forward on|off` — event-horizon cycle skipping (default `on`)
//! - `--stats-json PATH`, `--trace PATH`, `--sample-interval N`,
//!   `--req-sample N` — telemetry outputs (consumed by
//!   [`BenchRun`](crate::telemetry::BenchRun))
//! - `--faults PLAN.json` — install a fault plan for every machine the
//!   binary builds (see `docs/RESILIENCE.md`)
//! - `--fault-seed N` — override the plan's seed without editing the file
//! - `--quick` — reduced-size smoke run
//!
//! Construction has side effects by design: [`Cli::from_args`] applies
//! `--fast-forward` via [`sa_sim::set_fast_forward_default`] and `--faults`
//! via [`sa_faults::set_default_plan`], so simulators built afterwards pick
//! the settings up without explicit plumbing. Both installs are idempotent
//! for a given argument vector.

use crate::args::Args;
use sa_faults::FaultPlan;

/// Parsed common flags plus the raw [`Args`] for binary-specific ones.
///
/// Exits the process with status 2 on a malformed flag (consistent with
/// the historical per-binary parsers), so binaries can assume a valid
/// configuration after construction.
#[derive(Debug)]
pub struct Cli {
    args: Args,
    jobs: usize,
    step_threads: usize,
    fast_forward: bool,
    fault_plan: Option<FaultPlan>,
}

impl Cli {
    /// Parse the process arguments and install the process-wide defaults.
    pub fn from_env() -> Cli {
        Cli::from_args(Args::from_env())
    }

    /// Parse pre-collected arguments and install the process-wide defaults.
    pub fn from_args(args: Args) -> Cli {
        match Cli::try_from_args(args) {
            Ok(cli) => cli,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// [`Cli::from_args`] returning parse failures instead of exiting.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed flag (bad number, an
    /// unknown `--fast-forward` mode, or an unreadable/invalid fault plan).
    pub fn try_from_args(args: Args) -> Result<Cli, String> {
        let jobs = crate::sweep::resolve_jobs(match args.get_or("jobs", 0usize) {
            Ok(n) if n > 0 => Some(n),
            Ok(_) => None,
            Err(e) => return Err(e.to_string()),
        });
        let step_threads = args
            .get_or("step-threads", 1usize)
            .map_err(|e| e.to_string())?
            .max(1);
        let fast_forward = args
            .choice("fast-forward", &["on", "off"], "on")
            .map_err(|e| e.to_string())?
            == "on";
        sa_sim::set_fast_forward_default(fast_forward);

        let fault_plan = match args.raw("faults") {
            None => None,
            Some(path) => {
                let mut plan = FaultPlan::load(std::path::Path::new(path))?;
                if let Some(seed) = args.raw("fault-seed") {
                    plan.seed = seed
                        .parse()
                        .map_err(|_| format!("--fault-seed: could not parse {seed:?}"))?;
                }
                Some(plan)
            }
        };
        sa_faults::set_default_plan(fault_plan.clone());

        Ok(Cli {
            args,
            jobs,
            step_threads,
            fast_forward,
            fault_plan,
        })
    }

    /// The raw arguments, for flags specific to one binary.
    pub fn args(&self) -> &Args {
        &self.args
    }

    /// Sweep worker threads (`--jobs` / `SA_JOBS` / available cores).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Phase-parallel multinode stepping width (`--step-threads`, min 1).
    pub fn step_threads(&self) -> usize {
        self.step_threads
    }

    /// Whether event-horizon fast-forward is enabled (`--fast-forward`).
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// The installed fault plan, when `--faults` was given.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Whether a reduced-size smoke run was requested (`--quick`).
    pub fn quick(&self) -> bool {
        self.args.has("quick") || std::env::var_os("SA_QUICK").is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Cli, String> {
        Cli::try_from_args(Args::parse(s.split_whitespace().map(str::to_owned)))
    }

    #[test]
    fn defaults() {
        let cli = parse("").expect("empty argv parses");
        assert!(cli.jobs() >= 1);
        assert_eq!(cli.step_threads(), 1);
        assert!(cli.fast_forward());
        assert!(cli.fault_plan().is_none());
    }

    #[test]
    fn common_flags_parse() {
        let cli = parse("--jobs 3 --step-threads 2 --fast-forward off --quick").expect("parses");
        assert_eq!(cli.jobs(), 3);
        assert_eq!(cli.step_threads(), 2);
        assert!(!cli.fast_forward());
        assert!(cli.quick());
        // restore the global for neighbouring tests
        sa_sim::set_fast_forward_default(true);
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse("--jobs frog").unwrap_err().contains("jobs"));
        assert!(parse("--fast-forward sometimes")
            .unwrap_err()
            .contains("fast-forward"));
        assert!(parse("--faults /nonexistent/plan.json").is_err());
    }

    #[test]
    fn fault_seed_overrides_plan() {
        let dir = std::env::temp_dir().join("sa-bench-cli-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("plan.json");
        let plan = FaultPlan::parse(
            r#"{"schema":"sa-faultplan","version":1,"seed":1,
                "faults":[{"kind":"ecc_single","period":5}]}"#,
        )
        .expect("valid plan");
        std::fs::write(&path, plan.to_json().to_string_pretty()).expect("write plan");
        let cli = parse(&format!("--faults {} --fault-seed 99", path.display())).expect("parses");
        assert_eq!(cli.fault_plan().expect("plan installed").seed, 99);
        sa_faults::set_default_plan(None);
    }
}
