//! One shared command-line surface for every sa-bench binary.
//!
//! The figure binaries grew identical run-control flags one copy at a time
//! (`--jobs` scanned raw argv in `sweep`, `--step-threads` was parsed in
//! both `fig13` and `explore`, `--fast-forward` lived inside `BenchRun`).
//! [`Cli`] parses them once and installs the process-wide defaults they
//! control, so a binary only handles flags specific to its experiment:
//!
//! - `--jobs N` — sweep worker threads (beats `SA_JOBS`, defaults to cores)
//! - `--step-threads N` — phase-parallel multinode stepping width
//! - `--node-threads N` — intra-node bank-lane stepping width (beats
//!   `SA_NODE_THREADS`, defaults to 1; byte-identical results at any width)
//! - `--fast-forward on|off` — event-horizon cycle skipping (default `on`)
//! - `--stats-json PATH`, `--trace PATH`, `--sample-interval N`,
//!   `--req-sample N` — telemetry outputs (consumed by
//!   [`BenchRun`](crate::telemetry::BenchRun))
//! - `--faults PLAN.json` — install a fault plan for every machine the
//!   binary builds (see `docs/RESILIENCE.md`)
//! - `--fault-seed N` — override the plan's seed without editing the file
//! - `--quick` — reduced-size smoke run
//! - `--progress` — NDJSON heartbeats (cycles/sec, ff ratio, sweep ETA) on
//!   stderr
//! - `--probe-listen PATH` — serve heartbeats *and* `sa-probe` snapshots on
//!   a unix socket for `analyze --watch PATH`
//! - `--probe-wait-client` — with `--probe-listen`, block (up to 30s) until
//!   a client connects before simulating, so a fast run cannot finish
//!   before its watcher attaches (the CI smoke job relies on this)
//! - `--probe-interval N` — snapshot cadence in simulated cycles (defaults
//!   to [`DEFAULT_PROBE_INTERVAL`] while listening, otherwise 0/off)
//! - `--host-profile` — collect host wall-clock phase attribution into the
//!   nondeterministic `host_profile` stats sidecar
//! - `--spec JOB.json` — run a serialized `SessionSpec` job instead of
//!   the binary's built-in experiment (see [`crate::specrun`] and
//!   `docs/SERVING.md`); handled here so every figure binary gets it
//! - `--cache[=DIR]` / `--cache DIR` — content-addressed result cache for
//!   sweep points and the canonical run (see `docs/PERFORMANCE.md`); a bare
//!   `--cache` uses `SA_CACHE_DIR` or `.sa-cache`, and setting the
//!   `SA_CACHE_DIR` environment variable enables the cache without any flag
//!
//! Construction has side effects by design: [`Cli::from_args`] applies
//! `--fast-forward` via [`sa_sim::set_fast_forward_default`], `--faults`
//! via [`sa_faults::set_default_plan`], and the progress sink via
//! [`sa_telemetry::set_global_progress`], so simulators built afterwards
//! pick the settings up without explicit plumbing. The installs are
//! idempotent for a given argument vector.

use crate::args::Args;
use sa_faults::FaultPlan;
use sa_telemetry::Progress;

/// Probe snapshot cadence (simulated cycles) used when `--probe-listen` is
/// given without an explicit `--probe-interval`.
pub const DEFAULT_PROBE_INTERVAL: u64 = 4096;

/// Resolve the result-cache directory from `--cache[=DIR]` and the
/// `SA_CACHE_DIR` environment variable; `None` means caching stays off.
///
/// The argument grammar has no `=` splitting, so `--cache=DIR` arrives as a
/// switch literally named `cache=DIR` — scan the flag names for the prefix.
fn resolve_cache_dir(args: &Args) -> Option<String> {
    if let Some(dir) = args.raw("cache") {
        return Some(dir.to_owned());
    }
    for flag in args.flags() {
        if let Some(dir) = flag.strip_prefix("cache=") {
            if !dir.is_empty() {
                return Some(dir.to_owned());
            }
        }
    }
    let env = std::env::var(sa_memo::ENV_DIR)
        .ok()
        .filter(|d| !d.is_empty());
    if args.has("cache") {
        return Some(env.unwrap_or_else(|| sa_memo::DEFAULT_DIR.to_owned()));
    }
    env
}

/// Parsed common flags plus the raw [`Args`] for binary-specific ones.
///
/// Exits the process with status 2 on a malformed flag (consistent with
/// the historical per-binary parsers), so binaries can assume a valid
/// configuration after construction.
#[derive(Debug)]
pub struct Cli {
    args: Args,
    jobs: usize,
    step_threads: usize,
    node_threads: usize,
    fast_forward: bool,
    fault_plan: Option<FaultPlan>,
    probe_interval: u64,
    host_profile: bool,
    cache_dir: Option<String>,
    /// Keeps the `--probe-listen` socket (and its accept thread) alive for
    /// the binary's lifetime; the socket file is removed when the `Cli`
    /// drops.
    #[cfg(unix)]
    listener: Option<sa_telemetry::ProbeListener>,
}

impl Cli {
    /// Parse the process arguments and install the process-wide defaults.
    pub fn from_env() -> Cli {
        Cli::from_args(Args::from_env())
    }

    /// Parse pre-collected arguments and install the process-wide defaults.
    ///
    /// When `--spec JOB.json` is among them the binary's own experiment is
    /// skipped entirely: the serialized session runs through
    /// [`crate::specrun`] and the process exits (status 0, or 2 on a
    /// malformed spec — the shared usage convention).
    pub fn from_args(args: Args) -> Cli {
        match Cli::try_from_args(args) {
            Ok(cli) => {
                if cli.args().has("spec") || cli.args().raw("spec").is_some() {
                    crate::specrun::run_and_exit(&cli);
                }
                cli
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// [`Cli::from_args`] returning parse failures instead of exiting.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed flag (bad number, an
    /// unknown `--fast-forward` mode, or an unreadable/invalid fault plan).
    pub fn try_from_args(args: Args) -> Result<Cli, String> {
        let jobs = crate::sweep::resolve_jobs(match args.get_or("jobs", 0usize) {
            Ok(n) if n > 0 => Some(n),
            Ok(_) => None,
            Err(e) => return Err(e.to_string()),
        });
        let step_threads = args
            .get_or("step-threads", 1usize)
            .map_err(|e| e.to_string())?
            .max(1);
        // 0 = flag absent: leave the process default alone so an
        // `SA_NODE_THREADS` environment setting (the CI matrix) survives.
        let node_threads = args
            .get_or("node-threads", 0usize)
            .map_err(|e| e.to_string())?;
        if node_threads > 0 {
            sa_sim::set_node_threads_default(node_threads);
        }
        let node_threads = if node_threads > 0 {
            node_threads
        } else {
            sa_sim::node_threads_default()
        };
        let fast_forward = args
            .choice("fast-forward", &["on", "off"], "on")
            .map_err(|e| e.to_string())?
            == "on";
        sa_sim::set_fast_forward_default(fast_forward);

        let fault_plan = match args.raw("faults") {
            None => None,
            Some(path) => {
                let mut plan = FaultPlan::load(std::path::Path::new(path))?;
                if let Some(seed) = args.raw("fault-seed") {
                    plan.seed = seed
                        .parse()
                        .map_err(|_| format!("--fault-seed: could not parse {seed:?}"))?;
                }
                Some(plan)
            }
        };
        sa_faults::set_default_plan(fault_plan.clone());

        let mut probe_interval = args
            .get_or("probe-interval", 0u64)
            .map_err(|e| e.to_string())?;
        let host_profile = args.has("host-profile");
        let cache_dir = resolve_cache_dir(&args);

        #[cfg(unix)]
        let mut listener = None;
        let progress = if let Some(path) = args.raw("probe-listen") {
            #[cfg(unix)]
            {
                let l = sa_telemetry::ProbeListener::bind(std::path::Path::new(path))
                    .map_err(|e| format!("--probe-listen {path}: {e}"))?;
                if args.has("probe-wait-client")
                    && !l.wait_for_client(std::time::Duration::from_secs(30))
                {
                    return Err(format!(
                        "--probe-wait-client: no client connected to {path} within 30s"
                    ));
                }
                let p = l.progress();
                listener = Some(l);
                if probe_interval == 0 {
                    probe_interval = DEFAULT_PROBE_INTERVAL;
                }
                p
            }
            #[cfg(not(unix))]
            {
                return Err(format!(
                    "--probe-listen {path}: unix sockets unavailable on this platform"
                ));
            }
        } else if args.has("progress") {
            Progress::stderr()
        } else {
            Progress::off()
        };
        sa_telemetry::set_global_progress(progress);

        Ok(Cli {
            args,
            jobs,
            step_threads,
            node_threads,
            fast_forward,
            fault_plan,
            probe_interval,
            host_profile,
            cache_dir,
            #[cfg(unix)]
            listener,
        })
    }

    /// The raw arguments, for flags specific to one binary.
    pub fn args(&self) -> &Args {
        &self.args
    }

    /// Sweep worker threads (`--jobs` / `SA_JOBS` / available cores).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Phase-parallel multinode stepping width (`--step-threads`, min 1).
    pub fn step_threads(&self) -> usize {
        self.step_threads
    }

    /// Intra-node bank-lane stepping width (`--node-threads` /
    /// `SA_NODE_THREADS`, min 1). Installed as the process-wide default at
    /// parse time, so every node built afterwards picks it up.
    pub fn node_threads(&self) -> usize {
        self.node_threads
    }

    /// Whether event-horizon fast-forward is enabled (`--fast-forward`).
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// The installed fault plan, when `--faults` was given.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Whether a reduced-size smoke run was requested (`--quick`).
    pub fn quick(&self) -> bool {
        self.args.has("quick") || std::env::var_os("SA_QUICK").is_some()
    }

    /// Probe snapshot cadence in simulated cycles (0 = probing off).
    pub fn probe_interval(&self) -> u64 {
        self.probe_interval
    }

    /// Whether to collect the `host_profile` wall-clock sidecar
    /// (`--host-profile`).
    pub fn host_profile(&self) -> bool {
        self.host_profile
    }

    /// The result-cache directory (`--cache[=DIR]` / `SA_CACHE_DIR`), or
    /// `None` when caching is off.
    pub fn cache_dir(&self) -> Option<&str> {
        self.cache_dir.as_deref()
    }

    /// The process-wide progress sink installed at parse time (off unless
    /// `--progress` or `--probe-listen` was given).
    pub fn progress(&self) -> Progress {
        sa_telemetry::global_progress()
    }

    /// Connected `--probe-listen` clients (0 when not listening).
    #[cfg(unix)]
    pub fn probe_clients(&self) -> usize {
        self.listener.as_ref().map_or(0, |l| l.client_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Cli, String> {
        Cli::try_from_args(Args::parse(s.split_whitespace().map(str::to_owned)))
    }

    #[test]
    fn defaults() {
        let cli = parse("").expect("empty argv parses");
        assert!(cli.jobs() >= 1);
        assert_eq!(cli.step_threads(), 1);
        assert!(cli.node_threads() >= 1);
        assert!(cli.fast_forward());
        assert!(cli.fault_plan().is_none());
    }

    #[test]
    fn common_flags_parse() {
        let prev_node_threads = sa_sim::node_threads_default();
        let cli = parse("--jobs 3 --step-threads 2 --node-threads 4 --fast-forward off --quick")
            .expect("parses");
        assert_eq!(cli.jobs(), 3);
        assert_eq!(cli.step_threads(), 2);
        assert_eq!(cli.node_threads(), 4);
        assert_eq!(sa_sim::node_threads_default(), 4, "installed process-wide");
        assert!(!cli.fast_forward());
        assert!(cli.quick());
        // restore the globals for neighbouring tests
        sa_sim::set_fast_forward_default(true);
        sa_sim::set_node_threads_default(prev_node_threads);
    }

    #[test]
    fn probe_flags_parse() {
        let cli = parse("--probe-interval 512 --host-profile").expect("parses");
        assert_eq!(cli.probe_interval(), 512);
        assert!(cli.host_profile());
        let cli = parse("").expect("parses");
        assert_eq!(cli.probe_interval(), 0);
        assert!(!cli.host_profile());
    }

    #[cfg(unix)]
    #[test]
    fn probe_listen_defaults_the_interval_and_binds() {
        let path = std::env::temp_dir().join(format!("sa-cli-test-{}.sock", std::process::id()));
        let cli = parse(&format!("--probe-listen {}", path.display())).expect("binds and parses");
        assert_eq!(cli.probe_interval(), DEFAULT_PROBE_INTERVAL);
        assert!(cli.progress().is_on());
        assert_eq!(cli.probe_clients(), 0);
        drop(cli);
        assert!(!path.exists(), "socket removed when Cli drops");
        sa_telemetry::set_global_progress(Progress::off());
    }

    #[cfg(unix)]
    #[test]
    fn probe_wait_client_blocks_until_a_watcher_connects() {
        let path =
            std::env::temp_dir().join(format!("sa-cli-wait-test-{}.sock", std::process::id()));
        // Parsing blocks until a client connects, so attach one from a
        // helper thread as soon as the socket appears.
        let client_path = path.clone();
        let client = std::thread::spawn(move || loop {
            if let Ok(s) = std::os::unix::net::UnixStream::connect(&client_path) {
                break s;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        let cli = parse(&format!(
            "--probe-listen {} --probe-wait-client",
            path.display()
        ))
        .expect("binds, waits, parses");
        assert!(
            cli.probe_clients() >= 1,
            "parse returned with a client attached"
        );
        drop(client.join().expect("client thread"));
        drop(cli);
        sa_telemetry::set_global_progress(Progress::off());
    }

    #[test]
    fn cache_flag_forms_resolve() {
        // Explicit directory, both spellings.
        let cli = parse("--cache /tmp/store").expect("parses");
        assert_eq!(cli.cache_dir(), Some("/tmp/store"));
        let cli = parse("--cache=/tmp/store2").expect("parses");
        assert_eq!(cli.cache_dir(), Some("/tmp/store2"));
        // Bare switch falls back to the default directory (the SA_CACHE_DIR
        // branch is environment-dependent, so only the unset case is exact).
        if std::env::var_os(sa_memo::ENV_DIR).is_none() {
            let cli = parse("--cache --quick").expect("parses");
            assert_eq!(cli.cache_dir(), Some(sa_memo::DEFAULT_DIR));
            let cli = parse("").expect("parses");
            assert_eq!(cli.cache_dir(), None);
        }
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(parse("--jobs frog").unwrap_err().contains("jobs"));
        assert!(parse("--node-threads frog")
            .unwrap_err()
            .contains("node-threads"));
        assert!(parse("--fast-forward sometimes")
            .unwrap_err()
            .contains("fast-forward"));
        assert!(parse("--faults /nonexistent/plan.json").is_err());
    }

    #[test]
    fn fault_seed_overrides_plan() {
        let dir = std::env::temp_dir().join("sa-bench-cli-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("plan.json");
        let plan = FaultPlan::parse(
            r#"{"schema":"sa-faultplan","version":1,"seed":1,
                "faults":[{"kind":"ecc_single","period":5}]}"#,
        )
        .expect("valid plan");
        std::fs::write(&path, plan.to_json().to_string_pretty()).expect("write plan");
        let cli = parse(&format!("--faults {} --fault-seed 99", path.display())).expect("parses");
        assert_eq!(cli.fault_plan().expect("plan installed").seed, 99);
        sa_faults::set_default_plan(None);
    }
}
