//! Shared harness for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Every figure and table of the paper's evaluation section has a binary in
//! `src/bin/` that prints the same rows or series the paper reports:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — machine parameters |
//! | `fig6`   | histogram time vs input size (HW vs sort&scan) |
//! | `fig7`   | histogram time vs index range (HW vs sort&scan) |
//! | `fig8`   | histogram time vs index range (HW vs privatization) |
//! | `fig9`   | SpMV: CSR vs EBE-SW vs EBE-HW |
//! | `fig10`  | MD: no-SA vs SW vs HW |
//! | `fig11`  | combining-store size vs memory/FU latency |
//! | `fig12`  | combining-store size vs memory throughput |
//! | `fig13`  | multi-node scalability |
//!
//! Run one with `cargo run --release -p sa-bench --bin fig6`. Pass
//! `--quick` (or set `SA_QUICK=1`) for a reduced-size smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// The local perf-trajectory ledger: `hotloop` appends one NDJSON entry per
/// measured run, `analyze trend` prints the tail. Wall-clock numbers, so
/// machine-local by design — the file is gitignored, never diffed in CI.
pub const TRAJECTORY_PATH: &str = "bench/history/trajectory.ndjson";

/// Whether the caller asked for a reduced-size run (`--quick` argument or
/// `SA_QUICK=1` in the environment).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("SA_QUICK").is_some()
}

/// Print a figure/table header.
pub fn header(title: &str, caption: &str) {
    println!("\n=== {title} ===");
    println!("{caption}");
}

/// Print one row of labelled values, aligned for terminal reading.
pub fn row(label: impl Display, cells: &[(&str, String)]) {
    let mut line = format!("  {label:<24}");
    for (name, value) in cells {
        line.push_str(&format!("  {name}={value:<12}"));
    }
    println!("{}", line.trim_end());
}

/// Format microseconds like the paper's axes.
pub fn us(micros: f64) -> String {
    format!("{micros:.2}us")
}

/// Format a cycle count in millions (the unit of Figures 9 and 10).
pub fn mcycles(cycles: u64) -> String {
    format!("{:.3}M", cycles as f64 / 1e6)
}

/// Format an operation count in millions.
pub fn mops(ops: u64) -> String {
    format!("{:.3}M", ops as f64 / 1e6)
}

/// Format a ratio.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "inf".to_owned()
    } else {
        format!("{:.2}x", a as f64 / b as f64)
    }
}

/// The one usage-error convention every binary shares: `error: <context>`
/// on stderr, then the caller's usage block, then exit status 2. Data and
/// I/O failures exit 1 instead — status 2 always means "fix the command
/// line / job spec".
pub fn usage_error(context: &str, usage: &str) -> ! {
    if !context.is_empty() {
        eprintln!("error: {context}\n");
    }
    eprint!("{usage}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(us(1.234), "1.23us");
        assert_eq!(mcycles(1_536_000), "1.536M");
        assert_eq!(mops(250_000), "0.250M");
        assert_eq!(ratio(300, 100), "3.00x");
        assert_eq!(ratio(1, 0), "inf");
    }
}

pub mod args;
pub mod cli;
pub mod diff;
pub mod specrun;
pub mod sweep;
pub mod telemetry;
