//! Deterministic parallel sweep executor for the figure/ablation binaries.
//!
//! The paper's evaluation is a sweep over independent simulator
//! configurations, so the binaries fan the simulations out over a pool of
//! scoped threads and keep everything observable strictly ordered: workers
//! only *compute*, and [`map`] hands the results back in item order so the
//! caller prints rows and records telemetry exactly as a serial run would.
//! Combined with the `BTreeMap`-backed metrics registry this makes the
//! sa-stats v2 document byte-identical for any `--jobs` value (the
//! determinism contract in `docs/PARALLELISM.md`).
//!
//! Worker count: `--jobs N` argument, else the `SA_JOBS` environment
//! variable, else every available core.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of available cores (the default worker count).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve the requested sweep width: `--jobs N` beats `SA_JOBS=N` beats
/// [`default_jobs`]. Zero and unparsable values fall through to the next
/// source.
pub fn jobs_from_env() -> usize {
    resolve_jobs(
        crate::args::Args::from_env()
            .get_or("jobs", 0usize)
            .ok()
            .filter(|&n| n > 0),
    )
}

/// The `SA_JOBS` / [`default_jobs`] fallback chain behind [`jobs_from_env`],
/// taking an already-parsed `--jobs` value (shared with [`crate::cli::Cli`]).
pub fn resolve_jobs(flag: Option<usize>) -> usize {
    if let Some(n) = flag {
        return n;
    }
    if let Some(v) = std::env::var_os("SA_JOBS") {
        if let Ok(n) = v.to_string_lossy().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    default_jobs()
}

/// Run `f` over every item on [`jobs_from_env`] worker threads and return
/// the results in item order. See [`map_jobs`].
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_jobs(jobs_from_env(), items, f)
}

/// Run `f` over every item on `jobs` worker threads and return the results
/// in item order.
///
/// Items are claimed from a shared cursor, so threads stay busy even when
/// per-item cost varies wildly (a sweep mixes tiny and huge configs). With
/// one job — or one item — this degenerates to a plain serial map with no
/// threads spawned. `f` must not print or otherwise observe ordering; do
/// that with the returned values.
pub fn map_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    // Sweep-point progress: announce the batch, report each completion.
    // Events go to the nondeterministic progress channel only — the result
    // vector (and therefore every stats byte) is untouched.
    let progress = if sa_telemetry::progress_enabled() && n > 0 {
        let p = sa_telemetry::global_progress();
        p.add_points(n as u64);
        Some(p)
    } else {
        None
    };
    let point_done = |i: usize| {
        if let Some(p) = &progress {
            p.point_done(&format!("sweep[{i}]"));
        }
    };
    if jobs <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let out = f(t);
                point_done(i);
                out
            })
            .collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot")
                    .take()
                    .expect("each work item claimed once");
                let out = f(item);
                *slots[i].lock().expect("result slot") = Some(out);
                point_done(i);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("workers joined")
                .expect("every item produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let serial = map_jobs(1, items.clone(), |x| x * x);
        for jobs in [2, 4, 64, 1000] {
            assert_eq!(map_jobs(jobs, items.clone(), |x| x * x), serial);
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items slow so later items finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = map_jobs(8, items, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(map_jobs::<u64, u64, _>(8, vec![], |x| x), vec![]);
        assert_eq!(map_jobs(8, vec![7u64], |x| x), vec![7]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(jobs_from_env() >= 1);
    }
}
