//! Deterministic parallel sweep executor for the figure/ablation binaries.
//!
//! The paper's evaluation is a sweep over independent simulator
//! configurations, so the binaries fan the simulations out over a pool of
//! scoped threads and keep everything observable strictly ordered: workers
//! only *compute*, and [`map`] hands the results back in item order so the
//! caller prints rows and records telemetry exactly as a serial run would.
//! Combined with the `BTreeMap`-backed metrics registry this makes the
//! sa-stats v2 document byte-identical for any `--jobs` value (the
//! determinism contract in `docs/PARALLELISM.md`).
//!
//! Worker count: `--jobs N` argument, else the `SA_JOBS` environment
//! variable, else every available core.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sa_memo::{Fingerprint, ResultCache};
use sa_telemetry::{Json, MetricsRegistry, Scope};

/// The number of available cores (the default worker count).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolve the requested sweep width: `--jobs N` beats `SA_JOBS=N` beats
/// [`default_jobs`]. Zero and unparsable values fall through to the next
/// source.
pub fn jobs_from_env() -> usize {
    resolve_jobs(
        crate::args::Args::from_env()
            .get_or("jobs", 0usize)
            .ok()
            .filter(|&n| n > 0),
    )
}

/// The `SA_JOBS` / [`default_jobs`] fallback chain behind [`jobs_from_env`],
/// taking an already-parsed `--jobs` value (shared with [`crate::cli::Cli`]).
///
/// `Some(0)` falls through to `SA_JOBS` / [`default_jobs`] like every other
/// zero in the chain — a sweep can never run with zero workers.
pub fn resolve_jobs(flag: Option<usize>) -> usize {
    if let Some(n) = flag {
        if n > 0 {
            return n;
        }
    }
    if let Some(v) = std::env::var_os("SA_JOBS") {
        if let Ok(n) = v.to_string_lossy().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    default_jobs()
}

/// Run `f` over every item on [`jobs_from_env`] worker threads and return
/// the results in item order. See [`map_jobs`].
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    map_jobs(jobs_from_env(), items, f)
}

/// Run `f` over every item on `jobs` worker threads and return the results
/// in item order.
///
/// Items are claimed from a shared cursor, so threads stay busy even when
/// per-item cost varies wildly (a sweep mixes tiny and huge configs). With
/// one job — or one item — this degenerates to a plain serial map with no
/// threads spawned. `f` must not print or otherwise observe ordering; do
/// that with the returned values.
pub fn map_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    // Sweep-point progress: announce the batch, report each completion.
    // Events go to the nondeterministic progress channel only — the result
    // vector (and therefore every stats byte) is untouched.
    let progress = if sa_telemetry::progress_enabled() && n > 0 {
        let p = sa_telemetry::global_progress();
        p.add_points(n as u64);
        Some(p)
    } else {
        None
    };
    let point_done = |i: usize| {
        if let Some(p) = &progress {
            p.point_done(&format!("sweep[{i}]"));
        }
    };
    if jobs <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let out = f(t);
                point_done(i);
                out
            })
            .collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot")
                    .take()
                    .expect("each work item claimed once");
                let out = f(item);
                *slots[i].lock().expect("result slot") = Some(out);
                point_done(i);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("workers joined")
                .expect("every item produced a result")
        })
        .collect()
}

/// One sweep point's cacheable output: the metrics it recorded plus the
/// scalar numbers its table row is formatted from.
///
/// A figure binary's per-point closure builds one of these instead of
/// writing into the shared [`BenchRun`](crate::telemetry::BenchRun)
/// registry directly; the caller merges the metrics back (counters add,
/// gauges overwrite, histograms merge — exactly what direct recording
/// would have produced) and formats rows from the numbers. Because both
/// halves round-trip through JSON losslessly (`f64` via bit-exact
/// serialization), a cache hit replays the point byte-for-byte.
#[derive(Debug, Default)]
pub struct CachedPoint {
    /// Metrics recorded under this point's final scope paths.
    pub metrics: MetricsRegistry,
    /// Named scalars for row formatting, in insertion order.
    pub nums: Vec<(String, f64)>,
}

impl CachedPoint {
    /// An empty point.
    pub fn new() -> CachedPoint {
        CachedPoint::default()
    }

    /// A metrics scope rooted at `path`, like
    /// [`BenchRun::scope`](crate::telemetry::BenchRun::scope).
    pub fn scope(&mut self, path: &str) -> Scope<'_> {
        self.metrics.scope(path)
    }

    /// Record a named scalar for later row formatting.
    pub fn num(&mut self, name: &str, value: f64) {
        self.nums.push((name.to_owned(), value));
    }

    /// Look up a scalar recorded with [`CachedPoint::num`]; panics when the
    /// name was never recorded (a programming error in the binary).
    pub fn get_num(&self, name: &str) -> f64 {
        self.nums
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("CachedPoint: no scalar named {name:?}"))
    }

    /// The cache payload: `{"metrics": {...}, "nums": [[name, value], ...]}`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("metrics", self.metrics.to_json());
        let nums = self
            .nums
            .iter()
            .map(|(n, v)| Json::Arr(vec![Json::Str(n.clone()), Json::Num(*v)]))
            .collect();
        o.push("nums", Json::Arr(nums));
        o
    }

    /// Parse a payload written by [`CachedPoint::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed field. Callers fall back to
    /// recomputing the point.
    pub fn from_json(doc: &Json) -> Result<CachedPoint, String> {
        let metrics =
            MetricsRegistry::from_json(doc.get("metrics").ok_or("cached point: missing metrics")?)?;
        let Some(Json::Arr(entries)) = doc.get("nums") else {
            return Err("cached point: missing nums".to_owned());
        };
        let mut nums = Vec::with_capacity(entries.len());
        for e in entries {
            let pair = e.as_arr().unwrap_or_default();
            let (Some(name), Some(value)) = (
                pair.first().and_then(Json::as_str),
                pair.get(1).and_then(Json::as_f64),
            ) else {
                return Err("cached point: malformed nums entry".to_owned());
            };
            nums.push((name.to_owned(), value));
        }
        Ok(CachedPoint { metrics, nums })
    }
}

/// [`map`] with a content-addressed result cache in front of the closure:
/// each point's [`Fingerprint`] (from `key_of`) is looked up before `run`
/// is invoked, and a computed point is stored after. With `cache = None`
/// this is exactly `map(items, run)` — the cold and disabled paths produce
/// identical results, and therefore identical output bytes.
///
/// Hits skip `run` entirely (zero simulation), so any correctness asserts
/// inside the closure only fire on fresh computes — the stored payload was
/// checked when it was first produced, and the store validates entry
/// integrity on every read.
pub fn map_cached<T, K, F>(
    cache: Option<&ResultCache>,
    items: Vec<T>,
    key_of: K,
    run: F,
) -> Vec<CachedPoint>
where
    T: Send,
    K: Fn(&T) -> Fingerprint + Sync,
    F: Fn(T) -> CachedPoint + Sync,
{
    map(items, |item| {
        let Some(cache) = cache else {
            return run(item);
        };
        let key = key_of(&item);
        if let Some(payload) = cache.lookup(&key) {
            if let Ok(point) = CachedPoint::from_json(&payload) {
                return point;
            }
        }
        let point = run(item);
        // Store failures (full disk, read-only store) cost only warmth.
        let _ = cache.store(&key, &point.to_json());
        point
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let serial = map_jobs(1, items.clone(), |x| x * x);
        for jobs in [2, 4, 64, 1000] {
            assert_eq!(map_jobs(jobs, items.clone(), |x| x * x), serial);
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items slow so later items finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = map_jobs(8, items, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(map_jobs::<u64, u64, _>(8, vec![], |x| x), vec![]);
        assert_eq!(map_jobs(8, vec![7u64], |x| x), vec![7]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
        assert!(jobs_from_env() >= 1);
    }

    #[test]
    fn resolve_jobs_zero_falls_through() {
        // `--jobs 0` must behave exactly like no flag at all (regression:
        // it used to return 0 and starve the sweep of workers).
        assert_eq!(resolve_jobs(Some(0)), resolve_jobs(None));
        assert!(resolve_jobs(Some(0)) >= 1);
        assert_eq!(resolve_jobs(Some(3)), 3);
    }

    #[test]
    fn cached_point_round_trips() {
        let mut p = CachedPoint::new();
        {
            let mut s = p.scope("hw");
            s.counter("cycles", 123);
            s.gauge("occupancy", 0.5);
        }
        p.num("hw_us", 1.25);
        p.num("sw_us", 40.0);
        let back = CachedPoint::from_json(&p.to_json()).expect("round-trips");
        assert_eq!(
            back.to_json().to_string_compact(),
            p.to_json().to_string_compact()
        );
        assert_eq!(back.get_num("hw_us"), 1.25);
        assert_eq!(back.get_num("sw_us"), 40.0);
    }

    #[test]
    fn map_cached_hits_skip_the_closure() {
        let dir = std::env::temp_dir().join(format!(
            "sa-sweep-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("open cache");
        let items: Vec<u64> = (0..4).collect();
        let key_of = |&x: &u64| Fingerprint::new("sweep-test").u64("x", x);
        let run = |x: u64| {
            let mut p = CachedPoint::new();
            p.scope("t").counter("calls", 1);
            p.num("sq", (x * x) as f64);
            p
        };
        let cold = map_cached(Some(&cache), items.clone(), key_of, run);
        assert_eq!((cache.hits(), cache.misses(), cache.stores()), (0, 4, 4));
        let warm = map_cached(Some(&cache), items.clone(), key_of, |_| {
            panic!("warm sweep must not recompute")
        });
        assert_eq!((cache.hits(), cache.misses(), cache.stores()), (4, 4, 4));
        let off = map_cached(None, items, key_of, run);
        for ((c, w), o) in cold.iter().zip(&warm).zip(&off) {
            assert_eq!(
                c.to_json().to_string_compact(),
                w.to_json().to_string_compact()
            );
            assert_eq!(
                c.to_json().to_string_compact(),
                o.to_json().to_string_compact()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
