//! `--spec FILE`: run a serialized [`SessionSpec`] instead of the binary's
//! built-in experiment.
//!
//! Every figure/ablation binary parses its flags through [`Cli`], so the
//! hook lives there: when `--spec` is present the binary loads the JSON job
//! description, overlays any execution knobs given explicitly on the
//! command line (`--step-threads`, `--node-threads`, `--fast-forward`,
//! `--probe-interval`), runs the session through the same cache/progress
//! plumbing as the HTTP daemon, prints a deterministic summary, and exits —
//! the same job file therefore means the same simulation whether it is
//! submitted to `sa-serve`, replayed by `fig6 --spec job.json`, or
//! fingerprinted by the result cache. A malformed spec follows the shared
//! usage convention: `error: ...` plus a usage block, exit status 2.

use std::sync::Arc;

use crate::cli::Cli;
use sa_telemetry::Json;
use scatter_add_repro::{ResultCache, SessionSpec};

/// Usage block printed (to stderr) on any `--spec` error.
pub const SPEC_USAGE: &str = "\
usage: <bin> --spec JOB.json [run-control flags]

  runs the serialized session the file describes instead of the binary's
  built-in experiment (schema: sa-session-spec v1, see docs/SERVING.md).
  execution knobs given explicitly on the command line override the spec's
  exec section: --step-threads N, --node-threads N, --fast-forward on|off,
  --probe-interval N. --cache[=DIR] and --progress attach as usual; with a
  cache, a warm spec replays without simulating.
  --stats-json PATH additionally writes the job's sa-stats document.
";

/// Run the `--spec` job and exit: status 0 on success, 2 on a malformed
/// spec (shared usage convention), 1 on an I/O failure writing outputs.
pub fn run_and_exit(cli: &Cli) -> ! {
    let Some(path) = cli.args().raw("spec") else {
        crate::usage_error("--spec needs a job file path", SPEC_USAGE);
    };
    match run_spec(path, cli) {
        Ok(summary) => {
            print!("{summary}");
            std::process::exit(0);
        }
        Err(SpecError::Spec(e)) => crate::usage_error(&e, SPEC_USAGE),
        Err(SpecError::Io(e)) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// What went wrong running a spec: a bad job description (usage, exit 2)
/// or a failed output write (I/O, exit 1).
pub enum SpecError {
    /// The job file is missing, malformed, or semantically invalid.
    Spec(String),
    /// An output (e.g. `--stats-json`) could not be written.
    Io(String),
}

/// Load, overlay, run, and summarize one spec file. The summary is
/// deterministic (no wall-clock, no cache state), so repeated runs of the
/// same job print identical bytes; cache traffic goes to stderr.
pub fn run_spec(path: &str, cli: &Cli) -> Result<String, SpecError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError::Spec(format!("--spec {path}: {e}")))?;
    let doc =
        Json::parse(&text).map_err(|e| SpecError::Spec(format!("--spec {path}: not JSON: {e}")))?;
    let mut spec =
        SessionSpec::from_json(&doc).map_err(|e| SpecError::Spec(format!("--spec {path}: {e}")))?;

    // Command-line execution knobs beat the spec's exec section, but only
    // when explicitly given — absence means "respect the job file".
    let args = cli.args();
    if args.raw("step-threads").is_some() {
        spec.exec.step_threads = cli.step_threads();
    }
    if args.raw("node-threads").is_some() {
        spec.exec.node_threads = cli.node_threads();
    }
    if args.raw("fast-forward").is_some() {
        spec.exec.fast_forward = Some(cli.fast_forward());
    }
    if args.raw("probe-interval").is_some() {
        spec.probe_interval = cli.probe_interval();
    }

    let digest = spec.fingerprint().digest();
    let mut builder = spec.to_builder();
    let cache = match cli.cache_dir() {
        Some(dir) => {
            let cache = Arc::new(
                ResultCache::open(dir).map_err(|e| SpecError::Io(format!("--cache {dir}: {e}")))?,
            );
            builder = builder.cache(Arc::clone(&cache));
            Some(cache)
        }
        None => None,
    };
    let progress = cli.progress();
    if progress.is_on() {
        builder = builder.progress(progress);
    }
    let session = builder
        .build()
        .map_err(|e| SpecError::Spec(format!("--spec {path}: {e}")))?;
    let report = session.run();

    if let Some(cache) = &cache {
        eprintln!(
            "cache: {} (hits {} misses {} stores {})",
            if cache.hits() > 0 { "hit" } else { "miss" },
            cache.hits(),
            cache.misses(),
            cache.stores()
        );
    }
    if let Some(out) = args.raw("stats-json") {
        let stats = sa_serve::job_stats_json(&spec, &report);
        std::fs::write(out, format!("{}\n", stats.to_string_pretty()))
            .map_err(|e| SpecError::Io(format!("--stats-json {out}: {e}")))?;
        eprintln!("stats-json: wrote {out}");
    }

    let mut summary = String::new();
    summary.push_str(&format!("spec {path}\n"));
    summary.push_str(&format!("  digest        {digest}\n"));
    summary.push_str(&format!("  cycles        {}\n", report.cycles));
    summary.push_str(&format!("  adds          {}\n", report.adds));
    summary.push_str(&format!("  result words  {}\n", report.result.len()));
    summary.push_str(&format!("  nodes         {}\n", report.node_stats.len()));
    if report.sum_back_lines > 0 {
        summary.push_str(&format!("  sum-back      {}\n", report.sum_back_lines));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use scatter_add_repro::Workload;

    fn cli(argv: &str) -> Cli {
        Cli::try_from_args(Args::parse(argv.split_whitespace().map(str::to_owned)))
            .expect("argv parses")
    }

    fn write_spec(tag: &str) -> std::path::PathBuf {
        let spec = SessionSpec::new(Workload::Histogram {
            base_word: 0,
            indices: (0..256u64).map(|i| (i * 13 + 1) % 32).collect(),
        });
        let path =
            std::env::temp_dir().join(format!("sa-specrun-{tag}-{}.json", std::process::id()));
        std::fs::write(&path, spec.to_json().to_string_pretty()).expect("write spec");
        path
    }

    #[test]
    fn summaries_are_deterministic_across_exec_knobs() {
        let path = write_spec("det");
        let base = run_spec(path.to_str().unwrap(), &cli("")).ok().unwrap();
        assert!(base.contains("cycles"));
        let threaded = run_spec(
            path.to_str().unwrap(),
            &cli("--step-threads 2 --node-threads 2"),
        )
        .ok()
        .unwrap();
        assert_eq!(base, threaded, "exec knobs must not change the summary");
        let _ = std::fs::remove_file(&path);
        // Restore the node-thread default the overlay parse installed.
        sa_sim::set_node_threads_default(1);
        sa_sim::set_fast_forward_default(true);
    }

    #[test]
    fn bad_specs_are_usage_errors() {
        let missing = run_spec("/nonexistent/job.json", &cli(""));
        assert!(matches!(missing, Err(SpecError::Spec(_))));
        let path = std::env::temp_dir().join(format!("sa-specrun-bad-{}.json", std::process::id()));
        std::fs::write(&path, "{\"schema\":\"wrong\"}").expect("write");
        let bad = run_spec(path.to_str().unwrap(), &cli(""));
        match bad {
            Err(SpecError::Spec(e)) => assert!(e.contains("schema"), "got: {e}"),
            _ => panic!("expected a spec error"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
