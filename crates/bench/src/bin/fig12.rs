//! Figure 12: histogram runtime sensitivity to combining-store size and
//! memory throughput (§4.4).
//!
//! 512 elements; memory latency 16; the minimum number of cycles between
//! successive memory references sweeps 1/2/4/16; dark bars use 16 histogram
//! bins, light bars 65,536.
//!
//! Expected shape (paper): at 65,536 bins the runtime tracks memory
//! throughput regardless of store size; at 16 bins the combining store
//! captures most requests and low memory throughput barely hurts.

use sa_bench::telemetry::BenchRun;
use sa_bench::{header, sweep, us};
use sa_core::SensitivityRig;
use sa_sim::{MachineConfig, Rng64, SensitivityConfig};

fn main() {
    let mut bench = BenchRun::from_env("fig12", &MachineConfig::merrimac());
    let n = 512;
    header(
        "Figure 12",
        "Sensitivity rig: 512 elements, memory latency 16, varying throughput",
    );
    // Every grid point carries its own input, keyed by the memory interval:
    // a `Rng64` stream per interval makes the data a function of the
    // configuration alone, independent of sweep order.
    let points: Vec<(usize, u32, &str, u64)> = [2usize, 4, 8, 16, 64]
        .into_iter()
        .flat_map(|cs| {
            [1u32, 2, 4, 16].into_iter().flat_map(move |interval| {
                [("16b", 16u64), ("65536b", 65_536)]
                    .into_iter()
                    .map(move |(label_range, range)| (cs, interval, label_range, range))
            })
        })
        .collect();
    let results = sweep::map(points.clone(), |(cs, interval, _label, range)| {
        let mut rng = Rng64::for_stream(0xF16_0012, u64::from(interval));
        let indices: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
        let rig = SensitivityRig::new(SensitivityConfig {
            cs_entries: cs,
            fu_latency: 4,
            mem_latency: 16,
            mem_interval: interval,
        });
        rig.run_histogram(&indices, range)
    });

    let mut i = 0;
    while i < points.len() {
        let cs = points[i].0;
        let mut cells: Vec<(&str, String)> = Vec::new();
        while i < points.len() && points[i].0 == cs {
            let (_, interval, label_range, _) = points[i];
            let r = &results[i];
            r.record_metrics(&mut bench.scope(&format!("rig.cs{cs}.i{interval}.r{label_range}")));
            // Leak a tiny label string; the binary is short-lived.
            let label: &'static str =
                Box::leak(format!("i{interval}/{label_range}").into_boxed_str());
            cells.push((label, us(r.micros())));
            i += 1;
        }
        bench.row(format!("CS entries={cs}"), &cells);
    }
    println!(
        "\npaper: wide-range runs are throughput-bound; 16-bin runs combine in the \
         store and stay fast even at 1 word per 16 cycles"
    );
    bench.finish();
}
