//! Figure 12: histogram runtime sensitivity to combining-store size and
//! memory throughput (§4.4).
//!
//! 512 elements; memory latency 16; the minimum number of cycles between
//! successive memory references sweeps 1/2/4/16; dark bars use 16 histogram
//! bins, light bars 65,536.
//!
//! Expected shape (paper): at 65,536 bins the runtime tracks memory
//! throughput regardless of store size; at 16 bins the combining store
//! captures most requests and low memory throughput barely hurts.

use sa_bench::telemetry::BenchRun;
use sa_bench::{header, us};
use sa_core::SensitivityRig;
use sa_sim::{MachineConfig, Rng64, SensitivityConfig};

fn main() {
    let mut bench = BenchRun::from_env("fig12", &MachineConfig::merrimac());
    let n = 512;
    header(
        "Figure 12",
        "Sensitivity rig: 512 elements, memory latency 16, varying throughput",
    );
    for cs in [2usize, 4, 8, 16, 64] {
        let mut cells: Vec<(&str, String)> = Vec::new();
        for interval in [1u32, 2, 4, 16] {
            for (label_range, range) in [("16b", 16u64), ("65536b", 65_536)] {
                let mut rng = Rng64::new(0xF16_0012 + u64::from(interval));
                let indices: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
                let rig = SensitivityRig::new(SensitivityConfig {
                    cs_entries: cs,
                    fu_latency: 4,
                    mem_latency: 16,
                    mem_interval: interval,
                });
                let r = rig.run_histogram(&indices, range);
                r.record_metrics(
                    &mut bench.scope(&format!("rig.cs{cs}.i{interval}.r{label_range}")),
                );
                // Leak a tiny label string; the binary is short-lived.
                let label: &'static str =
                    Box::leak(format!("i{interval}/{label_range}").into_boxed_str());
                cells.push((label, us(r.micros())));
            }
        }
        bench.row(format!("CS entries={cs}"), &cells);
    }
    println!(
        "\npaper: wide-range runs are throughput-bound; 16-bin runs combine in the \
         store and stay fast even at 1 word per 16 cycles"
    );
    bench.finish();
}
