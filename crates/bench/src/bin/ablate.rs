//! Simulated-cycle ablations of the scatter-add design choices.
//!
//! The Criterion benches measure the *simulator's* wall time; this binary
//! reports the *simulated machine's* cycles as each design parameter moves
//! away from the Table 1 point, one axis at a time:
//!
//! * combining-store entries (on the full machine, complementing the §4.4
//!   rig study);
//! * cache banks (and with them, scatter-add units);
//! * functional-unit latency under dependent-add chains;
//! * address-generator width;
//! * stream-cache capacity (the Figure 7 plateau);
//! * the software batch size (§4.1 says 256 was optimal on the paper's
//!   machine — this table shows where the optimum lands on ours);
//! * workload skew (uniform → Zipf → single bin).

use sa_apps::histogram::{run_hw, run_sort_scan, HistogramInput};
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, quick_mode, sweep, us};
use sa_core::{drive_scatter, ScatterKernel};
use sa_sim::{MachineConfig, Rng64};

fn ab_combining_store(bench: &mut BenchRun, quick: bool) {
    header(
        "Ablation: combining-store entries (full machine)",
        "32K uniform scatter-adds over 65,536 bins (cache-overflowing, latency-sensitive)",
    );
    let n = if quick { 4096 } else { 32_768 };
    let mut rng = Rng64::new(1);
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(65_536)).collect());
    let sizes = vec![1usize, 2, 4, 8, 16, 32];
    let runs = sweep::map(sizes.clone(), |cs| {
        let mut cfg = MachineConfig::merrimac();
        cfg.sa.cs_entries = cs;
        drive_scatter(&cfg, &kernel, false)
    });
    for (cs, run) in sizes.into_iter().zip(runs) {
        run.stats
            .record(&mut bench.scope(&format!("combining_store.cs{cs}")));
        bench.row(
            format!("cs={cs}"),
            &[
                ("time", us(run.micros())),
                ("stall-cycles", format!("{}", run.stats.sa.stalled_full)),
            ],
        );
    }
}

fn ab_banks(bench: &mut BenchRun, quick: bool) {
    header(
        "Ablation: cache banks / scatter-add units",
        "Uniform scatter-adds over a cache-resident range",
    );
    let n = if quick { 4096 } else { 16_384 };
    let mut rng = Rng64::new(2);
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(4096)).collect());
    let bank_counts = vec![1usize, 2, 4, 8, 16];
    let runs = sweep::map(bank_counts.clone(), |banks| {
        let mut cfg = MachineConfig::merrimac();
        cfg.cache.banks = banks;
        drive_scatter(&cfg, &kernel, false)
    });
    for (banks, run) in bank_counts.into_iter().zip(runs) {
        run.stats
            .record(&mut bench.scope(&format!("banks.b{banks}")));
        bench.row(
            format!("banks={banks}"),
            &[
                ("time", us(run.micros())),
                ("adds/cycle", format!("{:.2}", n as f64 / run.cycles as f64)),
            ],
        );
    }
}

fn ab_fu_latency(bench: &mut BenchRun, quick: bool) {
    header(
        "Ablation: FU latency under dependent chains",
        "All additions to one word — each must wait for the previous sum",
    );
    let n = if quick { 2048 } else { 8192 };
    let kernel = ScatterKernel::histogram(0, vec![0; n]);
    let latencies = vec![1u32, 2, 4, 8, 16];
    let runs = sweep::map(latencies.clone(), |fu| {
        let mut cfg = MachineConfig::merrimac();
        cfg.sa.fu_latency = fu;
        drive_scatter(&cfg, &kernel, false)
    });
    for (fu, run) in latencies.into_iter().zip(runs) {
        run.stats
            .record(&mut bench.scope(&format!("fu_latency.fu{fu}")));
        bench.row(
            format!("fu={fu}"),
            &[
                ("time", us(run.micros())),
                ("cycles/add", format!("{:.2}", run.cycles as f64 / n as f64)),
            ],
        );
    }
}

fn ab_ag_width(bench: &mut BenchRun, quick: bool) {
    header(
        "Ablation: address-generator width",
        "Issue bandwidth into the memory system (2 generators)",
    );
    let n = if quick { 4096 } else { 16_384 };
    let mut rng = Rng64::new(3);
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(4096)).collect());
    let widths = vec![1u32, 2, 4, 8];
    let runs = sweep::map(widths.clone(), |width| {
        let mut cfg = MachineConfig::merrimac();
        cfg.ag.width = width;
        drive_scatter(&cfg, &kernel, false)
    });
    for (width, run) in widths.into_iter().zip(runs) {
        run.stats
            .record(&mut bench.scope(&format!("ag_width.w{width}")));
        bench.row(format!("width={width}"), &[("time", us(run.micros()))]);
    }
}

fn ab_cache_capacity(bench: &mut BenchRun, quick: bool) {
    header(
        "Ablation: stream-cache capacity",
        "32K scatter-adds over 65,536 bins (512 KB of targets)",
    );
    let n = if quick { 8192 } else { 32_768 };
    let mut rng = Rng64::new(4);
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(65_536)).collect());
    let capacities = vec![64u64, 256, 1024, 4096];
    let runs = sweep::map(capacities.clone(), |kb| {
        let mut cfg = MachineConfig::merrimac();
        cfg.cache.total_bytes = kb << 10;
        drive_scatter(&cfg, &kernel, false)
    });
    for (kb, run) in capacities.into_iter().zip(runs) {
        run.stats
            .record(&mut bench.scope(&format!("cache_capacity.kb{kb}")));
        let s = run.stats.cache;
        bench.row(
            format!("cache={kb}KB"),
            &[
                ("time", us(run.micros())),
                ("hit-rate", format!("{:.2}", s.read_hit_rate())),
            ],
        );
    }
}

fn ab_batch_size(bench: &mut BenchRun, quick: bool) {
    header(
        "Ablation: software scatter-add batch size (§4.1)",
        "Sort + segmented scan; the paper's machine favored 256",
    );
    let cfg = MachineConfig::merrimac();
    let n = if quick { 4096 } else { 16_384 };
    let input = HistogramInput::uniform(n, 2048, 5);
    let batches = vec![32usize, 64, 128, 256, 512, 1024, 2048];
    let runs = sweep::map(batches.clone(), |batch| run_sort_scan(&cfg, &input, batch));
    for (batch, run) in batches.into_iter().zip(runs) {
        run.report
            .stats
            .record(&mut bench.scope(&format!("batch.b{batch}")));
        bench.row(format!("batch={batch}"), &[("time", us(run.micros()))]);
    }
}

fn ab_skew(bench: &mut BenchRun, quick: bool) {
    header(
        "Ablation: workload skew (uniform → Zipf → one bin)",
        "Hardware scatter-add, 1,024 bins; skew lengthens same-address chains",
    );
    let cfg = MachineConfig::merrimac();
    let n = if quick { 4096 } else { 16_384 };
    let mut rows: Vec<(String, HistogramInput)> =
        vec![("uniform".into(), HistogramInput::uniform(n, 1024, 6))];
    for s in [0.8f64, 1.2, 2.0] {
        rows.push((format!("zipf s={s}"), HistogramInput::zipf(n, 1024, s, 6)));
    }
    rows.push(("single bin".into(), HistogramInput::uniform(n, 1, 6)));
    let runs = sweep::map(rows, |(name, input)| {
        let run = run_hw(&cfg, &input);
        assert_eq!(run.bins, input.reference());
        (name, run)
    });
    for (i, (name, run)) in runs.into_iter().enumerate() {
        run.report
            .stats
            .record(&mut bench.scope(&format!("skew.case{i}")));
        bench.row(
            name,
            &[
                ("time", us(run.micros())),
                ("combined", format!("{}", run.report.stats.sa.combined)),
            ],
        );
    }
}

fn main() {
    let quick = quick_mode();
    let mut bench = BenchRun::from_env("ablate", &MachineConfig::merrimac());
    ab_combining_store(&mut bench, quick);
    ab_banks(&mut bench, quick);
    ab_fu_latency(&mut bench, quick);
    ab_ag_width(&mut bench, quick);
    ab_cache_capacity(&mut bench, quick);
    ab_batch_size(&mut bench, quick);
    ab_skew(&mut bench, quick);
    bench.finish();
}
