//! Figure 11: histogram runtime sensitivity to combining-store size and
//! varying memory/FU latencies on the simplified memory system (§4.4).
//!
//! 512 elements over 65,536 bins; memory throughput fixed at one word every
//! two cycles. For each combining-store size (2–64): four bars of memory
//! latency 8–256 at FU latency 4, then three bars of FU latency 2/8/16 at
//! memory latency 16.
//!
//! Expected shape (paper): with ≥16 entries performance no longer depends on
//! FU latency and barely on memory latency; 64 entries hide even 256 cycles.

use sa_bench::telemetry::BenchRun;
use sa_bench::{header, sweep, us};
use sa_core::SensitivityRig;
use sa_sim::{MachineConfig, Rng64, SensitivityConfig};

const CS_SIZES: [usize; 5] = [2, 4, 8, 16, 64];
const MEM_LATENCIES: [u32; 4] = [8, 16, 64, 256];
const FU_LATENCIES: [u32; 3] = [2, 8, 16];

fn main() {
    let mut bench = BenchRun::from_env("fig11", &MachineConfig::merrimac());
    let n = 512;
    let range = 65_536u64;
    let mut rng = Rng64::new(0xF16_0011);
    let indices: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
    header(
        "Figure 11",
        "Sensitivity rig: 512 elements, 65,536 bins, memory interval 2 cycles",
    );
    // Seven bars per combining-store size: four memory latencies at FU
    // latency 4, then three FU latencies at memory latency 16. Flatten the
    // whole grid and let the rig sweep it in parallel; results come back in
    // configuration order.
    let configs: Vec<SensitivityConfig> = CS_SIZES
        .iter()
        .flat_map(|&cs| {
            let mem = MEM_LATENCIES
                .iter()
                .map(move |&mem_latency| SensitivityConfig {
                    cs_entries: cs,
                    fu_latency: 4,
                    mem_latency,
                    mem_interval: 2,
                });
            let fu = FU_LATENCIES
                .iter()
                .map(move |&fu_latency| SensitivityConfig {
                    cs_entries: cs,
                    fu_latency,
                    mem_latency: 16,
                    mem_interval: 2,
                });
            mem.chain(fu)
        })
        .collect();
    let results =
        SensitivityRig::run_histogram_sweep(&configs, &indices, range, sweep::jobs_from_env());

    let per_cs = MEM_LATENCIES.len() + FU_LATENCIES.len();
    for (row_idx, &cs) in CS_SIZES.iter().enumerate() {
        let mut cells = Vec::new();
        let row = &results[row_idx * per_cs..(row_idx + 1) * per_cs];
        for (r, &mem_latency) in row.iter().zip(&MEM_LATENCIES) {
            r.record_metrics(&mut bench.scope(&format!("rig.cs{cs}.mem{mem_latency}")));
            cells.push((
                match mem_latency {
                    8 => "DRAM8",
                    16 => "DRAM16",
                    64 => "DRAM64",
                    _ => "DRAM256",
                },
                us(r.micros()),
            ));
        }
        for (r, &fu_latency) in row[MEM_LATENCIES.len()..].iter().zip(&FU_LATENCIES) {
            r.record_metrics(&mut bench.scope(&format!("rig.cs{cs}.fu{fu_latency}")));
            cells.push((
                match fu_latency {
                    2 => "FU2",
                    8 => "FU8",
                    _ => "FU16",
                },
                us(r.micros()),
            ));
        }
        let cells_ref: Vec<(&str, String)> = cells;
        bench.row(format!("CS entries={cs}"), &cells_ref);
    }
    println!(
        "\npaper: 16 entries make performance independent of FU latency and nearly \
         independent of memory latency; 64 entries tolerate 256-cycle memory"
    );
    bench.finish();
}
