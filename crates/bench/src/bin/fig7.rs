//! Figure 7: histogram execution time for inputs of length 32,768 and
//! varying index ranges — hardware scatter-add vs sort + segmented scan.
//!
//! Expected shape (paper): hardware is slow at tiny ranges (hot-bank /
//! serialized same-address additions), fastest at mid ranges, and degrades
//! to a plateau once the range exceeds the cache; sort&scan is flat-ish and
//! slower except at the extremes.

use sa_apps::histogram::{run_hw, run_sort_scan_default, HistogramInput};
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, quick_mode, sweep, us};
use sa_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("fig7", &cfg);
    let n = if quick_mode() { 4096 } else { 32_768 };
    let ranges: &[u64] = if quick_mode() {
        &[1, 64, 4096, 1 << 20]
    } else {
        &[
            1,
            4,
            16,
            64,
            256,
            1024,
            4096,
            16_384,
            65_536,
            262_144,
            1 << 20,
            1 << 22,
        ]
    };
    header(
        "Figure 7",
        &format!("Histogram execution time, {n} elements, varying index range"),
    );
    let runs = sweep::map(ranges.to_vec(), |range| {
        let input = HistogramInput::uniform(n, range, 0xF16_0007 + range);
        let hw = run_hw(&cfg, &input);
        let sw = run_sort_scan_default(&cfg, &input);
        // Exact checks are cheap for modest ranges only.
        if range <= 65_536 {
            assert_eq!(hw.bins, input.reference(), "hw result check");
            assert_eq!(sw.bins, input.reference(), "sw result check");
        }
        (range, hw, sw)
    });
    for (range, hw, sw) in runs {
        hw.report.stats.record(&mut bench.scope("hw"));
        sw.report.stats.record(&mut bench.scope("sortscan"));
        bench.row(
            format!("bins={range}"),
            &[
                ("scatter-add", us(hw.micros())),
                ("sort&scan", us(sw.micros())),
            ],
        );
    }
    println!(
        "\npaper: scatter-add dips in the middle (hot banks at small ranges, \
         cache overflow at large), sort&scan varies little"
    );
    bench.finish();
}
