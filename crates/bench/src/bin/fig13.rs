//! Figure 13: multi-node scalability of scatter-add (§4.5).
//!
//! Four reference traces replayed on 1–8 nodes:
//!
//! * `narrow` — 64K histogram references over a range of 256;
//! * `wide`   — 64K histogram references over a range of 1M;
//! * `mole`   — the first 590K references of the MD water kernel
//!   (~8,127 unique force words);
//! * `spas`   — the full 38K-reference EBE trace (~10K unique unknowns).
//!
//! Network configurations per the paper's legend: `high`/`low` bandwidth
//! (8 / 1 words per cycle per node) and `comb` = cache combining with
//! sum-back.
//!
//! Expected shape (paper): `wide-high` scales almost perfectly (memory-bw
//! bound); `wide-low` is network-bound and combining does not help;
//! `narrow-low` does not scale at all but `narrow-low-comb` recovers ~5.7×
//! at 8 nodes; `narrow-high` reaches ~7.1×; `mole`/`spas` sit between.

use std::sync::Mutex;

use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::Ebe;
use sa_bench::cli::Cli;
use sa_bench::sweep::CachedPoint;
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, sweep};
use sa_memo::{hash_f64s, hash_u64s};
use sa_multinode::MultiNode;
use sa_sim::{MachineConfig, NetworkConfig, Rng64};

struct Variant {
    name: &'static str,
    net: NetworkConfig,
    combining: bool,
}

/// Replay one trace for every (variant, node count) point. The points fan
/// out over the sweep executor; `--step-threads` additionally parallelizes
/// the cycle loop *inside* each multinode simulation (bit-identical to
/// serial stepping, see `docs/PARALLELISM.md`). Each point carries its own
/// [`sa_telemetry::Introspect`] so `--probe-listen` streams labelled
/// snapshots and `--host-profile` attributes wall-clock per phase.
#[allow(clippy::too_many_arguments)]
fn run_series(
    bench: &mut BenchRun,
    machine: &MachineConfig,
    label: &str,
    trace: &[u64],
    values: &[f64],
    variants: &[Variant],
    nodes_list: &[usize],
    step_threads: usize,
) {
    let points: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|vi| nodes_list.iter().map(move |&n| (vi, n)))
        .collect();
    let work: Vec<((usize, usize), sa_telemetry::Introspect)> = points
        .iter()
        .map(|&(vi, n)| {
            let point_label = format!("{label}.{}.n{n}", variants[vi].name);
            ((vi, n), bench.introspect(&point_label))
        })
        .collect();
    // The cache key names the exact inputs (trace/value digests, network
    // shape, node count) rather than just the label, so a trace edit or a
    // quick-mode size change can never replay stale results.
    let trace_sha = hash_u64s(trace);
    let values_sha = hash_f64s(values);
    // Host profilers ride a side channel: they are nondeterministic
    // wall-clock data, so they are neither cached nor replayed on hits.
    let profilers = Mutex::new(Vec::new());
    let results = sweep::map_cached(
        bench.cache(),
        work,
        |&((vi, n), _)| {
            let v = &variants[vi];
            bench
                .point_key(&format!("fig13 {label}-{} n={n}", v.name))
                .str("trace_sha256", &trace_sha)
                .str("values_sha256", &values_sha)
                .field("network", v.net.fingerprint_json())
                .bool("combining", v.combining)
                .u64("nodes", n as u64)
        },
        |((vi, n), mut probe)| {
            let v = &variants[vi];
            let mut mn = MultiNode::new(*machine, n, v.net, v.combining);
            let r = mn.run_trace_threads_probed(trace, values, step_threads, &mut probe);
            let mut point = CachedPoint::new();
            r.record_metrics(&mut point.scope(&format!("{label}.{}.n{n}", v.name)));
            point.num("gbps", r.throughput_gbps(machine.ghz));
            profilers
                .lock()
                .expect("profiler list")
                .push(probe.profiler);
            point
        },
    );
    for profiler in profilers.into_inner().expect("profiler list") {
        bench.absorb_host_profile(&profiler);
    }
    for point in &results {
        bench.absorb_metrics(&point.metrics);
    }
    for (vi, v) in variants.iter().enumerate() {
        let mut cells = Vec::new();
        for (&(pvi, n), point) in points.iter().zip(&results) {
            if pvi != vi {
                continue;
            }
            let cell: &'static str = Box::leak(format!("{n}n").into_boxed_str());
            cells.push((cell, format!("{:.1}GB/s", point.get_num("gbps"))));
        }
        bench.row(format!("{label}-{}", v.name), &cells);
    }
}

fn main() {
    let machine = MachineConfig::merrimac();
    let cli = Cli::from_env();
    let mut bench = BenchRun::from_cli("fig13", &machine, &cli);
    let quick = cli.quick();
    let step_threads = cli.step_threads();
    let nodes_list: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let hist_n = if quick { 8192 } else { 65_536 };

    header(
        "Figure 13",
        "Multi-node scatter-add throughput (GB/s); higher is better",
    );

    let mut rng = Rng64::new(0xF16_0013);
    let narrow: Vec<u64> = (0..hist_n).map(|_| rng.below(256)).collect();
    let wide: Vec<u64> = (0..hist_n).map(|_| rng.below(1 << 20)).collect();
    let ones = vec![1.0f64; hist_n];

    let hist_variants = [
        Variant {
            name: "high",
            net: NetworkConfig::high(),
            combining: false,
        },
        Variant {
            name: "low",
            net: NetworkConfig::low(),
            combining: false,
        },
        Variant {
            name: "low-comb",
            net: NetworkConfig::low(),
            combining: true,
        },
    ];
    run_series(
        &mut bench,
        &machine,
        "narrow",
        &narrow,
        &ones,
        &hist_variants,
        nodes_list,
        step_threads,
    );
    run_series(
        &mut bench,
        &machine,
        "wide",
        &wide,
        &ones,
        &hist_variants,
        nodes_list,
        step_threads,
    );

    // MD trace: first 590K references (paper) of the water kernel.
    let sys = if quick {
        WaterSystem::generate(150, 13)
    } else {
        WaterSystem::paper_scale(13)
    };
    let mut mole_trace = sys.scatter_trace();
    let mut mole_vals = sys.contributions();
    let cap = if quick { 40_000 } else { 590_000 };
    mole_trace.truncate(cap);
    mole_vals.truncate(cap);

    // SPAS trace: the full EBE reference set.
    let mesh = if quick {
        Mesh::generate(200, 20, 1040, 14)
    } else {
        Mesh::paper_scale(14)
    };
    let ebe = Ebe::new(&mesh);
    let spas_trace = ebe.scatter_trace();
    let spas_vals = ebe.contributions(&mesh.test_vector(15));

    let comb_variants = [
        Variant {
            name: "low-comb",
            net: NetworkConfig::low(),
            combining: true,
        },
        Variant {
            name: "high-comb",
            net: NetworkConfig::high(),
            combining: true,
        },
    ];
    run_series(
        &mut bench,
        &machine,
        "mole",
        &mole_trace,
        &mole_vals,
        &comb_variants,
        nodes_list,
        step_threads,
    );
    run_series(
        &mut bench,
        &machine,
        "spas",
        &spas_trace,
        &spas_vals,
        &comb_variants,
        nodes_list,
        step_threads,
    );

    println!(
        "\npaper: wide-high scales ~linearly; narrow-low flat; narrow-low-comb ~5.7x \
         at 8 nodes; narrow-high ~7.1x; mole/spas between"
    );
    bench.finish();
}
