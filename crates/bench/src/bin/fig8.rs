//! Figure 8: histogram with privatization for inputs of constant lengths
//! and varying index ranges — hardware scatter-add vs privatization.
//!
//! Expected shape (paper): privatization's runtime grows with the number of
//! bins (O(m·n)); the hardware advantage exceeds an order of magnitude at
//! large ranges.

use sa_apps::histogram::{run_hw, run_privatization_default, HistogramInput};
use sa_bench::sweep::CachedPoint;
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, quick_mode, sweep, us};
use sa_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("fig8", &cfg);
    let lengths: &[usize] = if quick_mode() {
        &[1024]
    } else {
        &[1024, 32_768]
    };
    let ranges: &[u64] = if quick_mode() {
        &[128, 2048]
    } else {
        &[128, 512, 2048, 8192]
    };
    header(
        "Figure 8",
        "Histogram execution time: privatization vs hardware scatter-add",
    );
    let points: Vec<(usize, u64)> = lengths
        .iter()
        .flat_map(|&n| ranges.iter().map(move |&range| (n, range)))
        .collect();
    let runs = sweep::map_cached(
        bench.cache(),
        points.clone(),
        |&(n, range)| {
            bench
                .point_key(&format!("fig8 n={n} bins={range}"))
                .u64("n", n as u64)
                .u64("range", range)
                .u64("seed", 0xF16_0008 + n as u64 + range)
        },
        |(n, range)| {
            let input = HistogramInput::uniform(n, range, 0xF16_0008 + n as u64 + range);
            let hw = run_hw(&cfg, &input);
            let pv = run_privatization_default(&cfg, &input);
            assert_eq!(hw.bins, input.reference(), "hw result check");
            assert_eq!(pv.bins, input.reference(), "privatization result check");
            let mut point = CachedPoint::new();
            hw.report.stats.record(&mut point.scope("hw"));
            pv.report.stats.record(&mut point.scope("privatization"));
            point.num("hw_us", hw.micros());
            point.num("pv_us", pv.micros());
            point
        },
    );
    for (&(n, range), point) in points.iter().zip(&runs) {
        bench.absorb_metrics(&point.metrics);
        let (hw_us, pv_us) = (point.get_num("hw_us"), point.get_num("pv_us"));
        bench.row(
            format!("n={n} bins={range}"),
            &[
                ("scatter-add", us(hw_us)),
                ("privatization", us(pv_us)),
                ("speedup", format!("{:.1}x", pv_us / hw_us)),
            ],
        );
    }
    println!(
        "\npaper: privatization cost grows with the range; >10x hardware advantage at 8K bins"
    );
    bench.finish();
}
