//! Figure 8: histogram with privatization for inputs of constant lengths
//! and varying index ranges — hardware scatter-add vs privatization.
//!
//! Expected shape (paper): privatization's runtime grows with the number of
//! bins (O(m·n)); the hardware advantage exceeds an order of magnitude at
//! large ranges.

use sa_apps::histogram::{run_hw, run_privatization_default, HistogramInput};
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, quick_mode, sweep, us};
use sa_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("fig8", &cfg);
    let lengths: &[usize] = if quick_mode() {
        &[1024]
    } else {
        &[1024, 32_768]
    };
    let ranges: &[u64] = if quick_mode() {
        &[128, 2048]
    } else {
        &[128, 512, 2048, 8192]
    };
    header(
        "Figure 8",
        "Histogram execution time: privatization vs hardware scatter-add",
    );
    let points: Vec<(usize, u64)> = lengths
        .iter()
        .flat_map(|&n| ranges.iter().map(move |&range| (n, range)))
        .collect();
    let runs = sweep::map(points, |(n, range)| {
        let input = HistogramInput::uniform(n, range, 0xF16_0008 + n as u64 + range);
        let hw = run_hw(&cfg, &input);
        let pv = run_privatization_default(&cfg, &input);
        assert_eq!(hw.bins, input.reference(), "hw result check");
        assert_eq!(pv.bins, input.reference(), "privatization result check");
        (n, range, hw, pv)
    });
    for (n, range, hw, pv) in runs {
        hw.report.stats.record(&mut bench.scope("hw"));
        pv.report.stats.record(&mut bench.scope("privatization"));
        bench.row(
            format!("n={n} bins={range}"),
            &[
                ("scatter-add", us(hw.micros())),
                ("privatization", us(pv.micros())),
                ("speedup", format!("{:.1}x", pv.micros() / hw.micros())),
            ],
        );
    }
    println!(
        "\npaper: privatization cost grows with the range; >10x hardware advantage at 8K bins"
    );
    bench.finish();
}
