//! Figure 6: histogram execution time for inputs of varying lengths and an
//! input range of 2,048 — hardware scatter-add vs sort + segmented scan.
//!
//! Expected shape (paper): both mechanisms scale O(n); hardware outperforms
//! software by 3:1 up to 11:1.

use sa_apps::histogram::{run_hw, run_sort_scan_default, HistogramInput};
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, quick_mode, sweep, us};
use sa_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("fig6", &cfg);
    let range = 2048;
    let sizes: &[usize] = if quick_mode() {
        &[256, 1024]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };
    header(
        "Figure 6",
        &format!("Histogram execution time, input range {range}; lower is better"),
    );
    // Simulate every input size concurrently; print and record in size
    // order, so the output is identical to a serial run.
    let runs = sweep::map(sizes.to_vec(), |n| {
        let input = HistogramInput::uniform(n, range, 0xF16_0006 + n as u64);
        let hw = run_hw(&cfg, &input);
        let sw = run_sort_scan_default(&cfg, &input);
        assert_eq!(hw.bins, input.reference(), "hw result check");
        assert_eq!(sw.bins, input.reference(), "sw result check");
        (n, hw, sw)
    });
    for (n, hw, sw) in runs {
        hw.report.stats.record(&mut bench.scope("hw"));
        sw.report.stats.record(&mut bench.scope("sortscan"));
        bench.row(
            format!("n={n}"),
            &[
                ("scatter-add", us(hw.micros())),
                ("sort&scan", us(sw.micros())),
                ("speedup", format!("{:.2}x", sw.micros() / hw.micros())),
            ],
        );
    }
    println!("\npaper: O(n) scaling for both; hardware wins by 3x to 11x");
    bench.finish();
}
