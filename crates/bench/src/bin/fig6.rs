//! Figure 6: histogram execution time for inputs of varying lengths and an
//! input range of 2,048 — hardware scatter-add vs sort + segmented scan.
//!
//! Expected shape (paper): both mechanisms scale O(n); hardware outperforms
//! software by 3:1 up to 11:1.

use sa_apps::histogram::{run_hw, run_sort_scan_default, HistogramInput};
use sa_bench::sweep::CachedPoint;
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, quick_mode, sweep, us};
use sa_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("fig6", &cfg);
    let range = 2048;
    let sizes: &[usize] = if quick_mode() {
        &[256, 1024]
    } else {
        &[256, 512, 1024, 2048, 4096, 8192]
    };
    header(
        "Figure 6",
        &format!("Histogram execution time, input range {range}; lower is better"),
    );
    // Simulate every input size concurrently; print and record in size
    // order, so the output is identical to a serial run. With `--cache`,
    // already-seen points replay from the result store without simulating.
    let runs = sweep::map_cached(
        bench.cache(),
        sizes.to_vec(),
        |&n| {
            bench
                .point_key(&format!("fig6 n={n}"))
                .u64("n", n as u64)
                .u64("range", range)
                .u64("seed", 0xF16_0006 + n as u64)
        },
        |n| {
            let input = HistogramInput::uniform(n, range, 0xF16_0006 + n as u64);
            let hw = run_hw(&cfg, &input);
            let sw = run_sort_scan_default(&cfg, &input);
            assert_eq!(hw.bins, input.reference(), "hw result check");
            assert_eq!(sw.bins, input.reference(), "sw result check");
            let mut point = CachedPoint::new();
            hw.report.stats.record(&mut point.scope("hw"));
            sw.report.stats.record(&mut point.scope("sortscan"));
            point.num("hw_us", hw.micros());
            point.num("sw_us", sw.micros());
            point
        },
    );
    for (&n, point) in sizes.iter().zip(&runs) {
        bench.absorb_metrics(&point.metrics);
        let (hw_us, sw_us) = (point.get_num("hw_us"), point.get_num("sw_us"));
        bench.row(
            format!("n={n}"),
            &[
                ("scatter-add", us(hw_us)),
                ("sort&scan", us(sw_us)),
                ("speedup", format!("{:.2}x", sw_us / hw_us)),
            ],
        );
    }
    println!("\npaper: O(n) scaling for both; hardware wins by 3x to 11x");
    bench.finish();
}
