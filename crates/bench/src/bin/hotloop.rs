//! Hot-loop throughput: simulated cycles per wall-clock second with the
//! event-horizon scheduler (`--fast-forward`) on vs off.
//!
//! ```text
//! hotloop                                # print the table
//! hotloop --out BENCH_hotloop.json       # also record the measurement
//! hotloop --baseline BENCH_hotloop.json  # warn (never fail) on regression
//! hotloop --probe-out BENCH_probe.json        # record probe overhead
//! hotloop --probe-baseline BENCH_probe.json   # warn-only probe compare
//! hotloop --quick                        # smaller inputs, single repeat
//! hotloop --no-trajectory                # skip the trajectory ledger append
//! hotloop --trajectory PATH              # append the ledger elsewhere
//! ```
//!
//! Every run also appends one NDJSON entry per workload to the local
//! perf-trajectory ledger `bench/history/trajectory.ndjson`; inspect it
//! with `analyze trend`.
//!
//! Three workloads cover the simulator's distinct hot loops:
//!
//! * `histogram-fig6` — Figure 6's histogram on the executor path;
//! * `spmv-ebe` — the EBE sparse matrix-vector product;
//! * `rig-stall` — the sensitivity rig at 400-cycle memory latency and a
//!   1-in-8-cycle memory interval: a memory-stall-dominated shape where
//!   almost every cycle is provably idle, so fast-forward must win big
//!   (the acceptance floor is 2x).
//!
//! Both modes must report identical simulated cycle counts — the binary
//! asserts it — so the comparison isolates pure wall-clock cost. Baseline
//! comparison is warn-only: wall-clock numbers depend on the host, so CI
//! publishes them as a tracked metric rather than a hard gate.
//!
//! A second table measures intra-node bank-lane stepping
//! (`docs/PARALLELISM.md`): the two compute-bound workloads at
//! `--node-threads 4` vs 1, with identical simulated cycles asserted. The
//! speedup is tracked warn-only and never gated: it scales with host cores,
//! and on a single-core machine the barrier overhead makes it a *slowdown*
//! by design (the pool parks instead of spinning), so the entry records
//! `host_cores` alongside the ratio to keep the number interpretable.
//!
//! A third table measures the introspection layer (`docs/OBSERVABILITY.md`):
//! the same driver hot loop with probes off, snapshotting every 4096
//! cycles, streaming those snapshots to a sink, and host-profiling. The
//! disabled path must match the probe-off cycle count exactly (asserted),
//! and `--probe-baseline` warns when a variant's throughput halves.
//!
//! A fourth table measures the content-addressed result cache
//! (`docs/PERFORMANCE.md`): a Figure-6-shaped sweep with the cache off,
//! cold (every point simulated and stored), and warm (every point replayed
//! without simulating). Hit/miss/store counts are asserted exactly and the
//! three result sets must serialize byte-identically; wall-clock ratios
//! are tracked warn-only like every other host-dependent number here.

use std::time::Instant;

use sa_apps::histogram::{run_hw, HistogramInput};
use sa_apps::mesh::Mesh;
use sa_apps::spmv::run_ebe_hw;
use sa_bench::args::Args;
use sa_bench::sweep::{self, CachedPoint};
use sa_bench::{header, quick_mode, row};
use sa_core::{drive_scatter_probed, NodeMemSys, ScatterKernel, SensitivityRig};
use sa_memo::{Fingerprint, ResultCache};
use sa_sim::{MachineConfig, Rng64, SensitivityConfig};
use sa_telemetry::{HostProfiler, Introspect, Json, ProbeRecorder, Progress};

struct Workload {
    name: &'static str,
    run: Box<dyn Fn() -> u64>,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let cfg = MachineConfig::merrimac();
    let n = if quick { 1024 } else { 8192 };
    let hist = HistogramInput::uniform(n, 2048, 0xF16_0006 + n as u64);
    let mesh = if quick {
        Mesh::generate(60, 8, 220, 14)
    } else {
        Mesh::generate(200, 20, 1040, 14)
    };
    let x = mesh.test_vector(15);
    let rig_n = if quick { 4096 } else { 16_384 };
    let mut rng = Rng64::new(0x407_1007);
    let rig_idx: Vec<u64> = (0..rig_n).map(|_| rng.below(512)).collect();
    vec![
        Workload {
            name: "histogram-fig6",
            run: Box::new(move || run_hw(&cfg, &hist).report.cycles),
        },
        Workload {
            name: "spmv-ebe",
            run: Box::new(move || run_ebe_hw(&cfg, &mesh, &x).report.cycles),
        },
        Workload {
            name: "rig-stall",
            run: Box::new(move || {
                let rig = SensitivityRig::new(SensitivityConfig {
                    cs_entries: 4,
                    fu_latency: 4,
                    mem_latency: 400,
                    mem_interval: 8,
                });
                rig.run_histogram(&rig_idx, 512).cycles
            }),
        },
    ]
}

/// Best-of-`repeats` wall seconds and the (deterministic) simulated cycles.
fn measure(run: &dyn Fn() -> u64, repeats: usize) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..repeats {
        let t0 = Instant::now();
        cycles = run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (cycles, best)
}

/// Warn (never fail) when a run's `key` metric fell below half its
/// baseline value. Returns the number of warnings for the summary line.
fn compare_to_baseline(baseline: &Json, runs: &[Json], key: &str) -> usize {
    let Some(base_runs) = baseline.get("runs").and_then(Json::as_arr) else {
        eprintln!("warning: baseline has no \"runs\" array; skipping comparison");
        return 0;
    };
    let mut warnings = 0;
    for run in runs {
        let name = run.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(base) = base_runs
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
        else {
            eprintln!("note: {name}: no baseline entry");
            continue;
        };
        let get = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64);
        if let (Some(now), Some(then)) = (get(run, key), get(base, key)) {
            if now < then * 0.5 {
                eprintln!("warning: {name}: {now:.0} cycles/s vs baseline {then:.0} (>2x slower)");
                warnings += 1;
            }
        }
    }
    warnings
}

/// Measure the intra-node bank-lane pool on the compute-bound workloads:
/// `--node-threads 4` vs 1 with fast-forward off, so the comparison
/// isolates the worker pool itself (the rig workload is excluded — its
/// memory-stall shape measures the scheduler, not the lanes). Simulated
/// cycles must match exactly; wall-clock is tracked warn-only because the
/// ratio is a property of the host's core count.
fn measure_intra_node(quick: bool, repeats: usize) -> Vec<Json> {
    header(
        "Intra-node stepping",
        "bank-lane pool at --node-threads 4 vs 1; compute-bound workloads",
    );
    let threads = 4usize;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let prev_threads = sa_sim::node_threads_default();
    let mut out = Vec::new();
    for w in workloads(quick) {
        if w.name == "rig-stall" {
            continue;
        }
        sa_sim::set_fast_forward_default(false);
        sa_sim::set_node_threads_default(1);
        let (cycles_1, wall_1) = measure(&*w.run, repeats);
        sa_sim::set_node_threads_default(threads);
        let (cycles_n, wall_n) = measure(&*w.run, repeats);
        assert_eq!(
            cycles_n, cycles_1,
            "{}: node-threads changed simulated time",
            w.name
        );
        let speedup = wall_1 / wall_n;
        row(
            w.name,
            &[
                ("sim cycles", format!("{cycles_n}")),
                ("1 thread", format!("{:.2}ms", wall_1 * 1e3)),
                ("4 threads", format!("{:.2}ms", wall_n * 1e3)),
                ("speedup", format!("{speedup:.2}x")),
                ("host cores", format!("{cores}")),
            ],
        );
        let mut o = Json::obj();
        o.push("name", Json::Str(w.name.to_owned()));
        o.push("sim_cycles", Json::UInt(cycles_n));
        o.push("wall_ms_nt1", Json::Num(wall_1 * 1e3));
        o.push("wall_ms_nt4", Json::Num(wall_n * 1e3));
        o.push("intra_node_speedup", Json::Num(speedup));
        o.push("host_cores", Json::UInt(cores as u64));
        out.push(o);
    }
    sa_sim::set_node_threads_default(prev_threads.max(1));
    sa_sim::set_fast_forward_default(true);
    out
}

/// The introspection variants of the probe-overhead table. Each factory
/// builds a fresh [`Introspect`] so per-repeat state (snapshot cursors,
/// profiler tallies) never leaks between measurements. `interval` is the
/// snapshot cadence — the quick run is short, so it shrinks the interval to
/// keep the snapshot path exercised.
#[allow(clippy::type_complexity)]
fn probe_modes(interval: u64) -> Vec<(&'static str, Box<dyn Fn() -> Introspect>)> {
    vec![
        ("probe-off", Box::new(Introspect::off)),
        (
            "probe-snap",
            Box::new(move || {
                let mut p = Introspect::off();
                p.recorder = ProbeRecorder::every(interval);
                p
            }),
        ),
        (
            "probe-snap-stream",
            Box::new(move || {
                let sink = Progress::to_writer(Box::new(std::io::sink()));
                let mut p = Introspect::off();
                p.recorder = ProbeRecorder::every(interval).with_sink(sink.clone());
                p.progress = sink;
                p
            }),
        ),
        (
            "host-profile",
            Box::new(|| {
                let mut p = Introspect::off();
                p.profiler = HostProfiler::on();
                p
            }),
        ),
    ]
}

/// Measure the driver hot loop under each introspection variant. Probing
/// must never perturb simulated time, so every variant's cycle count is
/// asserted equal to the probe-off run.
fn measure_probe_overhead(quick: bool, repeats: usize) -> Vec<Json> {
    header(
        "Probe overhead",
        "uniform histogram via the single-node driver; introspection variants vs off",
    );
    let n = if quick { 4096 } else { 32_768 };
    let interval = if quick { 256 } else { 4096 };
    let mut rng = Rng64::new(0x9406_0001);
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(4096)).collect());
    let cfg = MachineConfig::merrimac();
    let mut out = Vec::new();
    let mut off = None;
    for (name, mk) in probe_modes(interval) {
        let mut best = f64::INFINITY;
        let mut cycles = 0;
        let mut snapshots = 0;
        for _ in 0..repeats {
            let node = NodeMemSys::new(cfg, 0, false);
            let mut probe = mk();
            let t0 = Instant::now();
            let run = drive_scatter_probed(node, &kernel, false, &mut probe);
            best = best.min(t0.elapsed().as_secs_f64());
            cycles = run.cycles;
            snapshots = probe.recorder.lines().len() as u64;
        }
        let (off_cycles, off_wall) = *off.get_or_insert((cycles, best));
        assert_eq!(cycles, off_cycles, "{name}: probing changed simulated time");
        let overhead = (best / off_wall - 1.0) * 100.0;
        let cps = cycles as f64 / best;
        row(
            name,
            &[
                ("sim cycles", format!("{cycles}")),
                ("snapshots", format!("{snapshots}")),
                ("wall", format!("{:.2}ms", best * 1e3)),
                ("overhead", format!("{overhead:+.1}%")),
                ("cycles/s", format!("{cps:.2e}")),
            ],
        );
        let mut o = Json::obj();
        o.push("name", Json::Str(name.to_owned()));
        o.push("sim_cycles", Json::UInt(cycles));
        o.push("snapshots", Json::UInt(snapshots));
        o.push("wall_ms", Json::Num(best * 1e3));
        o.push("overhead_pct_vs_off", Json::Num(overhead));
        o.push("cycles_per_sec", Json::Num(cps));
        out.push(o);
    }
    out
}

/// Measure the content-addressed result cache on a Figure-6-shaped sweep:
/// cache off, cold (simulate + store), warm (replay, zero simulation). The
/// warm pass's compute closure panics if invoked, so "zero simulation" is
/// asserted structurally, and the exact hit/miss/store counts and
/// byte-identical point payloads are asserted too. Only the wall-clock
/// ratio is host-dependent and therefore warn-only.
fn measure_cache(quick: bool) -> Vec<Json> {
    header(
        "Result cache",
        "fig6-shaped sweep: cache off vs cold (store) vs warm (replay)",
    );
    let cfg = MachineConfig::merrimac();
    let sizes: Vec<usize> = if quick {
        vec![256, 512]
    } else {
        vec![256, 512, 1024, 2048]
    };
    let range = 2048u64;
    let dir = std::env::temp_dir().join(format!("sa-hotloop-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key_of = |&n: &usize| {
        Fingerprint::new("hotloop-cache-bench")
            .u64("n", n as u64)
            .u64("range", range)
    };
    let run = |n: usize| {
        let input = HistogramInput::uniform(n, range, 0xF16_0006 + n as u64);
        let hw = run_hw(&cfg, &input);
        let mut point = CachedPoint::new();
        hw.report.stats.record(&mut point.scope("hw"));
        point.num("hw_us", hw.micros());
        point
    };
    let t0 = Instant::now();
    let off = sweep::map_cached(None, sizes.clone(), key_of, run);
    let wall_off = t0.elapsed().as_secs_f64();
    let cache = ResultCache::open(&dir).expect("hotloop cache dir");
    let t0 = Instant::now();
    let cold = sweep::map_cached(Some(&cache), sizes.clone(), key_of, run);
    let wall_cold = t0.elapsed().as_secs_f64();
    let n = sizes.len() as u64;
    assert_eq!(
        (cache.hits(), cache.misses(), cache.stores()),
        (0, n, n),
        "cold sweep: every point must miss and store"
    );
    let t0 = Instant::now();
    let warm = sweep::map_cached(Some(&cache), sizes.clone(), key_of, |_| {
        panic!("warm sweep must not simulate")
    });
    let wall_warm = t0.elapsed().as_secs_f64();
    assert_eq!(
        (cache.hits(), cache.misses(), cache.stores()),
        (n, n, n),
        "warm sweep: every point must hit"
    );
    for ((o, c), w) in off.iter().zip(&cold).zip(&warm) {
        let bytes = o.to_json().to_string_compact();
        assert_eq!(bytes, c.to_json().to_string_compact(), "cold != off");
        assert_eq!(bytes, w.to_json().to_string_compact(), "warm != off");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let speedup = wall_cold / wall_warm;
    if speedup < 1.0 {
        eprintln!(
            "warning: warm sweep slower than cold ({speedup:.2}x) — tiny workload or slow disk"
        );
    }
    row(
        "fig6-sweep",
        &[
            ("points", format!("{n}")),
            ("cache off", format!("{:.2}ms", wall_off * 1e3)),
            ("cold", format!("{:.2}ms", wall_cold * 1e3)),
            ("warm", format!("{:.2}ms", wall_warm * 1e3)),
            ("warm speedup", format!("{speedup:.1}x")),
        ],
    );
    let mut o = Json::obj();
    o.push("name", Json::Str("fig6-sweep".to_owned()));
    o.push("points", Json::UInt(n));
    o.push("wall_ms_cache_off", Json::Num(wall_off * 1e3));
    o.push("wall_ms_cold", Json::Num(wall_cold * 1e3));
    o.push("wall_ms_warm", Json::Num(wall_warm * 1e3));
    o.push("warm_speedup", Json::Num(speedup));
    vec![o]
}

/// Append one NDJSON entry per measured run to the perf-trajectory ledger
/// (`analyze trend` reads it back). Wall-clock data, machine-local by
/// design; any failure warns and never fails the bench. `--no-trajectory`
/// skips the append, `--trajectory <path>` redirects it (tests).
fn append_trajectory(args: &Args, quick: bool, tables: &[(&str, &[Json])]) {
    if args.has("no-trajectory") {
        return;
    }
    let path = args.raw("trajectory").unwrap_or(sa_bench::TRAJECTORY_PATH);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
            return;
        }
    }
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut lines = String::new();
    for (bench, runs) in tables {
        for run in *runs {
            let mut o = Json::obj();
            o.push("schema", Json::Str("sa-trajectory".to_owned()));
            o.push("version", Json::UInt(1));
            o.push("ts", Json::UInt(ts));
            o.push("bench", Json::Str((*bench).to_owned()));
            o.push("quick", Json::Bool(quick));
            for (k, v) in run.as_obj().unwrap_or(&[]) {
                o.push(k, v.clone());
            }
            lines.push_str(&o.to_string_compact());
            lines.push('\n');
        }
    }
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(lines.as_bytes()));
    match appended {
        Ok(()) => eprintln!(
            "appended {} trajectory entries to {path}",
            tables.iter().map(|(_, r)| r.len()).sum::<usize>()
        ),
        Err(e) => eprintln!("warning: could not append to {path}: {e}"),
    }
}

fn main() {
    let args = Args::from_env();
    let quick = quick_mode();
    let repeats = if quick { 1 } else { 3 };
    header(
        "Hot loop",
        "Simulated cycles per wall second; fast-forward on vs off",
    );
    let mut runs = Vec::new();
    for w in workloads(quick) {
        sa_sim::set_fast_forward_default(false);
        let (cycles_off, wall_off) = measure(&*w.run, repeats);
        sa_sim::set_fast_forward_default(true);
        let (cycles_on, wall_on) = measure(&*w.run, repeats);
        assert_eq!(
            cycles_on, cycles_off,
            "{}: fast-forward changed simulated time",
            w.name
        );
        let speedup = wall_off / wall_on;
        let cps = cycles_on as f64 / wall_on;
        row(
            w.name,
            &[
                ("sim cycles", format!("{cycles_on}")),
                ("ff off", format!("{:.2}ms", wall_off * 1e3)),
                ("ff on", format!("{:.2}ms", wall_on * 1e3)),
                ("speedup", format!("{speedup:.2}x")),
                ("cycles/s", format!("{cps:.2e}")),
            ],
        );
        let mut o = Json::obj();
        o.push("name", Json::Str(w.name.to_owned()));
        o.push("sim_cycles", Json::UInt(cycles_on));
        o.push("wall_ms_ff_off", Json::Num(wall_off * 1e3));
        o.push("wall_ms_ff_on", Json::Num(wall_on * 1e3));
        o.push("speedup", Json::Num(speedup));
        o.push("cycles_per_sec_ff_on", Json::Num(cps));
        runs.push(o);
    }
    if let Some(path) = args.raw("baseline") {
        match std::fs::read_to_string(path) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => {
                    let warnings = compare_to_baseline(&doc, &runs, "cycles_per_sec_ff_on");
                    if warnings == 0 {
                        println!("\nbaseline {path}: within warn threshold");
                    }
                }
                Err(e) => eprintln!("warning: could not parse baseline {path}: {e}"),
            },
            Err(e) => eprintln!("warning: could not read baseline {path}: {e}"),
        }
    }
    println!();
    let intra_runs = measure_intra_node(quick, repeats);
    println!();
    let cache_runs = measure_cache(quick);
    if let Some(path) = args.raw("out") {
        let mut doc = Json::obj();
        doc.push("bench", Json::Str("hotloop".to_owned()));
        doc.push("quick", Json::Bool(quick));
        doc.push("repeats", Json::UInt(repeats as u64));
        doc.push("runs", Json::Arr(runs.clone()));
        doc.push("intra_node", Json::Arr(intra_runs.clone()));
        doc.push("cache", Json::Arr(cache_runs.clone()));
        if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote hot-loop measurement to {path}");
    }

    println!();
    let probe_runs = measure_probe_overhead(quick, repeats);
    if let Some(path) = args.raw("probe-baseline") {
        match std::fs::read_to_string(path) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => {
                    let warnings = compare_to_baseline(&doc, &probe_runs, "cycles_per_sec");
                    if warnings == 0 {
                        println!("\nprobe baseline {path}: within warn threshold");
                    }
                }
                Err(e) => eprintln!("warning: could not parse probe baseline {path}: {e}"),
            },
            Err(e) => eprintln!("warning: could not read probe baseline {path}: {e}"),
        }
    }
    if let Some(path) = args.raw("probe-out") {
        let mut doc = Json::obj();
        doc.push("bench", Json::Str("probe-overhead".to_owned()));
        doc.push("quick", Json::Bool(quick));
        doc.push("repeats", Json::UInt(repeats as u64));
        doc.push("runs", Json::Arr(probe_runs.clone()));
        if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote probe-overhead measurement to {path}");
    }
    append_trajectory(
        &args,
        quick,
        &[
            ("hotloop", &runs),
            ("intra-node", &intra_runs),
            ("cache", &cache_runs),
            ("probe-overhead", &probe_runs),
        ],
    );
}
