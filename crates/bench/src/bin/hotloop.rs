//! Hot-loop throughput: simulated cycles per wall-clock second with the
//! event-horizon scheduler (`--fast-forward`) on vs off.
//!
//! ```text
//! hotloop                                # print the table
//! hotloop --out BENCH_hotloop.json       # also record the measurement
//! hotloop --baseline BENCH_hotloop.json  # warn (never fail) on regression
//! hotloop --quick                        # smaller inputs, single repeat
//! ```
//!
//! Three workloads cover the simulator's distinct hot loops:
//!
//! * `histogram-fig6` — Figure 6's histogram on the executor path;
//! * `spmv-ebe` — the EBE sparse matrix-vector product;
//! * `rig-stall` — the sensitivity rig at 400-cycle memory latency and a
//!   1-in-8-cycle memory interval: a memory-stall-dominated shape where
//!   almost every cycle is provably idle, so fast-forward must win big
//!   (the acceptance floor is 2x).
//!
//! Both modes must report identical simulated cycle counts — the binary
//! asserts it — so the comparison isolates pure wall-clock cost. Baseline
//! comparison is warn-only: wall-clock numbers depend on the host, so CI
//! publishes them as a tracked metric rather than a hard gate.

use std::time::Instant;

use sa_apps::histogram::{run_hw, HistogramInput};
use sa_apps::mesh::Mesh;
use sa_apps::spmv::run_ebe_hw;
use sa_bench::args::Args;
use sa_bench::{header, quick_mode, row};
use sa_core::SensitivityRig;
use sa_sim::{MachineConfig, Rng64, SensitivityConfig};
use sa_telemetry::Json;

struct Workload {
    name: &'static str,
    run: Box<dyn Fn() -> u64>,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let cfg = MachineConfig::merrimac();
    let n = if quick { 1024 } else { 8192 };
    let hist = HistogramInput::uniform(n, 2048, 0xF16_0006 + n as u64);
    let mesh = if quick {
        Mesh::generate(60, 8, 220, 14)
    } else {
        Mesh::generate(200, 20, 1040, 14)
    };
    let x = mesh.test_vector(15);
    let rig_n = if quick { 4096 } else { 16_384 };
    let mut rng = Rng64::new(0x407_1007);
    let rig_idx: Vec<u64> = (0..rig_n).map(|_| rng.below(512)).collect();
    vec![
        Workload {
            name: "histogram-fig6",
            run: Box::new(move || run_hw(&cfg, &hist).report.cycles),
        },
        Workload {
            name: "spmv-ebe",
            run: Box::new(move || run_ebe_hw(&cfg, &mesh, &x).report.cycles),
        },
        Workload {
            name: "rig-stall",
            run: Box::new(move || {
                let rig = SensitivityRig::new(SensitivityConfig {
                    cs_entries: 4,
                    fu_latency: 4,
                    mem_latency: 400,
                    mem_interval: 8,
                });
                rig.run_histogram(&rig_idx, 512).cycles
            }),
        },
    ]
}

/// Best-of-`repeats` wall seconds and the (deterministic) simulated cycles.
fn measure(run: &dyn Fn() -> u64, repeats: usize) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..repeats {
        let t0 = Instant::now();
        cycles = run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (cycles, best)
}

/// Warn (never fail) when a run's `cycles_per_sec_ff_on` fell below half
/// its baseline value. Returns the number of warnings for the summary line.
fn compare_to_baseline(baseline: &Json, runs: &[Json]) -> usize {
    let Some(base_runs) = baseline.get("runs").and_then(Json::as_arr) else {
        eprintln!("warning: baseline has no \"runs\" array; skipping comparison");
        return 0;
    };
    let mut warnings = 0;
    for run in runs {
        let name = run.get("name").and_then(Json::as_str).unwrap_or("?");
        let Some(base) = base_runs
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
        else {
            eprintln!("note: {name}: no baseline entry");
            continue;
        };
        let get = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_f64);
        if let (Some(now), Some(then)) = (
            get(run, "cycles_per_sec_ff_on"),
            get(base, "cycles_per_sec_ff_on"),
        ) {
            if now < then * 0.5 {
                eprintln!("warning: {name}: {now:.0} cycles/s vs baseline {then:.0} (>2x slower)");
                warnings += 1;
            }
        }
    }
    warnings
}

fn main() {
    let args = Args::from_env();
    let quick = quick_mode();
    let repeats = if quick { 1 } else { 3 };
    header(
        "Hot loop",
        "Simulated cycles per wall second; fast-forward on vs off",
    );
    let mut runs = Vec::new();
    for w in workloads(quick) {
        sa_sim::set_fast_forward_default(false);
        let (cycles_off, wall_off) = measure(&*w.run, repeats);
        sa_sim::set_fast_forward_default(true);
        let (cycles_on, wall_on) = measure(&*w.run, repeats);
        assert_eq!(
            cycles_on, cycles_off,
            "{}: fast-forward changed simulated time",
            w.name
        );
        let speedup = wall_off / wall_on;
        let cps = cycles_on as f64 / wall_on;
        row(
            w.name,
            &[
                ("sim cycles", format!("{cycles_on}")),
                ("ff off", format!("{:.2}ms", wall_off * 1e3)),
                ("ff on", format!("{:.2}ms", wall_on * 1e3)),
                ("speedup", format!("{speedup:.2}x")),
                ("cycles/s", format!("{cps:.2e}")),
            ],
        );
        let mut o = Json::obj();
        o.push("name", Json::Str(w.name.to_owned()));
        o.push("sim_cycles", Json::UInt(cycles_on));
        o.push("wall_ms_ff_off", Json::Num(wall_off * 1e3));
        o.push("wall_ms_ff_on", Json::Num(wall_on * 1e3));
        o.push("speedup", Json::Num(speedup));
        o.push("cycles_per_sec_ff_on", Json::Num(cps));
        runs.push(o);
    }
    if let Some(path) = args.raw("baseline") {
        match std::fs::read_to_string(path) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => {
                    let warnings = compare_to_baseline(&doc, &runs);
                    if warnings == 0 {
                        println!("\nbaseline {path}: within warn threshold");
                    }
                }
                Err(e) => eprintln!("warning: could not parse baseline {path}: {e}"),
            },
            Err(e) => eprintln!("warning: could not read baseline {path}: {e}"),
        }
    }
    if let Some(path) = args.raw("out") {
        let mut doc = Json::obj();
        doc.push("bench", Json::Str("hotloop".to_owned()));
        doc.push("quick", Json::Bool(quick));
        doc.push("repeats", Json::UInt(repeats as u64));
        doc.push("runs", Json::Arr(runs));
        if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote hot-loop measurement to {path}");
    }
}
