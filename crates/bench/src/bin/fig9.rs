//! Figure 9: sparse matrix–vector multiplication — CSR vs EBE with software
//! scatter-add vs EBE with hardware scatter-add; execution cycles, FP
//! operations, and memory references.
//!
//! Expected shape (paper, ×1M): CSR 0.334 / 1.217 / 1.836;
//! EBE-SW 0.739 / 1.735 / 1.031; EBE-HW 0.230 / 1.536 / 0.922.
//! Without hardware scatter-add CSR beats EBE by ~2.2×; with it, EBE gives a
//! ~45% speedup over CSR.

use sa_apps::mesh::Mesh;
use sa_apps::spmv::{run_csr, run_ebe_hw, run_ebe_sw_default, Csr};
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, mcycles, mops, quick_mode, sweep};
use sa_core::StallBreakdown;
use sa_sim::MachineConfig;

fn main() {
    let mut cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("fig9", &cfg);
    // Kernel runs below build their own nodes from `cfg`; carry the
    // request-lifecycle sampling interval so their reports include
    // per-stage latency when stats output is on.
    cfg.req_sample = bench.req_sample();
    let mesh = if quick_mode() {
        Mesh::generate(200, 20, 1040, 9)
    } else {
        Mesh::paper_scale(9)
    };
    let x = mesh.test_vector(10);
    let csr = Csr::from_mesh(&mesh);
    header(
        "Figure 9",
        &format!(
            "SpMV on a {} x {} matrix ({} elements, {:.2} nnz/row)",
            csr.n,
            csr.n,
            mesh.elements(),
            csr.avg_row_nnz()
        ),
    );

    // The three methods are independent simulations; run them concurrently
    // and keep reporting order fixed (CSR, EBE-SW, EBE-HW) so the stats
    // document stays byte-identical to a serial run.
    let mut runs = sweep::map(vec![0usize, 1, 2], |which| match which {
        0 => run_csr(&cfg, &csr, &x),
        1 => run_ebe_sw_default(&cfg, &mesh, &x),
        _ => run_ebe_hw(&cfg, &mesh, &x),
    });
    let r_hw = runs.pop().expect("three runs");
    let r_sw = runs.pop().expect("three runs");
    let r_csr = runs.pop().expect("three runs");

    // Cross-check the three methods functionally.
    let y_ref = csr.multiply(&x);
    for (name, y) in [("CSR", &r_csr.y), ("EBE-SW", &r_sw.y), ("EBE-HW", &r_hw.y)] {
        for (i, (a, b)) in y.iter().zip(&y_ref).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                "{name} y[{i}] mismatch: {a} vs {b}"
            );
        }
    }

    for (name, scope, r) in [
        ("CSR", "csr", &r_csr),
        ("EBE SW scatter-add", "ebe_sw", &r_sw),
        ("EBE HW scatter-add", "ebe_hw", &r_hw),
    ] {
        {
            let mut s = bench.scope(scope);
            s.counter("cycles", r.report.cycles);
            s.counter("flops", r.report.flops());
            s.counter("mem_refs", r.report.mem_refs());
            r.report.stats.record(&mut s);
        }
        bench.record_latency(scope, &r.report.req_trace);
        bench.record_attribution(
            scope,
            &StallBreakdown::from_stats(&r.report.stats, r.report.cycles),
        );
        bench.row(
            name,
            &[
                ("cycles", mcycles(r.report.cycles)),
                ("fp-ops", mops(r.report.flops())),
                ("mem-refs", mops(r.report.mem_refs())),
            ],
        );
    }
    println!(
        "\nCSR vs EBE-SW: {:.2}x (paper 2.2x);  EBE-HW speedup over CSR: {:.2}x (paper 1.45x)",
        r_sw.report.cycles as f64 / r_csr.report.cycles as f64,
        r_csr.report.cycles as f64 / r_hw.report.cycles as f64,
    );
    bench.finish();
}
