//! Evaluation of the extensions beyond the paper's measured system:
//! the §3.3 scatter-op generalizations and fetch-and-add, and the §5
//! future-work items (hardware scans, synchronization primitives,
//! hierarchical multi-node combining).

use sa_apps::image::{run_equalize_hw, run_equalize_sw, GreyImage};
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, quick_mode, sweep, us};
use sa_core::{allocate_slots, drive_scan, simulate_barrier, NodeMemSys};
use sa_multinode::{MultiNode, Topology};
use sa_proc::{AccessPattern, Executor, StreamOp, StreamProgram};
use sa_sim::{Addr, MachineConfig, NetworkConfig, Rng64, ScalarKind};

fn ext_scan(bench: &mut BenchRun, cfg: &MachineConfig, quick: bool) {
    header(
        "Extension: hardware scans (§5)",
        "Inclusive prefix sum: memory-side scan engine vs software scan kernel",
    );
    let sizes: &[usize] = if quick {
        &[1024]
    } else {
        &[1024, 8192, 65_536]
    };
    let runs = sweep::map(sizes.to_vec(), |n| {
        let mut rng = Rng64::new(n as u64);
        let input: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        let hw = drive_scan(cfg, &input, ScalarKind::I64);

        // Software scan: gather, log2(n) Hillis–Steele sweeps, store.
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0u64;
        for &x in &input {
            acc += x;
            cdf.push(acc);
        }
        let mut prog = StreamProgram::new();
        let g = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: n as u64,
            }),
            &[],
        );
        let passes = (n as u64).ilog2() as u64;
        let k = prog.add(
            StreamOp::kernel("sw-scan", n as u64, passes, 2 * passes, 2 * passes),
            &[g],
        );
        prog.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: 0,
                    n: n as u64,
                },
                cdf,
            ),
            &[k],
        );
        let mut node = NodeMemSys::new(*cfg, 0, false);
        let in_i64: Vec<i64> = input.iter().map(|&b| b as i64).collect();
        node.store_mut().load_i64(Addr(0), &in_i64);
        let sw = Executor::new(*cfg).run(&prog, &mut node);
        (n, hw, sw)
    });
    for (n, hw, sw) in runs {
        sw.stats.record(&mut bench.scope("scan.sw"));
        bench.scope("scan").counter("hw_cycles", hw.cycles);

        bench.row(
            format!("n={n}"),
            &[
                ("hw-scan", us(hw.micros())),
                ("sw-scan", us(sw.micros())),
                (
                    "speedup",
                    format!("{:.2}x", sw.cycles as f64 / hw.cycles as f64),
                ),
            ],
        );
    }
}

fn ext_sync(bench: &mut BenchRun, cfg: &MachineConfig, quick: bool) {
    header(
        "Extension: synchronization primitives (§5)",
        "Barrier arrival and parallel queue allocation via data-parallel fetch-and-add",
    );
    let sizes: &[usize] = if quick { &[64] } else { &[16, 64, 256, 1024] };
    for &p in sizes {
        let b = simulate_barrier(cfg, 0, p);
        let q = allocate_slots(cfg, 0, p);
        let mut s = bench.scope("sync");
        s.counter("barrier_cycles", b.cycles);
        s.counter("queue_alloc_cycles", q.cycles);
        bench.row(
            format!("participants={p}"),
            &[
                ("barrier", us(b.cycles as f64 / 1e3)),
                ("queue-alloc", us(q.cycles as f64 / 1e3)),
            ],
        );
    }
}

fn ext_hierarchical(bench: &mut BenchRun, machine: &MachineConfig, quick: bool) {
    header(
        "Extension: hierarchical combining (§5)",
        "Flat vs hypercube sum-back routing, narrow histogram, low-bandwidth net",
    );
    let n_refs = if quick { 8192 } else { 32_768 };
    let mut rng = Rng64::new(5);
    let trace: Vec<u64> = (0..n_refs).map(|_| rng.below(64)).collect();
    let values = vec![1.0; trace.len()];
    let nodes_list: &[usize] = if quick { &[4] } else { &[2, 4, 8] };
    let runs = sweep::map(nodes_list.to_vec(), |n| {
        let mut flat =
            MultiNode::with_topology(*machine, n, NetworkConfig::low(), true, Topology::Flat);
        let rf = flat.run_trace(&trace, &values);
        let mut hyper =
            MultiNode::with_topology(*machine, n, NetworkConfig::low(), true, Topology::Hypercube);
        let rh = hyper.run_trace(&trace, &values);
        (n, rf, rh)
    });
    for (n, rf, rh) in runs {
        rf.record_metrics(&mut bench.scope(&format!("hierarchical.flat.n{n}")));
        rh.record_metrics(&mut bench.scope(&format!("hierarchical.hypercube.n{n}")));
        bench.row(
            format!("nodes={n}"),
            &[
                (
                    "flat",
                    format!("{:.1}GB/s", rf.throughput_gbps(machine.ghz)),
                ),
                (
                    "hypercube",
                    format!("{:.1}GB/s", rh.throughput_gbps(machine.ghz)),
                ),
                ("flat-rounds", format!("{}", rf.flush_rounds)),
                ("hyper-rounds", format!("{}", rh.flush_rounds)),
            ],
        );
    }
}

fn ext_equalize(bench: &mut BenchRun, cfg: &MachineConfig, quick: bool) {
    header(
        "Extension: histogram equalization (§1 motivation)",
        "Full image pipeline: scatter-add histogram + scan CDF + gather remap",
    );
    let side = if quick { 64 } else { 128 };
    let img = GreyImage::synthetic(side, side, 7);
    let hw = run_equalize_hw(cfg, &img);
    let sw = run_equalize_sw(cfg, &img);
    assert_eq!(hw.output, sw.output, "pipelines agree");
    for (name, r) in [("hardware", &hw), ("software", &sw)] {
        let mut s = bench.scope(&format!("equalize.{name}"));
        s.counter("histogram_cycles", r.histogram_cycles);
        s.counter("scan_cycles", r.scan_cycles);
        s.counter("remap_cycles", r.remap_cycles);
        bench.row(
            name,
            &[
                ("total", us(r.micros())),
                ("histogram", us(r.histogram_cycles as f64 / 1e3)),
                ("cdf-scan", us(r.scan_cycles as f64 / 1e3)),
                ("remap", us(r.remap_cycles as f64 / 1e3)),
            ],
        );
    }
    let (lo, hi) = img.dynamic_range();
    println!(
        "\n{side}x{side} image: input range [{lo}, {hi}] stretched to [{}, {}]",
        hw.output.iter().min().unwrap(),
        hw.output.iter().max().unwrap()
    );
}

fn main() {
    let cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("extensions", &cfg);
    let quick = quick_mode();
    ext_scan(&mut bench, &cfg, quick);
    ext_sync(&mut bench, &cfg, quick);
    ext_hierarchical(&mut bench, &cfg, quick);
    ext_equalize(&mut bench, &cfg, quick);
    bench.finish();
}
