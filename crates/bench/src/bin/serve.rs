//! `sa-serve` daemon entry point: a multi-tenant simulation service over
//! the `SessionSpec` job API (see `docs/SERVING.md`).
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!       [--tenant-jobs N] [--tenant-inflight N] [--cache[=DIR]]
//! ```
//!
//! Submit jobs with `analyze submit JOB.json --addr HOST:PORT`, inspect
//! counters with `analyze serve stats`, stop with `analyze serve shutdown`.
//! With `--cache` the daemon memoizes results through the same
//! content-addressed store the figure binaries use, so a warm repeat of a
//! job answers byte-identically without simulating.

use std::sync::Arc;

use sa_bench::cli::Cli;
use sa_bench::usage_error;
use sa_serve::{ServeConfig, Server};
use scatter_add_repro::ResultCache;

const USAGE: &str = "\
usage: serve [flags]

  --addr HOST:PORT     listen address (default 127.0.0.1:7411)
  --workers N          job worker threads (default 2)
  --queue-depth N      queued connections beyond the workers before new
                       submissions are answered 429 busy (default 16)
  --tenant-jobs N      lifetime job quota per tenant, 0 = unlimited
  --tenant-inflight N  concurrent job quota per tenant, 0 = unlimited
  --cache[=DIR]        memoize results (SA_CACHE_DIR / .sa-cache default)

run-control flags (--node-threads, --fast-forward, --faults, ...) install
process-wide defaults exactly as they do for the figure binaries; a job
spec's exec section still overrides them per job.
";

fn main() {
    let cli = Cli::from_env();
    let args = cli.args();
    let addr = args.raw("addr").unwrap_or("127.0.0.1:7411").to_string();
    let mut cfg = ServeConfig::default();
    match args.get_or("workers", cfg.workers) {
        Ok(n) if n > 0 => cfg.workers = n,
        Ok(_) => usage_error("--workers must be positive", USAGE),
        Err(e) => usage_error(&e.to_string(), USAGE),
    }
    cfg.queue_depth = match args.get_or("queue-depth", cfg.queue_depth) {
        Ok(n) => n,
        Err(e) => usage_error(&e.to_string(), USAGE),
    };
    cfg.tenant_jobs = match args.get_or("tenant-jobs", 0u64) {
        Ok(n) => n,
        Err(e) => usage_error(&e.to_string(), USAGE),
    };
    cfg.tenant_inflight = match args.get_or("tenant-inflight", 0u64) {
        Ok(n) => n,
        Err(e) => usage_error(&e.to_string(), USAGE),
    };
    if let Some(dir) = cli.cache_dir() {
        match ResultCache::open(dir) {
            Ok(cache) => cfg.cache = Some(Arc::new(cache)),
            Err(e) => {
                eprintln!("error: --cache {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    let cache_note = match cli.cache_dir() {
        Some(dir) => format!("cache {dir}"),
        None => "no cache".to_string(),
    };
    let server = match Server::bind(&addr, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "sa-serve listening on {} ({cache_note})",
        server.local_addr()
    );
    // The line above is how scripts learn the bound port; make sure it
    // leaves the process even when stdout is a pipe.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    println!("sa-serve stopped");
}
