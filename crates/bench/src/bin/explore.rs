//! `explore` — run any experiment of the reproduction from the command
//! line, with every machine knob exposed.
//!
//! ```text
//! explore histogram --n 32768 --range 2048 --impl hw --skew 0.0
//! explore histogram --impl sortscan --batch 256
//! explore scatter   --n 8192 --range 64 --cs 16 --fu 2 --banks 4
//! explore scan      --n 65536
//! explore multinode --nodes 8 --net low --combining --topology hypercube \
//!                   --step-threads 4
//! explore rig       --cs 8 --latency 64 --interval 2
//! ```
//!
//! Machine flags (all subcommands): `--banks`, `--cs`, `--fu`, `--ag-width`,
//! `--line-bytes`, `--cache-kb`. Workload flags: `--n`, `--range`,
//! `--seed`, `--skew` (Zipf exponent; 0 = uniform).

use sa_apps::histogram::{run_hw, run_privatization_default, run_sort_scan, HistogramInput};
use sa_bench::args::Args;
use sa_bench::cli::Cli;
use sa_bench::telemetry::BenchRun;
use sa_core::{drive_scan, drive_scatter, ScatterKernel, SensitivityRig};
use sa_multinode::{MultiNode, Topology};
use sa_sim::{MachineConfig, NetworkConfig, Rng64, ScalarKind, SensitivityConfig};

fn machine_from(args: &Args) -> Result<MachineConfig, Box<dyn std::error::Error>> {
    let mut cfg = MachineConfig::merrimac();
    cfg.cache.banks = args.get_or("banks", cfg.cache.banks)?;
    cfg.sa.cs_entries = args.get_or("cs", cfg.sa.cs_entries)?;
    cfg.sa.fu_latency = args.get_or("fu", cfg.sa.fu_latency)?;
    cfg.ag.width = args.get_or("ag-width", cfg.ag.width)?;
    cfg.cache.line_bytes = args.get_or("line-bytes", cfg.cache.line_bytes)?;
    let cache_kb: u64 = args.get_or("cache-kb", cfg.cache.total_bytes >> 10)?;
    cfg.cache.total_bytes = cache_kb << 10;
    Ok(cfg)
}

fn input_from(args: &Args) -> Result<HistogramInput, Box<dyn std::error::Error>> {
    let n: usize = args.get_or("n", 8192)?;
    let range: u64 = args.get_or("range", 1024)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let skew: f64 = args.get_or("skew", 0.0)?;
    Ok(if skew > 0.0 {
        HistogramInput::zipf(n, range, skew, seed)
    } else {
        HistogramInput::uniform(n, range, seed)
    })
}

fn cmd_histogram(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = machine_from(args)?;
    let mut bench = BenchRun::from_args("explore", &cfg, args);
    let input = input_from(args)?;
    let implementation = args.choice("impl", &["hw", "sortscan", "privatization"], "hw")?;
    let run = match implementation {
        "hw" => run_hw(&cfg, &input),
        "sortscan" => {
            let batch: usize = args.get_or("batch", 256)?;
            run_sort_scan(&cfg, &input, batch)
        }
        _ => run_privatization_default(&cfg, &input),
    };
    assert_eq!(run.bins, input.reference(), "result check");
    println!(
        "histogram impl={implementation} n={} range={}: {:.2} us ({} cycles), \
         {} fp-ops, {} mem-refs",
        input.len(),
        input.range,
        run.micros(),
        run.report.cycles,
        run.report.flops(),
        run.report.mem_refs()
    );
    run.report.stats.record(&mut bench.scope("histogram"));
    bench.finish();
    Ok(())
}

fn cmd_scatter(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = machine_from(args)?;
    let mut bench = BenchRun::from_args("explore", &cfg, args);
    let input = input_from(args)?;
    let kernel = ScatterKernel::histogram(0, input.data.clone());
    let run = drive_scatter(&cfg, &kernel, args.has("fetch"));
    run.node.record_metrics(&mut bench.scope("scatter"));
    println!(
        "scatter n={} range={}: {:.2} us; combined {}/{} requests, {} chained, \
         {} reads to memory, {} stall-cycles on a full store",
        input.len(),
        input.range,
        run.micros(),
        run.stats.sa.combined,
        run.stats.sa.accepted,
        run.stats.sa.chained,
        run.stats.sa.reads_issued,
        run.stats.sa.stalled_full,
    );
    run.print_stall_summary();
    bench.finish();
    Ok(())
}

fn cmd_scan(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = machine_from(args)?;
    let n: usize = args.get_or("n", 4096)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut rng = Rng64::new(seed);
    let input: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
    let r = drive_scan(&cfg, &input, ScalarKind::I64);
    println!(
        "scan n={n}: {:.2} us ({:.2} cycles/element)",
        r.micros(),
        r.cycles as f64 / n as f64
    );
    let mut bench = BenchRun::from_args("explore", &cfg, args);
    bench.scope("scan").counter("cycles", r.cycles);
    bench.finish();
    Ok(())
}

fn cmd_multinode(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = machine_from(args)?;
    let mut bench = BenchRun::from_args("explore", &cfg, args);
    let nodes: usize = args.get_or("nodes", 4)?;
    let net = match args.choice("net", &["low", "high"], "high")? {
        "low" => NetworkConfig::low(),
        _ => NetworkConfig::high(),
    };
    let topology = match args.choice("topology", &["flat", "hypercube"], "flat")? {
        "hypercube" => Topology::Hypercube,
        _ => Topology::Flat,
    };
    let combining = args.has("combining");
    let step_threads = Cli::try_from_args(args.clone())?.step_threads();
    let input = input_from(args)?;
    let values = vec![1.0f64; input.len()];
    let mut mn = MultiNode::with_topology(cfg, nodes, net, combining, topology);
    let r = mn.run_trace_threads(&input.data, &values, step_threads);
    println!(
        "multinode nodes={nodes} combining={combining} topology={topology:?}: \
         {:.1} GB/s ({} cycles, {} sum-back lines, {} flush rounds)",
        r.throughput_gbps(cfg.ghz),
        r.cycles,
        r.sum_back_lines,
        r.flush_rounds
    );
    r.record_metrics(&mut bench.scope("multinode"));
    bench.finish();
    Ok(())
}

fn cmd_rig(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let rig = SensitivityRig::new(SensitivityConfig {
        cs_entries: args.get_or("cs", 8)?,
        fu_latency: args.get_or("fu", 4)?,
        mem_latency: args.get_or("latency", 16)?,
        mem_interval: args.get_or("interval", 2)?,
    });
    let n: usize = args.get_or("n", 512)?;
    let range: u64 = args.get_or("range", 65_536)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let mut rng = Rng64::new(seed);
    let indices: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
    let r = rig.run_histogram(&indices, range);
    println!(
        "rig cs={} fu={} latency={} interval={}: {:.2} us; {} combined",
        rig.config().cs_entries,
        rig.config().fu_latency,
        rig.config().mem_latency,
        rig.config().mem_interval,
        r.micros(),
        r.sa.combined
    );
    let mut bench = BenchRun::from_args("explore", &sa_sim::MachineConfig::merrimac(), args);
    r.record_metrics(&mut bench.scope("rig"));
    bench.finish();
    Ok(())
}

const USAGE: &str = "usage: explore <histogram|scatter|scan|multinode|rig> [flags]
run `explore <subcommand>` with no flags for sensible defaults; see the
binary's rustdoc header for the full flag list.";

fn main() {
    let args = Args::from_env();
    let result = match args.positional().first().map(String::as_str) {
        Some("histogram") => cmd_histogram(&args),
        Some("scatter") => cmd_scatter(&args),
        Some("scan") => cmd_scan(&args),
        Some("multinode") => cmd_multinode(&args),
        Some("rig") => cmd_rig(&args),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(1);
    }
}
