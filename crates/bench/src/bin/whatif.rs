//! What-if validation: predicted vs measured speedups.
//!
//! The v5 `bottleneck` section carries an analytic what-if table — Amdahl
//! upper bounds on the speedup from doubling (or halving) one resource at a
//! time, derived purely from one run's stage shares and stall attribution.
//! This binary closes the loop: it runs a contended baseline histogram,
//! reads the engine's predictions, then *actually re-runs* the workload
//! with each resource scaled and compares.
//!
//! ```text
//! whatif              # full-size baseline (16K scatters into 512 words)
//! whatif --quick      # smaller input, same protocol
//! ```
//!
//! Two properties are checked, both warn-only (exit 0 always — the bounds
//! are a planning aid, not a perf gate):
//!
//! * soundness — a measured speedup should not exceed its predicted upper
//!   bound by more than a tolerance (the bound derives from *sampled*
//!   stage shares, so a few percent of slack is expected noise);
//! * usefulness — the mean |predicted − measured| gap is reported so the
//!   trajectory of the model's accuracy is visible over time.

use sa_bench::args::Args;
use sa_bench::telemetry::machine_config_json;
use sa_bench::{header, quick_mode, row};
use sa_core::{drive_scatter_with, NodeMemSys, ScatterKernel};
use sa_sim::{MachineConfig, Rng64};
use sa_telemetry::{attach_bottleneck, stats_json_full, Json, MetricsRegistry};

/// One scaled configuration: the what-if row it validates and how to build
/// the machine.
struct Variant {
    /// `change` key of the what-if row this measures.
    change: &'static str,
    scale: fn(&mut MachineConfig),
}

const VARIANTS: &[Variant] = &[
    Variant {
        change: "2x dram_channels",
        scale: |cfg| cfg.dram.channels *= 2,
    },
    Variant {
        change: "2x cache_banks",
        scale: |cfg| cfg.cache.banks *= 2,
    },
    Variant {
        change: "0.5x fu_latency",
        scale: |cfg| cfg.sa.fu_latency = (cfg.sa.fu_latency / 2).max(1),
    },
    Variant {
        change: "2x cs_entries",
        scale: |cfg| cfg.sa.cs_entries *= 2,
    },
];

/// Slack allowed before a measured speedup "beats" its upper bound: stage
/// shares come from sampled request traces, so the bound itself carries
/// sampling noise.
const SOUNDNESS_SLACK: f64 = 0.10;

/// Run the workload on `cfg` and return (drain cycles, v5 stats document).
fn run_once(cfg: &MachineConfig, indices: &[u64]) -> (u64, Json) {
    let kernel = ScatterKernel::histogram(0, indices.to_vec());
    let mut node = NodeMemSys::new(*cfg, 0, false);
    node.set_req_sample(16);
    let run = drive_scatter_with(node, &kernel, false);
    let mut registry = MetricsRegistry::new();
    {
        let mut scope = registry.scope("canonical");
        run.node.record_metrics(&mut scope);
        scope.counter("cycles", run.cycles);
        scope.counter("drain_cycles", run.drain_cycles);
        scope.counter("skipped_cycles", run.skipped_cycles);
    }
    let mut latency = Json::obj();
    latency.push("canonical", run.node.req_tracer().latency_json());
    let mut attribution = Json::obj();
    attribution.push("canonical", run.stall_breakdown().to_json());
    let mut doc = stats_json_full(
        "whatif",
        machine_config_json(cfg),
        &registry,
        None,
        Some(latency),
        Some(attribution),
        None,
        Json::Arr(Vec::new()),
    );
    attach_bottleneck(&mut doc);
    (run.drain_cycles, doc)
}

/// The baseline's predicted upper bound for one what-if `change` key.
fn predicted_speedup(doc: &Json, change: &str) -> Option<f64> {
    doc.get("bottleneck")?
        .get("canonical")?
        .get("whatif")?
        .as_arr()?
        .iter()
        .find(|r| r.get("change").and_then(Json::as_str) == Some(change))?
        .get("predicted_speedup_max")
        .and_then(Json::as_f64)
}

fn main() {
    let _args = Args::from_env();
    let quick = quick_mode();
    let n = if quick { 4096 } else { 16_384 };
    let range = 512;
    let mut rng = Rng64::new(0x3AF_0001);
    let indices: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();

    header(
        "What-if validation",
        "analytic upper bounds from the bottleneck engine vs measured re-runs",
    );
    let base_cfg = MachineConfig::merrimac();
    let (base_cycles, base_doc) = run_once(&base_cfg, &indices);
    let bound = base_doc
        .get("bottleneck")
        .and_then(|b| b.get("canonical"))
        .and_then(|r| r.get("bound"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    println!("baseline: {base_cycles} cycles, bound {bound} ({n} scatters into {range} words)\n");

    let mut abs_gaps = Vec::new();
    let mut violations = 0usize;
    for v in VARIANTS {
        let Some(predicted) = predicted_speedup(&base_doc, v.change) else {
            eprintln!("warning: baseline has no what-if row for '{}'", v.change);
            continue;
        };
        let mut cfg = base_cfg;
        (v.scale)(&mut cfg);
        let (cycles, _) = run_once(&cfg, &indices);
        let measured = base_cycles as f64 / cycles as f64;
        let gap = predicted - measured;
        abs_gaps.push(gap.abs());
        let sound = measured <= predicted + SOUNDNESS_SLACK;
        if !sound {
            violations += 1;
        }
        row(
            v.change,
            &[
                ("predicted <=", format!("{predicted:.3}x")),
                ("measured", format!("{measured:.3}x")),
                ("gap", format!("{gap:+.3}")),
                ("sound", format!("{sound}")),
            ],
        );
    }
    let mean_gap = if abs_gaps.is_empty() {
        0.0
    } else {
        abs_gaps.iter().sum::<f64>() / abs_gaps.len() as f64
    };
    println!(
        "\nmean |predicted - measured| gap: {mean_gap:.3} (upper bounds, so slack is expected)"
    );
    if violations > 0 {
        eprintln!(
            "warning: {violations} measured speedup(s) beat the predicted bound by more than \
             {SOUNDNESS_SLACK} — the occupancy model may be misattributing that resource"
        );
    } else {
        println!(
            "all measured speedups within their predicted upper bounds (+{SOUNDNESS_SLACK} slack)"
        );
    }
}
