//! Trace analytics behind Figure 13: the locality statistics of the four
//! reference traces, computed with `sa_apps::traces::TraceStats` — the
//! quantities the paper invokes qualitatively ("high locality", "extremely
//! low cache hit rate") when explaining the scalability curves.

use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::Ebe;
use sa_apps::traces::TraceStats;
use sa_bench::{header, quick_mode, row};
use sa_sim::{MachineConfig, Rng64};

fn report(name: &str, trace: &[u64], cfg: &MachineConfig) {
    let line_words = cfg.cache.words_per_line();
    // Window = total combining-store capacity of one node.
    let window = cfg.sa.cs_entries * cfg.cache.banks;
    let s = TraceStats::analyze(trace, line_words, window);
    row(
        name,
        &[
            ("refs", format!("{}", s.len)),
            ("unique", format!("{}", s.unique_words)),
            ("footprint", format!("{}KB", s.footprint_bytes() >> 10)),
            ("reuse@64", format!("{:.2}", s.window_reuse)),
            (
                "in-cache",
                format!("{}", s.fits_cache(cfg.cache.total_bytes)),
            ),
        ],
    );
}

fn main() {
    let cfg = MachineConfig::merrimac();
    let quick = quick_mode();
    header(
        "Trace analytics (explains Figure 13)",
        "reuse@64 = fraction of references merged by a 64-entry combining window",
    );
    let hist_n = if quick { 8192 } else { 65_536 };
    let mut rng = Rng64::new(0xA11A);
    let narrow: Vec<u64> = (0..hist_n).map(|_| rng.below(256)).collect();
    let wide: Vec<u64> = (0..hist_n).map(|_| rng.below(1 << 20)).collect();
    report("narrow histogram", &narrow, &cfg);
    report("wide histogram", &wide, &cfg);

    let sys = if quick {
        WaterSystem::generate(150, 1)
    } else {
        WaterSystem::paper_scale(1)
    };
    report("mole (MD forces)", &sys.scatter_trace(), &cfg);

    let mesh = if quick {
        Mesh::generate(200, 20, 1040, 2)
    } else {
        Mesh::paper_scale(2)
    };
    report("spas (EBE SpMV)", &Ebe::new(&mesh).scatter_trace(), &cfg);

    println!(
        "\nhigh reuse + in-cache footprint → combining pays (narrow, mole); \
         low reuse + overflowing footprint → it does not (wide)"
    );
}
