//! The consumer side of the telemetry layer, plus the trace analytics
//! behind Figure 13.
//!
//! Flag modes (CI entry points, kept stable):
//!
//! * `analyze --stats-json <path>` reads back a `sa-stats` document written
//!   by any figure binary and prints a summary of its metrics;
//! * `analyze --check <path>` validates the document against the schema and
//!   requires the canonical scatter-unit / cache / DRAM / queue metrics —
//!   exits nonzero on any violation (used by CI);
//! * `analyze --diff <baseline> <candidate>` compares two documents'
//!   cycle counts and latency percentiles and exits nonzero when the
//!   candidate regressed past the threshold (`--threshold 0.05`) — the CI
//!   perf gate, listing every regressed metric with absolute and relative
//!   deltas;
//! * `analyze --watch <socket>` connects to a figure binary started with
//!   `--probe-listen <socket>` and renders its live heartbeats and
//!   `sa-probe` snapshots as a refreshing top-style dashboard. Every
//!   snapshot line is validated against the probe schema and the client
//!   exits nonzero on the first invalid one, so `--watch --watch-lines N
//!   --plain` doubles as the CI smoke client.
//!
//! Positional modes:
//!
//! * `analyze bottleneck <stats.json>` renders the v5 `bottleneck`
//!   attribution section — dominant resource with utilization evidence,
//!   per-resource occupancy table, critical path, analytic what-if table.
//!   Documents written before v5 (no occupancy counters) are recomputed on
//!   the fly when possible;
//! * `analyze trend [N]` prints the last N (default 10) entries of the
//!   local perf-trajectory ledger `bench/history/trajectory.ndjson`
//!   appended by `hotloop`; when no ledger exists yet it prints the usage
//!   block and exits 2, like any other usage error;
//! * `analyze summarize` runs the trace-locality analytics that explain
//!   Figure 13 (the locality statistics of the four reference traces,
//!   computed with `sa_apps::traces::TraceStats` — the quantities the
//!   paper invokes qualitatively when explaining the scalability curves);
//! * `analyze cache ls|stats|gc|clear` manages the content-addressed
//!   result store the figure binaries fill via `--cache` (see
//!   `docs/PERFORMANCE.md`). The directory comes from `--dir`,
//!   `SA_CACHE_DIR`, or the `.sa-cache` default; `gc` evicts
//!   least-recently-used entries until the store fits `--max-bytes`.
//!
//! With no mode (or an unknown one) the binary prints the full usage block
//! and exits nonzero.

use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::Ebe;
use sa_apps::traces::TraceStats;
use sa_bench::args::Args;
use sa_bench::diff::{diff_stats, DiffConfig};
use sa_bench::{header, quick_mode, row};
use sa_sim::{MachineConfig, Rng64};
use sa_telemetry::{
    bottleneck_json, has_metric_matching, render_bottleneck, validate_bottleneck_json,
    validate_stats_json, Json,
};
#[cfg(unix)]
use sa_telemetry::{validate_probe_json, PROBE_SCHEMA_NAME};

const USAGE: &str = "\
usage: analyze <mode> [flags]

flag modes (CI entry points):
  --check <stats.json>                validate schema + required metric families
  --diff <baseline.json> <cand.json>  perf gate (tune with --threshold 0.05)
  --stats-json <stats.json>           summarize a stats document
  --watch <socket>                    live probe dashboard (--watch-lines N, --plain)

positional modes:
  summarize                           trace-locality analytics behind Figure 13
                                      (--quick for smaller inputs)
  bottleneck <stats.json>             render the bottleneck attribution report
                                      (sa-stats v5; older docs recomputed when
                                      occupancy counters are present)
  trend [N]                           last N entries (default 10) of the perf
                                      trajectory ledger
                                      bench/history/trajectory.ndjson
  cache ls|stats|gc|clear             manage the --cache result store
                                      (--dir DIR, else SA_CACHE_DIR, else
                                      .sa-cache; gc bound: --max-bytes N,
                                      default 1 GiB, LRU eviction)
  mkspec histogram|multinode          print a sa-session-spec job file
                                      (--n N --range R --seed S; multinode
                                      adds --nodes N --net low|high
                                      --combining on|off --topology
                                      flat|hypercube)
  submit <job.json>                   POST a job spec to a running serve
                                      daemon (--addr HOST:PORT, --tenant T,
                                      --out FILE, --stream); the cache/
                                      simulated sidecar goes to stderr
  serve stats|health|shutdown         query or stop a running serve daemon
                                      (--addr HOST:PORT)
";

/// Where `submit` / `serve` look for the daemon unless `--addr` says
/// otherwise (the `serve` binary's default listen address).
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7411";

/// Default `analyze cache gc` size bound: 1 GiB.
const DEFAULT_GC_BYTES: u64 = 1 << 30;

use sa_bench::TRAJECTORY_PATH;

fn load_stats(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// `--check`: schema validation plus the required metric families.
fn check_stats(path: &str) -> Result<(), String> {
    let doc = load_stats(path)?;
    validate_stats_json(&doc)?;
    for family in ["sa.", "cache.", "dram.", "queue."] {
        if !has_metric_matching(&doc, family) {
            return Err(format!("no metric path contains '{family}'"));
        }
    }
    let bench = doc.get("bench").and_then(Json::as_str).unwrap_or("?");
    println!("{path}: valid sa-stats document from '{bench}'");
    Ok(())
}

/// `--stats-json`: read a document back and summarize what it holds.
fn summarize_stats(path: &str) -> Result<(), String> {
    let doc = load_stats(path)?;
    validate_stats_json(&doc)?;
    let bench = doc.get("bench").and_then(Json::as_str).unwrap_or("?");
    // The document's own version, not this binary's: the validator accepts
    // every schema since v1, so old baselines summarize too.
    let version = doc.get("version").and_then(Json::as_u64).unwrap_or(0);
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_obj)
        .ok_or("no metrics")?;
    header(
        &format!("Stats document: {path}"),
        &format!("bench '{bench}', schema v{version}"),
    );
    let counters = metrics.iter().filter(|(_, v)| v.as_u64().is_some()).count();
    let histograms = metrics
        .iter()
        .filter(|(_, v)| v.get("buckets").is_some())
        .count();
    row(
        "metrics",
        &[
            ("total", format!("{}", metrics.len())),
            ("counters", format!("{counters}")),
            ("histograms", format!("{histograms}")),
        ],
    );
    // The headline counters every document carries via the canonical run.
    for key in [
        "canonical.cycles",
        "canonical.sa.accepted",
        "canonical.sa.combined",
        "canonical.cache.read_hits",
        "canonical.dram.reads",
    ] {
        if let Some(v) = metrics.iter().find(|(p, _)| p == key).map(|(_, v)| v) {
            if let Some(n) = v.as_u64() {
                row(key, &[("value", format!("{n}"))]);
            }
        }
    }
    // v3: resilience counters appear only when a fault plan fired.
    let faults: u64 = metrics
        .iter()
        .filter(|(p, _)| p.contains("resilience."))
        .filter_map(|(_, v)| v.as_u64())
        .sum();
    if faults > 0 {
        row("resilience", &[("events", format!("{faults}"))]);
    }
    if let Some(series) = doc
        .get("series")
        .and_then(|s| s.get("series"))
        .and_then(Json::as_obj)
    {
        row("series", &[("tracked", format!("{}", series.len()))]);
    }
    if let Some(rows) = doc.get("rows").and_then(Json::as_arr) {
        row("rows", &[("count", format!("{}", rows.len()))]);
    }
    // v4: the host wall-clock sidecar (`--host-profile`). Nondeterministic
    // by construction, so it is printed for humans but never diffed.
    if let Some(hp) = doc.get("host_profile") {
        let total = hp.get("total_ns").and_then(Json::as_u64).unwrap_or(0);
        row(
            "host_profile",
            &[
                ("total_ms", format!("{:.1}", total as f64 / 1e6)),
                ("note", "host wall-clock; excluded from --diff".to_owned()),
            ],
        );
        for (name, p) in hp.get("phases").and_then(Json::as_obj).unwrap_or(&[]) {
            let ns = p.get("ns").and_then(Json::as_u64).unwrap_or(0);
            row(
                format!("  {name}"),
                &[
                    (
                        "calls",
                        format!("{}", p.get("calls").and_then(Json::as_u64).unwrap_or(0)),
                    ),
                    ("ms", format!("{:.1}", ns as f64 / 1e6)),
                    (
                        "pct",
                        format!("{:.1}", p.get("pct").and_then(Json::as_f64).unwrap_or(0.0)),
                    ),
                ],
            );
        }
    }
    Ok(())
}

/// `bottleneck <path>`: render the attribution report. Uses the document's
/// own `bottleneck` section when present (the deterministic v5 artifact);
/// otherwise derives one on the fly from the occupancy counters so freshly
/// hand-assembled documents still analyze.
fn bottleneck_mode(path: &str) -> Result<(), String> {
    let doc = load_stats(path)?;
    validate_stats_json(&doc)?;
    let computed;
    let section = match doc.get("bottleneck") {
        Some(s) => s,
        None => match bottleneck_json(&doc) {
            Some(s) => {
                computed = s;
                &computed
            }
            None => {
                return Err(format!(
                    "{path}: no bottleneck section and no occupancy counters to \
                     derive one from (document predates sa-stats v5?)"
                ))
            }
        },
    };
    validate_bottleneck_json(section).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", render_bottleneck(section));
    Ok(())
}

/// `trend [N]`: tail of the local perf-trajectory ledger appended by
/// `hotloop` runs. Wall-clock numbers, machine-local by design.
fn trend_mode(n: usize) -> Result<(), String> {
    let text = match std::fs::read_to_string(TRAJECTORY_PATH) {
        Ok(text) => text,
        // No ledger yet is a usage problem (nothing has been benchmarked on
        // this machine), not a data error: print the usage block and exit 2
        // so CI wiring can tell the two apart.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => usage_exit(&format!(
            "no perf-trajectory ledger at {TRAJECTORY_PATH} (run `hotloop` to append an entry)"
        )),
        Err(e) => return Err(format!("reading {TRAJECTORY_PATH}: {e}")),
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let start = lines.len().saturating_sub(n);
    println!(
        "perf trajectory: last {} of {} entries ({TRAJECTORY_PATH})",
        lines.len() - start,
        lines.len()
    );
    for line in &lines[start..] {
        let doc = Json::parse(line)
            .map_err(|e| format!("invalid NDJSON line in {TRAJECTORY_PATH}: {e}"))?;
        let mut parts = Vec::new();
        for (k, v) in doc.as_obj().unwrap_or(&[]) {
            if k == "schema" || k == "version" {
                continue;
            }
            if let Some(s) = v.as_str() {
                parts.push(format!("{k}={s}"));
            } else if let Some(x) = v.as_f64() {
                parts.push(format!("{k}={x}"));
            }
        }
        println!("  {}", parts.join("  "));
    }
    Ok(())
}

fn report(name: &str, trace: &[u64], cfg: &MachineConfig) {
    let line_words = cfg.cache.words_per_line();
    // Window = total combining-store capacity of one node.
    let window = cfg.sa.cs_entries * cfg.cache.banks;
    let s = TraceStats::analyze(trace, line_words, window);
    row(
        name,
        &[
            ("refs", format!("{}", s.len)),
            ("unique", format!("{}", s.unique_words)),
            ("footprint", format!("{}KB", s.footprint_bytes() >> 10)),
            ("reuse@64", format!("{:.2}", s.window_reuse)),
            (
                "in-cache",
                format!("{}", s.fits_cache(cfg.cache.total_bytes)),
            ),
        ],
    );
}

/// `--diff`: the perf gate. Prints every regression; `Ok(true)` = clean.
fn diff_docs(baseline: &str, candidate: &str, args: &Args) -> Result<bool, String> {
    let threshold = args
        .get_or("threshold", DiffConfig::default().threshold)
        .map_err(|e| e.to_string())?;
    let cfg = DiffConfig {
        threshold,
        ..DiffConfig::default()
    };
    let base = load_stats(baseline)?;
    let cand = load_stats(candidate)?;
    validate_stats_json(&base).map_err(|e| format!("{baseline}: {e}"))?;
    validate_stats_json(&cand).map_err(|e| format!("{candidate}: {e}"))?;
    let regressions = diff_stats(&base, &cand, &cfg)?;
    if regressions.is_empty() {
        println!(
            "{candidate}: no regressions vs {baseline} (threshold +{:.0}%)",
            threshold * 100.0
        );
        return Ok(true);
    }
    eprintln!(
        "{candidate}: {} regression(s) vs {baseline} (threshold +{:.0}%):",
        regressions.len(),
        threshold * 100.0
    );
    for r in &regressions {
        eprintln!("  {r}");
    }
    let mut scopes: Vec<&str> = regressions
        .iter()
        .map(sa_bench::diff::Regression::scope)
        .collect();
    scopes.sort_unstable();
    scopes.dedup();
    eprintln!("  regressed scopes: {}", scopes.join(", "));
    Ok(false)
}

/// One status line for a progress event (`heartbeat` / `point` / `row`).
#[cfg(unix)]
fn status_line(doc: &Json) -> String {
    let num = |k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    match doc.get("kind").and_then(Json::as_str).unwrap_or("?") {
        "heartbeat" => format!(
            "cycle {:.0} | {:.0} sim cyc/s | ff x{:.1} | skipped {:.0} | {:.1}s",
            num("cycle"),
            num("sim_cycles_per_sec"),
            num("ff_ratio"),
            num("skipped_cycles"),
            num("elapsed_ms") / 1e3,
        ),
        "point" => format!(
            "sweep {:.0}/{:.0} ({}) | eta {:.1}s",
            num("done"),
            num("total"),
            doc.get("label").and_then(Json::as_str).unwrap_or("?"),
            num("eta_ms") / 1e3,
        ),
        "row" => format!(
            "row from {}",
            doc.get("bench").and_then(Json::as_str).unwrap_or("?")
        ),
        other => format!("{other} event"),
    }
}

/// Append one component (and its children, indented) to the dashboard.
#[cfg(unix)]
fn fmt_component(name: &str, body: &Json, indent: usize, out: &mut String) {
    let kind = body.get("kind").and_then(Json::as_str).unwrap_or("?");
    let mut fields = String::new();
    for (k, v) in body.as_obj().unwrap_or(&[]) {
        if k == "kind" || k == "components" {
            continue;
        }
        if let Some(n) = v.as_f64() {
            if !fields.is_empty() {
                fields.push_str("  ");
            }
            fields.push_str(&format!("{k}={n}"));
        }
    }
    out.push_str(&format!("{:indent$}{name} [{kind}]  {fields}\n", ""));
    for (child, cbody) in body.get("components").and_then(Json::as_obj).unwrap_or(&[]) {
        fmt_component(child, cbody, indent + 2, out);
    }
}

/// Redraw the dashboard: latest heartbeat line plus the snapshot tree.
#[cfg(unix)]
fn render(snapshot: Option<&Json>, status: &str, plain: bool) {
    use std::io::Write;
    let mut out = String::new();
    if !plain {
        out.push_str("\x1b[2J\x1b[H"); // clear screen, cursor home
    }
    out.push_str(&format!("sa-probe watch — {status}\n"));
    if let Some(doc) = snapshot {
        let cycle = doc.get("cycle").and_then(Json::as_u64).unwrap_or(0);
        let skipped = doc
            .get("skipped_cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let label = doc.get("label").and_then(Json::as_str).unwrap_or("-");
        out.push_str(&format!(
            "snapshot: label {label}  cycle {cycle}  skipped {skipped}\n"
        ));
        for (name, body) in doc.get("components").and_then(Json::as_obj).unwrap_or(&[]) {
            fmt_component(name, body, 2, &mut out);
        }
    }
    print!("{out}");
    let _ = std::io::stdout().flush();
}

#[cfg(unix)]
fn connect_with_retries(path: &str) -> Result<std::os::unix::net::UnixStream, String> {
    // The client is typically launched alongside the serving binary, so
    // give the server up to ~10s to bind before giving up.
    for _ in 0..40 {
        if let Ok(s) = std::os::unix::net::UnixStream::connect(path) {
            return Ok(s);
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
    std::os::unix::net::UnixStream::connect(path).map_err(|e| format!("connecting to {path}: {e}"))
}

/// `--watch`: live dashboard client for a `--probe-listen` socket.
///
/// Every `sa-probe` line is schema-validated and the first invalid one
/// aborts with an error, which makes this the scripted client of the CI
/// probe smoke job. `--watch-lines N` exits cleanly after N NDJSON lines
/// (0 = until the server closes); `--plain` appends lines instead of
/// redrawing the screen.
#[cfg(unix)]
fn watch(path: &str, args: &Args) -> Result<(), String> {
    use std::io::BufRead;
    let max_lines = args
        .get_or("watch-lines", 0u64)
        .map_err(|e| e.to_string())?;
    let plain = args.has("plain");
    let reader = std::io::BufReader::new(connect_with_retries(path)?);
    let mut seen = 0u64;
    let mut snapshots = 0u64;
    let mut last_snapshot: Option<Json> = None;
    let mut last_status = String::from("waiting for events...");
    for line in reader.lines() {
        let line = line.map_err(|e| format!("reading {path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let doc =
            Json::parse(&line).map_err(|e| format!("invalid NDJSON line from {path}: {e}"))?;
        if doc.get("schema").and_then(Json::as_str) == Some(PROBE_SCHEMA_NAME) {
            validate_probe_json(&doc).map_err(|e| format!("invalid sa-probe snapshot: {e}"))?;
            snapshots += 1;
            last_snapshot = Some(doc);
        } else {
            last_status = status_line(&doc);
        }
        render(last_snapshot.as_ref(), &last_status, plain);
        seen += 1;
        if max_lines > 0 && seen >= max_lines {
            break;
        }
    }
    println!("watch: {seen} line(s), {snapshots} valid snapshot(s) from {path}");
    Ok(())
}

/// `cache <sub>`: inspect and bound the content-addressed result store.
fn cache_mode(args: &Args) -> Result<(), String> {
    let dir = args
        .raw("dir")
        .map(str::to_owned)
        .or_else(|| {
            std::env::var(sa_memo::ENV_DIR)
                .ok()
                .filter(|d| !d.is_empty())
        })
        .unwrap_or_else(|| sa_memo::DEFAULT_DIR.to_owned());
    let open =
        || sa_memo::ResultCache::open(&dir).map_err(|e| format!("opening cache at {dir}: {e}"));
    match args.positional().get(1).map(String::as_str) {
        Some("ls") => {
            let entries = open()?.ls().map_err(|e| format!("listing {dir}: {e}"))?;
            println!(
                "result cache at {dir}: {} entries, oldest first",
                entries.len()
            );
            let now = std::time::SystemTime::now();
            for e in entries {
                let age = now
                    .duration_since(e.modified)
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                println!("  {}  {:>10} bytes  {:>8}s old", e.digest, e.bytes, age);
            }
            Ok(())
        }
        Some("stats") => {
            let (entries, bytes) = open()?.usage().map_err(|e| format!("sizing {dir}: {e}"))?;
            row(
                format!("cache {dir}"),
                &[
                    ("entries", format!("{entries}")),
                    ("bytes", format!("{bytes}")),
                    ("mb", format!("{:.1}", bytes as f64 / (1 << 20) as f64)),
                ],
            );
            Ok(())
        }
        Some("gc") => {
            let max_bytes = args
                .get_or("max-bytes", DEFAULT_GC_BYTES)
                .map_err(|e| e.to_string())?;
            let r = open()?
                .gc(max_bytes)
                .map_err(|e| format!("gc in {dir}: {e}"))?;
            println!(
                "gc {dir}: removed {} entries ({} bytes), kept {} ({} bytes) under the \
                 {max_bytes}-byte bound",
                r.removed, r.bytes_freed, r.kept, r.bytes_kept
            );
            Ok(())
        }
        Some("clear") => {
            let removed = open()?
                .clear()
                .map_err(|e| format!("clearing {dir}: {e}"))?;
            println!("cleared {removed} entries from {dir}");
            Ok(())
        }
        Some(other) => usage_exit(&format!("unknown cache subcommand '{other}'")),
        None => usage_exit("cache mode needs a subcommand: ls | stats | gc | clear"),
    }
}

/// The full closed flag set; anything else is a typo worth stopping on.
const KNOWN_FLAGS: &[&str] = &[
    "watch",
    "watch-lines",
    "plain",
    "diff",
    "check",
    "stats-json",
    "threshold",
    "quick",
    "dir",
    "max-bytes",
    // mkspec
    "n",
    "range",
    "seed",
    "nodes",
    "net",
    "combining",
    "topology",
    // submit / serve client modes
    "addr",
    "tenant",
    "out",
    "stream",
];

fn usage_exit(context: &str) -> ! {
    sa_bench::usage_error(context, USAGE);
}

/// `analyze mkspec histogram|multinode`: print a ready-to-submit
/// `sa-session-spec` job file, deterministically generated from `--seed`,
/// so CI and examples never need to commit large index arrays.
fn mkspec_mode(args: &Args) -> Result<(), String> {
    let kind = match args.positional().get(1).map(String::as_str) {
        Some(kind @ ("histogram" | "multinode")) => kind,
        Some(other) => return Err(format!("unknown mkspec workload '{other}'")),
        None => return Err("mkspec needs a workload: histogram | multinode".to_string()),
    };
    let n = args.get_or("n", 4096u64).map_err(|e| e.to_string())?;
    let range = args
        .get_or("range", 512u64)
        .map_err(|e| e.to_string())?
        .max(1);
    let seed = args.get_or("seed", 1u64).map_err(|e| e.to_string())?;
    let mut rng = Rng64::new(seed);
    let indices: Vec<u64> = (0..n).map(|_| rng.next_u64() % range).collect();
    let spec = match kind {
        "histogram" => {
            scatter_add_repro::SessionSpec::new(scatter_add_repro::Workload::Histogram {
                base_word: 0,
                indices,
            })
        }
        _ => {
            let nodes = args.get_or("nodes", 4usize).map_err(|e| e.to_string())?;
            let net = match args
                .choice("net", &["low", "high"], "low")
                .map_err(|e| e.to_string())?
            {
                "high" => sa_sim::NetworkConfig::high(),
                _ => sa_sim::NetworkConfig::low(),
            };
            let combining = args
                .choice("combining", &["on", "off"], "on")
                .map_err(|e| e.to_string())?
                == "on";
            let topology = match args
                .choice("topology", &["flat", "hypercube"], "flat")
                .map_err(|e| e.to_string())?
            {
                "hypercube" => scatter_add_repro::Topology::Hypercube,
                _ => scatter_add_repro::Topology::Flat,
            };
            // Eighths are exactly representable, so the values survive the
            // spec's raw-bits round trip with pretty JSON untouched.
            let values: Vec<f64> = (0..n)
                .map(|_| (rng.next_u64() % 1000) as f64 / 8.0)
                .collect();
            scatter_add_repro::SessionSpec::new(scatter_add_repro::Workload::MultiNode {
                nodes,
                network: net,
                combining,
                topology,
                trace: indices,
                values,
            })
        }
    };
    println!("{}", spec.to_json().to_string_pretty());
    Ok(())
}

/// `analyze submit <job.json>`: POST a spec to a serve daemon. The result
/// body goes to stdout (or `--out FILE`); the cache/simulated sidecar and
/// any streamed progress lines go to stderr so the body stays clean for
/// byte-identity checks.
fn submit_mode(args: &Args) -> Result<(), String> {
    let Some(path) = args.positional().get(1) else {
        return Err("submit needs a job file path".to_string());
    };
    let spec_text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let addr = args.raw("addr").unwrap_or(DEFAULT_SERVE_ADDR);
    let tenant = args.raw("tenant").unwrap_or("");
    let mut print_line = |line: &str| eprintln!("{line}");
    let on_line: Option<&mut dyn FnMut(&str)> = if args.has("stream") {
        Some(&mut print_line)
    } else {
        None
    };
    let resp = sa_serve::client::submit(addr, &spec_text, tenant, on_line)?;
    let cache = resp.header("x-sa-cache").unwrap_or("-");
    let simulated = resp.header("x-sa-simulated").unwrap_or("-");
    eprintln!(
        "submit: status={} cache={cache} simulated={simulated}",
        resp.status
    );
    if resp.status != 200 {
        return Err(format!(
            "server answered {}: {}",
            resp.status,
            resp.body.trim()
        ));
    }
    match args.raw("out") {
        Some(out) => {
            let mut body = resp.body;
            if !body.ends_with('\n') {
                body.push('\n');
            }
            std::fs::write(out, body).map_err(|e| format!("writing {out}: {e}"))?;
        }
        None => println!("{}", resp.body.trim_end()),
    }
    Ok(())
}

/// `analyze serve stats|health|shutdown`: query or stop a running daemon.
fn serve_mode(args: &Args) -> Result<(), String> {
    let addr = args.raw("addr").unwrap_or(DEFAULT_SERVE_ADDR);
    let resp = match args.positional().get(1).map(String::as_str) {
        Some("stats") => sa_serve::client::stats(addr)?,
        Some("health") => sa_serve::client::health(addr)?,
        Some("shutdown") => sa_serve::client::shutdown(addr)?,
        Some(other) => return Err(format!("unknown serve subcommand '{other}'")),
        None => return Err("serve mode needs a subcommand: stats | health | shutdown".to_string()),
    };
    print!("{}", resp.body);
    if !resp.body.ends_with('\n') {
        println!();
    }
    if resp.status != 200 {
        return Err(format!("server answered {}", resp.status));
    }
    Ok(())
}

fn main() {
    let args = Args::from_env();
    if let Some(unknown) = args.flags().find(|f| !KNOWN_FLAGS.contains(f)) {
        let unknown = unknown.to_owned();
        usage_exit(&format!("unknown flag --{unknown}"));
    }
    if let Some(path) = args.raw("watch") {
        #[cfg(unix)]
        {
            if let Err(e) = watch(path, &args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            return;
        }
        #[cfg(not(unix))]
        {
            eprintln!("error: --watch {path}: unix sockets unavailable on this platform");
            std::process::exit(2);
        }
    }
    if let Some(baseline) = args.raw("diff") {
        let Some(candidate) = args.positional().first() else {
            eprintln!("usage: analyze --diff <baseline.json> <candidate.json>");
            std::process::exit(2);
        };
        match diff_docs(baseline, candidate, &args) {
            Ok(true) => return,
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = args.raw("check") {
        if let Err(e) = check_stats(path) {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(path) = args.raw("stats-json") {
        if let Err(e) = summarize_stats(path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    match args.positional().first().map(String::as_str) {
        Some("summarize") => trace_analytics(),
        Some("bottleneck") => {
            let Some(path) = args.positional().get(1) else {
                usage_exit("bottleneck mode needs a stats document path");
            };
            if let Err(e) = bottleneck_mode(path) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some("cache") => {
            if let Err(e) = cache_mode(&args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some("trend") => {
            let n = match args.positional().get(1) {
                None => 10,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => usage_exit(&format!("trend count '{raw}' is not a number")),
                },
            };
            if let Err(e) = trend_mode(n) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some("mkspec") => {
            // Everything that can go wrong here is a command-line problem.
            if let Err(e) = mkspec_mode(&args) {
                usage_exit(&e);
            }
        }
        Some("submit") => {
            if args.positional().get(1).is_none() {
                usage_exit("submit needs a job file path");
            }
            if let Err(e) = submit_mode(&args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some("serve") => {
            match args.positional().get(1).map(String::as_str) {
                Some("stats" | "health" | "shutdown") => {}
                Some(other) => {
                    let other = other.to_owned();
                    usage_exit(&format!("unknown serve subcommand '{other}'"));
                }
                None => usage_exit("serve mode needs a subcommand: stats | health | shutdown"),
            }
            if let Err(e) = serve_mode(&args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some(other) => {
            let other = other.to_owned();
            usage_exit(&format!("unknown mode '{other}'"));
        }
        None => usage_exit(""),
    }
}

/// `summarize`: the trace-locality analytics that explain Figure 13.
fn trace_analytics() {
    let cfg = MachineConfig::merrimac();
    let quick = quick_mode();
    header(
        "Trace analytics (explains Figure 13)",
        "reuse@64 = fraction of references merged by a 64-entry combining window",
    );
    let hist_n = if quick { 8192 } else { 65_536 };
    let mut rng = Rng64::new(0xA11A);
    let narrow: Vec<u64> = (0..hist_n).map(|_| rng.below(256)).collect();
    let wide: Vec<u64> = (0..hist_n).map(|_| rng.below(1 << 20)).collect();
    report("narrow histogram", &narrow, &cfg);
    report("wide histogram", &wide, &cfg);

    let sys = if quick {
        WaterSystem::generate(150, 1)
    } else {
        WaterSystem::paper_scale(1)
    };
    report("mole (MD forces)", &sys.scatter_trace(), &cfg);

    let mesh = if quick {
        Mesh::generate(200, 20, 1040, 2)
    } else {
        Mesh::paper_scale(2)
    };
    report("spas (EBE SpMV)", &Ebe::new(&mesh).scatter_trace(), &cfg);

    println!(
        "\nhigh reuse + in-cache footprint → combining pays (narrow, mole); \
         low reuse + overflowing footprint → it does not (wide)"
    );
}
