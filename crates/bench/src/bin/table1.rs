//! Table 1: machine parameters of the simulated base configuration.

use sa_bench::{header, row};
use sa_sim::MachineConfig;

fn main() {
    let m = MachineConfig::merrimac();
    header(
        "Table 1",
        "Machine parameters (paper values in parentheses where fixed by Table 1)",
    );
    row(
        "stream cache banks",
        &[("value", format!("{} (8)", m.cache.banks))],
    );
    row("scatter-add units/bank", &[("value", "1 (1)".into())]);
    row(
        "scatter-add FU latency",
        &[("cycles", format!("{} (4)", m.sa.fu_latency))],
    );
    row(
        "combining store entries",
        &[("value", format!("{} (8)", m.sa.cs_entries))],
    );
    row(
        "DRAM interface channels",
        &[("value", format!("{} (16)", m.dram.channels))],
    );
    row(
        "address generators",
        &[("value", format!("{} (2)", m.ag.count))],
    );
    row("operating frequency", &[("GHz", format!("{} (1)", m.ghz))]);
    row(
        "peak DRAM bandwidth",
        &[("GB/s", format!("{:.1} (38.4)", m.dram_gbps()))],
    );
    row(
        "stream cache bandwidth",
        &[("GB/s", format!("{:.1} (64)", m.cache_gbps()))],
    );
    row(
        "clusters",
        &[("value", format!("{} (16)", m.compute.clusters))],
    );
    row(
        "peak FP ops per cycle",
        &[("value", format!("{} (128)", m.compute.peak_flops_per_cycle))],
    );
    row(
        "SRF bandwidth",
        &[(
            "GB/s",
            format!("{} (512)", m.compute.srf_words_per_cycle as u64 * 8),
        )],
    );
    row(
        "SRF size",
        &[("MB", format!("{} (1)", m.compute.srf_bytes >> 20))],
    );
    row(
        "stream cache size",
        &[("MB", format!("{} (1)", m.cache.total_bytes >> 20))],
    );
    println!(
        "\nArea model (Section 3.2): {} scatter-add units x {:.1} mm^2 = {:.1} mm^2 \
         = {:.1}% of a 10mm x 10mm die (paper: <2%)",
        m.cache.banks,
        sa_core::area::SA_UNIT_AREA_MM2,
        sa_core::area::total_area_mm2(m.cache.banks),
        100.0 * sa_core::area::die_fraction(m.cache.banks, sa_core::area::REFERENCE_DIE_MM2),
    );
}
