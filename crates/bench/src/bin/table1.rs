//! Table 1: machine parameters of the simulated base configuration.

use sa_bench::header;
use sa_bench::telemetry::BenchRun;
use sa_sim::MachineConfig;

fn main() {
    let m = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("table1", &m);
    header(
        "Table 1",
        "Machine parameters (paper values in parentheses where fixed by Table 1)",
    );
    bench.row(
        "stream cache banks",
        &[("value", format!("{} (8)", m.cache.banks))],
    );
    bench.row("scatter-add units/bank", &[("value", "1 (1)".into())]);
    bench.row(
        "scatter-add FU latency",
        &[("cycles", format!("{} (4)", m.sa.fu_latency))],
    );
    bench.row(
        "combining store entries",
        &[("value", format!("{} (8)", m.sa.cs_entries))],
    );
    bench.row(
        "DRAM interface channels",
        &[("value", format!("{} (16)", m.dram.channels))],
    );
    bench.row(
        "address generators",
        &[("value", format!("{} (2)", m.ag.count))],
    );
    bench.row("operating frequency", &[("GHz", format!("{} (1)", m.ghz))]);
    bench.row(
        "peak DRAM bandwidth",
        &[("GB/s", format!("{:.1} (38.4)", m.dram_gbps()))],
    );
    bench.row(
        "stream cache bandwidth",
        &[("GB/s", format!("{:.1} (64)", m.cache_gbps()))],
    );
    bench.row(
        "clusters",
        &[("value", format!("{} (16)", m.compute.clusters))],
    );
    bench.row(
        "peak FP ops per cycle",
        &[("value", format!("{} (128)", m.compute.peak_flops_per_cycle))],
    );
    bench.row(
        "SRF bandwidth",
        &[(
            "GB/s",
            format!("{} (512)", m.compute.srf_words_per_cycle as u64 * 8),
        )],
    );
    bench.row(
        "SRF size",
        &[("MB", format!("{} (1)", m.compute.srf_bytes >> 20))],
    );
    bench.row(
        "stream cache size",
        &[("MB", format!("{} (1)", m.cache.total_bytes >> 20))],
    );
    println!(
        "\nArea model (Section 3.2): {} scatter-add units x {:.1} mm^2 = {:.1} mm^2 \
         = {:.1}% of a 10mm x 10mm die (paper: <2%)",
        m.cache.banks,
        sa_core::area::SA_UNIT_AREA_MM2,
        sa_core::area::total_area_mm2(m.cache.banks),
        100.0 * sa_core::area::die_fraction(m.cache.banks, sa_core::area::REFERENCE_DIE_MM2),
    );
    bench.finish();
}
