//! Figure 10: GROMACS water non-bonded kernel — no scatter-add (duplicated
//! computation) vs software scatter-add vs hardware scatter-add; execution
//! cycles, FP operations, memory references.
//!
//! Expected shape (paper, cycles ×1M): no-SA 0.975, SW 3.022, HW 0.553 —
//! hardware gives a 76% speedup over the best software version, which in
//! turn is 3.1× faster than software scatter-add.

use sa_apps::md::{max_force_deviation, run_hw, run_no_sa, run_sw_default, WaterSystem};
use sa_bench::telemetry::BenchRun;
use sa_bench::{header, mcycles, mops, quick_mode, sweep};
use sa_sim::MachineConfig;

fn main() {
    let cfg = MachineConfig::merrimac();
    let mut bench = BenchRun::from_env("fig10", &cfg);
    let sys = if quick_mode() {
        WaterSystem::generate(120, 11)
    } else {
        WaterSystem::paper_scale(11)
    };
    header(
        "Figure 10",
        &format!(
            "Water non-bonded forces: {} molecules, {} pairs, {} scatter-add refs",
            sys.molecules(),
            sys.pairs.len(),
            sys.pairs.len() * 18
        ),
    );

    // Three independent simulations, fanned out; reporting stays in the
    // paper's order (no-SA, SW, HW).
    let mut runs = sweep::map(vec![0usize, 1, 2], |which| match which {
        0 => run_no_sa(&cfg, &sys),
        1 => run_sw_default(&cfg, &sys),
        _ => run_hw(&cfg, &sys),
    });
    let hw = runs.pop().expect("three runs");
    let sw = runs.pop().expect("three runs");
    let no = runs.pop().expect("three runs");

    let reference = sys.reference_forces();
    for (name, r) in [("no-SA", &no), ("SW", &sw), ("HW", &hw)] {
        let dev = max_force_deviation(&r.forces, &reference);
        assert!(dev < 1e-6, "{name} force deviation {dev}");
    }

    for (name, scope, r) in [
        ("no scatter-add", "no_sa", &no),
        ("SW scatter-add", "sw", &sw),
        ("HW scatter-add", "hw", &hw),
    ] {
        let mut s = bench.scope(scope);
        s.counter("cycles", r.report.cycles);
        s.counter("flops", r.report.flops());
        s.counter("mem_refs", r.report.mem_refs());
        r.report.stats.record(&mut s);
        bench.row(
            name,
            &[
                ("cycles", mcycles(r.report.cycles)),
                ("fp-ops", mops(r.report.flops())),
                ("mem-refs", mops(r.report.mem_refs())),
            ],
        );
    }
    println!(
        "\nHW speedup over best software (no-SA): {:.2}x (paper 1.76x); \
         no-SA speedup over SW scatter-add: {:.2}x (paper 3.1x)",
        no.report.cycles as f64 / hw.report.cycles as f64,
        sw.report.cycles as f64 / no.report.cycles as f64,
    );
    bench.finish();
}
