//! Shared `--stats-json` / `--trace` plumbing for the figure binaries.
//!
//! Every binary builds a [`BenchRun`] at startup, mirrors its printed rows
//! into it, records machine statistics under named scopes, and calls
//! [`BenchRun::finish`] last:
//!
//! ```text
//! fig6 --stats-json fig6.json          # versioned sa-stats v1 document
//! fig6 --trace fig6.trace.json         # Chrome trace_event file (Perfetto)
//! fig6 --sample-interval 16 --trace t  # denser cycle sampling
//! fig6 --fast-forward off              # disable event-horizon skipping
//! ```
//!
//! `--fast-forward` (default `on`) controls the event-horizon scheduler: a
//! wall-clock optimization that jumps the simulated clock over provably-idle
//! stretches. Simulated cycle counts, statistics, and figure outputs are
//! byte-identical either way (CI enforces this); `off` exists for debugging
//! and for measuring the speedup itself.
//!
//! With neither flag the run does no extra work. With either flag, `finish`
//! replays a small deterministic histogram — the *canonical workload* — on
//! the binary's machine configuration with tracing and cycle sampling
//! enabled. That run guarantees the stats document always carries
//! scatter-unit, cache, DRAM and queue metrics (under the `canonical.`
//! prefix) regardless of which experiment the binary sweeps, and it is the
//! workload whose timeline `--trace` captures.

use std::fmt::Display;
use std::sync::Arc;

use sa_core::{drive_scatter_probed, NodeMemSys, ScatterKernel, StallBreakdown};
use sa_faults::FaultPlan;
use sa_memo::{Fingerprint, ResultCache};
use sa_sim::{MachineConfig, Rng64};
use sa_telemetry::{
    global_progress, progress_enabled, stats_json_full, validate_stats_json, ChromeTrace,
    HostProfiler, Introspect, Json, MetricsRegistry, ProbeRecorder, ReqTracer, Scope, SeriesSet,
};

use crate::args::Args;
use crate::cli::Cli;

/// Elements in the canonical histogram workload replayed by [`BenchRun::finish`].
pub const CANONICAL_ELEMENTS: u64 = 4096;
/// Index range of the canonical histogram workload.
pub const CANONICAL_RANGE: u64 = 512;
const CANONICAL_SEED: u64 = 0x7E1E_0001;

/// Default request-lifecycle sampling interval when stats or trace output is
/// requested: one in this many requests gets a full stage-by-stage timeline.
/// Override with `--req-sample N` (0 disables request tracing).
pub const DEFAULT_REQ_SAMPLE: u64 = 64;

/// Machine parameters as a JSON object — the `config` block of the stats
/// document. Covers every knob the experiments sweep, so two documents with
/// equal `config` blocks came from identically-configured machines.
pub fn machine_config_json(cfg: &MachineConfig) -> Json {
    let mut o = Json::obj();
    o.push("ghz", Json::Num(cfg.ghz));
    o.push("cache_banks", Json::UInt(cfg.cache.banks as u64));
    o.push("cache_bytes", Json::UInt(cfg.cache.total_bytes));
    o.push("cache_line_bytes", Json::UInt(cfg.cache.line_bytes));
    o.push("cache_ways", Json::UInt(cfg.cache.ways as u64));
    o.push(
        "mshrs_per_bank",
        Json::UInt(cfg.cache.mshrs_per_bank as u64),
    );
    o.push("cs_entries", Json::UInt(cfg.sa.cs_entries as u64));
    o.push("fu_latency", Json::UInt(u64::from(cfg.sa.fu_latency)));
    o.push("dram_channels", Json::UInt(cfg.dram.channels as u64));
    o.push("ag_count", Json::UInt(cfg.ag.count as u64));
    o.push("ag_width", Json::UInt(u64::from(cfg.ag.width)));
    o.push("clusters", Json::UInt(cfg.compute.clusters as u64));
    o
}

/// Per-binary stats/trace collector; see the module docs for the protocol.
#[derive(Debug)]
pub struct BenchRun {
    bench: String,
    cfg: MachineConfig,
    registry: MetricsRegistry,
    rows: Vec<Json>,
    stats_path: Option<String>,
    trace_path: Option<String>,
    sample_interval: u64,
    req_sample: u64,
    latency: Vec<(String, Json)>,
    attribution: Vec<(String, Json)>,
    probe_interval: u64,
    host_profile: bool,
    profiler: HostProfiler,
    cache: Option<Arc<ResultCache>>,
    /// The installed fault plan as JSON (or `Null`) — part of every cache
    /// key, because the plan changes what the simulations compute.
    fault_key: Json,
}

/// What [`BenchRun::finish`] needs from the canonical run regardless of
/// whether it was simulated or replayed from the result cache.
struct CanonicalArtifacts {
    series: SeriesSet,
    trace_json: String,
    trace_events: u64,
}

impl BenchRun {
    /// A collector reading `--stats-json`, `--trace` and `--sample-interval`
    /// from the process arguments. Also installs the process-wide run
    /// controls (`--fast-forward`, `--faults`) via [`Cli`].
    pub fn from_env(bench: &str, cfg: &MachineConfig) -> BenchRun {
        BenchRun::from_cli(bench, cfg, &Cli::from_env())
    }

    /// A collector reading its flags from pre-parsed `args` (routed through
    /// [`Cli`], which installs the process-wide run controls).
    pub fn from_args(bench: &str, cfg: &MachineConfig, args: &Args) -> BenchRun {
        BenchRun::from_cli(bench, cfg, &Cli::from_args(args.clone()))
    }

    /// A collector reading its flags from an already-parsed [`Cli`].
    pub fn from_cli(bench: &str, cfg: &MachineConfig, cli: &Cli) -> BenchRun {
        let args = cli.args();
        let sample_interval = args
            .get_or("sample-interval", sa_core::DEFAULT_SAMPLE_INTERVAL)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
        let req_sample = args
            .get_or("req-sample", DEFAULT_REQ_SAMPLE)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
        let cache = match cli.cache_dir() {
            None => None,
            Some(dir) if cli.probe_interval() > 0 => {
                // Live probe snapshots stream *during* a simulation; a cache
                // hit skips the simulation, so there would be nothing to
                // stream. Disable caching rather than silently going dark.
                eprintln!(
                    "note: result cache at {dir} disabled for this run \
                     (live probing cannot replay from cache)"
                );
                None
            }
            Some(dir) => match ResultCache::open(dir) {
                Ok(c) => Some(Arc::new(c)),
                Err(e) => {
                    eprintln!("warning: cannot open result cache at {dir}: {e}; caching off");
                    None
                }
            },
        };
        BenchRun {
            bench: bench.to_owned(),
            cfg: *cfg,
            registry: MetricsRegistry::new(),
            rows: Vec::new(),
            stats_path: args.raw("stats-json").map(str::to_owned),
            trace_path: args.raw("trace").map(str::to_owned),
            sample_interval,
            req_sample,
            latency: Vec::new(),
            attribution: Vec::new(),
            probe_interval: cli.probe_interval(),
            host_profile: cli.host_profile(),
            profiler: HostProfiler::enabled(cli.host_profile()),
            cache,
            fault_key: cli.fault_plan().map_or(Json::Null, FaultPlan::to_json),
        }
    }

    /// Probe snapshot cadence for this run's simulations (`--probe-interval`,
    /// 0 = off); binaries pass it to their own [`Introspect`] bundles.
    pub fn probe_interval(&self) -> u64 {
        self.probe_interval
    }

    /// Whether the `host_profile` sidecar was requested (`--host-profile`).
    pub fn host_profile_enabled(&self) -> bool {
        self.host_profile
    }

    /// Fold a run's host-time phase attribution into this binary's
    /// `host_profile` sidecar.
    pub fn absorb_host_profile(&mut self, other: &HostProfiler) {
        self.profiler.absorb(other);
    }

    /// The content-addressed result cache, when `--cache`/`SA_CACHE_DIR`
    /// enabled one (and live probing did not veto it). Binaries pass this
    /// to [`crate::sweep::map_cached`].
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_deref()
    }

    /// A cache fingerprint for one of this binary's sweep points. Carries
    /// everything shared by every point — bench name, full machine
    /// configuration, fault plan — plus the caller's point description;
    /// extend it with the point's own parameters (sizes, seeds, input
    /// digests) via the [`Fingerprint`] builder methods. Knobs that cannot
    /// change simulated results (`--jobs`, `--step-threads`,
    /// `--node-threads`, `--fast-forward`) are deliberately excluded.
    pub fn point_key(&self, point: &str) -> Fingerprint {
        Fingerprint::new("bench-point")
            .str("bench", &self.bench)
            .str("point", point)
            .field("config", self.cfg.fingerprint_json())
            .field("faults", self.fault_key.clone())
    }

    /// Merge a sweep point's metrics into this binary's registry (counters
    /// add, gauges overwrite, histograms merge element-wise) — replaying
    /// cached points in item order reproduces direct recording exactly.
    pub fn absorb_metrics(&mut self, metrics: &MetricsRegistry) {
        self.registry.merge(metrics);
    }

    /// An [`Introspect`] bundle for one of the binary's own simulations:
    /// the `--probe-interval` cadence (labelled `label`, streaming to the
    /// process-wide progress sink), the progress sink itself, and a
    /// profiler when `--host-profile` was given. Fold the profiler back
    /// with [`BenchRun::absorb_host_profile`] after the run.
    pub fn introspect(&self, label: &str) -> Introspect {
        let progress = global_progress();
        Introspect {
            recorder: ProbeRecorder::every(self.probe_interval)
                .with_label(label)
                .with_sink(progress.clone()),
            progress,
            profiler: HostProfiler::enabled(self.host_profile),
        }
    }

    /// The request-lifecycle sampling interval the binary should run its
    /// kernels with (`MachineConfig::req_sample`): the `--req-sample` flag,
    /// or [`DEFAULT_REQ_SAMPLE`] when any output file was requested and 0
    /// (off) otherwise — disabled runs must not pay for tracing.
    pub fn req_sample(&self) -> u64 {
        if self.enabled() {
            self.req_sample
        } else {
            0
        }
    }

    /// Whether any telemetry consumer exists: an output file, or a live
    /// probe cadence (`--probe-interval`/`--probe-listen`) — a watcher
    /// with no snapshots to look at would defeat the point, so the
    /// canonical run in [`BenchRun::finish`] fires for probes too.
    pub fn enabled(&self) -> bool {
        self.stats_path.is_some() || self.trace_path.is_some() || self.probe_interval > 0
    }

    /// Print one table row (like [`crate::row`]) and mirror it into the
    /// stats document's `rows` array as `{"label": ..., "cells": {...}}`.
    pub fn row(&mut self, label: impl Display, cells: &[(&str, String)]) {
        crate::row(&label, cells);
        let mut obj = Json::obj();
        obj.push("label", Json::Str(label.to_string()));
        let mut c = Json::obj();
        for (name, value) in cells {
            c.push(name, Json::Str(value.clone()));
        }
        obj.push("cells", c);
        // Every finished table row doubles as a progress event, so any
        // binary that prints rows reports liveness with no per-binary code.
        if progress_enabled() {
            let mut ev = Json::obj();
            ev.push("kind", Json::Str("row".to_owned()));
            ev.push("bench", Json::Str(self.bench.clone()));
            ev.push("row", obj.clone());
            global_progress().emit(&ev);
        }
        self.rows.push(obj);
    }

    /// A metrics scope rooted at `path` for recording experiment counters.
    pub fn scope(&mut self, path: &str) -> Scope<'_> {
        self.registry.scope(path)
    }

    /// The metrics recorded so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Record a kernel's per-stage latency report (`latency.<kernel>` in the
    /// v2 document). No-op when the tracer recorded nothing, so untraced
    /// runs emit no empty sections.
    pub fn record_latency(&mut self, kernel: &str, tracer: &ReqTracer) {
        if tracer.issued_len() > 0 {
            self.latency
                .push((kernel.to_owned(), tracer.latency_json()));
        }
    }

    /// Record a kernel's stall-attribution table (`attribution.<kernel>` in
    /// the v2 document).
    pub fn record_attribution(&mut self, kernel: &str, stalls: &StallBreakdown) {
        self.attribution.push((kernel.to_owned(), stalls.to_json()));
    }

    /// Run the canonical workload if needed, write the requested files, and
    /// consume the collector. Prints a note per file written; exits nonzero
    /// on I/O failure so scripts notice.
    pub fn finish(mut self) {
        if !self.enabled() {
            // Sweep points may still have hit the cache — report that even
            // though there are no files to write.
            self.emit_cache_counts();
            return;
        }
        let art = self.run_canonical();
        if let Some(path) = self.trace_path.clone() {
            if let Err(e) = std::fs::write(&path, art.trace_json.as_bytes()) {
                eprintln!("error: could not write trace to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote Chrome trace ({} events) to {path}", art.trace_events);
        }
        if let Some(path) = self.stats_path.clone() {
            let section = |entries: Vec<(String, Json)>| {
                if entries.is_empty() {
                    None
                } else {
                    Some(Json::Obj(entries))
                }
            };
            let latency = section(std::mem::take(&mut self.latency));
            let attribution = section(std::mem::take(&mut self.attribution));
            let host_profile = if self.host_profile {
                let mut hp = self.profiler.to_json();
                // Cache effectiveness rides on the nondeterministic sidecar
                // only — the deterministic document body must stay
                // byte-identical between cached and fresh runs.
                if let Some(counts) = self.cache_counts_json() {
                    hp.push("cache", counts);
                }
                Some(hp)
            } else {
                None
            };
            let mut doc = stats_json_full(
                &self.bench,
                machine_config_json(&self.cfg),
                &self.registry,
                Some(&art.series),
                latency,
                attribution,
                host_profile,
                Json::Arr(std::mem::take(&mut self.rows)),
            );
            sa_telemetry::attach_bottleneck(&mut doc);
            validate_stats_json(&doc).expect("internal error: stats document must validate");
            if let Err(e) = std::fs::write(&path, doc.to_string_pretty()) {
                eprintln!("error: could not write stats to {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "wrote sa-stats v{} document to {path}",
                sa_telemetry::STATS_SCHEMA_VERSION
            );
        }
        self.emit_cache_counts();
    }

    /// Hit/miss/store counters as a JSON object, or `None` without a cache.
    fn cache_counts_json(&self) -> Option<Json> {
        let cache = self.cache.as_ref()?;
        let mut o = Json::obj();
        o.push("dir", Json::Str(cache.dir().display().to_string()));
        o.push("hits", Json::UInt(cache.hits()));
        o.push("misses", Json::UInt(cache.misses()));
        o.push("stores", Json::UInt(cache.stores()));
        Some(o)
    }

    /// Report cache effectiveness on the nondeterministic channels: a
    /// `{"kind":"cache"}` progress event plus a stderr note.
    fn emit_cache_counts(&self) {
        let Some(counts) = self.cache_counts_json() else {
            return;
        };
        let cache = self.cache.as_ref().expect("counts imply a cache");
        eprintln!(
            "result cache: {} hits, {} misses, {} stores in {}",
            cache.hits(),
            cache.misses(),
            cache.stores(),
            cache.dir().display()
        );
        if progress_enabled() {
            let mut ev = Json::obj();
            ev.push("kind", Json::Str("cache".to_owned()));
            ev.push("bench", Json::Str(self.bench.clone()));
            ev.push("cache", counts);
            global_progress().emit(&ev);
        }
    }

    /// The canonical-run cache fingerprint: the workload constants, the
    /// full machine configuration, the fault plan, and the two telemetry
    /// knobs that shape the recorded document (`--sample-interval`,
    /// `--req-sample`). Execution-irrelevant knobs are excluded — a cached
    /// replay answers for any `--jobs`/`--fast-forward` combination.
    fn canonical_key(&self) -> Fingerprint {
        Fingerprint::new("bench-canonical")
            .u64("elements", CANONICAL_ELEMENTS)
            .u64("range", CANONICAL_RANGE)
            .u64("seed", CANONICAL_SEED)
            .field("config", self.cfg.fingerprint_json())
            .field("faults", self.fault_key.clone())
            .u64("sample_interval", self.sample_interval)
            .u64("req_sample", self.req_sample())
    }

    /// The canonical workload's artifacts — replayed from the result cache
    /// when possible, simulated (and stored) otherwise. Either path leaves
    /// the registry, latency, and attribution sections in the same state,
    /// so the finished document is byte-identical.
    fn run_canonical(&mut self) -> CanonicalArtifacts {
        let Some(cache) = self.cache.clone() else {
            return self.compute_canonical().0;
        };
        let key = self.canonical_key();
        if let Some(payload) = cache.lookup(&key) {
            if let Some(art) = self.adopt_canonical(&payload) {
                return art;
            }
        }
        let (art, payload) = self.compute_canonical();
        let _ = cache.store(&key, &payload);
        art
    }

    /// Simulate the deterministic canonical histogram on this binary's
    /// machine configuration, traced and cycle-sampled; record its metrics
    /// under the `canonical.` scope and build the cache payload.
    fn compute_canonical(&mut self) -> (CanonicalArtifacts, Json) {
        let mut rng = Rng64::new(CANONICAL_SEED);
        let indices: Vec<u64> = (0..CANONICAL_ELEMENTS)
            .map(|_| rng.below(CANONICAL_RANGE))
            .collect();
        let kernel = ScatterKernel::histogram(0, indices);
        let mut node = NodeMemSys::with_tracer(self.cfg, 0, false, ChromeTrace::new());
        node.set_sample_interval(self.sample_interval);
        node.set_req_sample(self.req_sample());
        let mut probe = self.introspect("canonical");
        let run = drive_scatter_probed(node, &kernel, false, &mut probe);
        self.profiler.absorb(&probe.profiler);
        let mut canon = MetricsRegistry::new();
        {
            let mut scope = canon.scope("canonical");
            run.node.record_metrics(&mut scope);
            scope.counter("cycles", run.cycles);
            scope.counter("drain_cycles", run.drain_cycles);
            scope.counter("skipped_cycles", run.skipped_cycles);
        }
        self.registry.merge(&canon);
        let tracer = run.node.req_tracer();
        let latency = if tracer.issued_len() > 0 {
            Some(tracer.latency_json())
        } else {
            None
        };
        if let Some(l) = &latency {
            self.latency.push(("canonical".to_owned(), l.clone()));
        }
        let attribution = run.stall_breakdown().to_json();
        self.attribution
            .push(("canonical".to_owned(), attribution.clone()));
        let series = run.node.series().clone();
        let trace = run.node.into_tracer();
        let trace_json = trace.to_json_string();
        let trace_events = trace.event_count() as u64;
        let mut payload = Json::obj();
        payload.push("metrics", canon.to_json());
        payload.push("series", series.to_json());
        payload.push("latency", latency.unwrap_or(Json::Null));
        payload.push("attribution", attribution);
        payload.push("trace_events", Json::UInt(trace_events));
        payload.push("trace", Json::Str(trace_json.clone()));
        (
            CanonicalArtifacts {
                series,
                trace_json,
                trace_events,
            },
            payload,
        )
    }

    /// Replay a cached canonical payload into this collector; `None` when
    /// the payload is malformed (the caller recomputes).
    fn adopt_canonical(&mut self, payload: &Json) -> Option<CanonicalArtifacts> {
        let canon = MetricsRegistry::from_json(payload.get("metrics")?).ok()?;
        let series = SeriesSet::from_json(payload.get("series")?).ok()?;
        let latency = payload.get("latency")?;
        let attribution = payload.get("attribution")?.clone();
        let trace_events = payload.get("trace_events")?.as_u64()?;
        let trace_json = payload.get("trace")?.as_str()?.to_owned();
        self.registry.merge(&canon);
        if !matches!(latency, Json::Null) {
            self.latency.push(("canonical".to_owned(), latency.clone()));
        }
        self.attribution.push(("canonical".to_owned(), attribution));
        Some(CanonicalArtifacts {
            series,
            trace_json,
            trace_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn disabled_without_flags() {
        let b = BenchRun::from_args("t", &MachineConfig::merrimac(), &parse("--quick"));
        assert!(!b.enabled());
        b.finish(); // must be a no-op, not a crash
    }

    #[test]
    fn flags_are_parsed() {
        let a = parse("--stats-json out.json --trace t.json --sample-interval 16");
        let b = BenchRun::from_args("t", &MachineConfig::merrimac(), &a);
        assert!(b.enabled());
        assert_eq!(b.stats_path.as_deref(), Some("out.json"));
        assert_eq!(b.trace_path.as_deref(), Some("t.json"));
        assert_eq!(b.sample_interval, 16);
    }

    #[test]
    fn canonical_run_populates_required_scopes() {
        let a = parse("--stats-json x.json");
        let mut b = BenchRun::from_args("t", &MachineConfig::merrimac(), &a);
        let art = b.run_canonical();
        assert!(!art.series.is_empty());
        assert!(art.trace_events > 0);
        for needle in [
            "canonical.sa.",
            "canonical.cache.",
            "canonical.dram.",
            "canonical.queue.",
        ] {
            assert!(
                b.metrics().iter().any(|(p, _)| p.contains(needle)),
                "missing {needle}"
            );
        }
    }

    #[test]
    fn cached_canonical_replays_byte_identically() {
        let dir =
            std::env::temp_dir().join(format!("sa-benchrun-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let argv = format!("--stats-json x.json --cache {}", dir.display());
        let run = |expect_counts: (u64, u64, u64)| {
            let mut b = BenchRun::from_args("t", &MachineConfig::merrimac(), &parse(&argv));
            let art = b.run_canonical();
            let cache = b.cache().expect("cache enabled");
            assert_eq!(
                (cache.hits(), cache.misses(), cache.stores()),
                expect_counts
            );
            (
                b.metrics().to_json().to_string_compact(),
                art.series.to_json().to_string_compact(),
                art.trace_json,
                art.trace_events,
                b.latency.len(),
                b.attribution.len(),
            )
        };
        let cold = run((0, 1, 1));
        let warm = run((1, 0, 0));
        assert_eq!(cold, warm, "warm canonical replay must be byte-identical");

        // No cache at all: same bytes again.
        let mut plain = BenchRun::from_args(
            "t",
            &MachineConfig::merrimac(),
            &parse("--stats-json x.json"),
        );
        let art = plain.run_canonical();
        assert!(plain.cache().is_none());
        assert_eq!(plain.metrics().to_json().to_string_compact(), cold.0);
        assert_eq!(art.trace_json, cold.2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_probing_disables_the_cache() {
        let b = BenchRun::from_args(
            "t",
            &MachineConfig::merrimac(),
            &parse("--cache /tmp/never-created-sa-cache --probe-interval 64"),
        );
        assert!(b.cache().is_none());
        assert!(!std::path::Path::new("/tmp/never-created-sa-cache").exists());
    }

    #[test]
    fn rows_mirror_cells() {
        let mut b = BenchRun::from_args("t", &MachineConfig::merrimac(), &parse(""));
        b.row("n=4", &[("time", "1.00us".to_owned())]);
        assert_eq!(b.rows.len(), 1);
        let label = b.rows[0].get("label").and_then(Json::as_str);
        assert_eq!(label, Some("n=4"));
        let cell = b.rows[0]
            .get("cells")
            .and_then(|c| c.get("time"))
            .and_then(Json::as_str);
        assert_eq!(cell, Some("1.00us"));
    }

    #[test]
    fn config_json_reflects_machine() {
        let mut cfg = MachineConfig::merrimac();
        cfg.sa.cs_entries = 32;
        let j = machine_config_json(&cfg);
        assert_eq!(j.get("cs_entries").and_then(Json::as_u64), Some(32));
        assert_eq!(j.get("cache_banks").and_then(Json::as_u64), Some(8));
    }
}
