//! A dependency-free `--key value` argument parser for the `explore` CLI.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A parse failure: which flag and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgError {
    /// The flag in question (without dashes).
    pub flag: String,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "--{}: {}", self.flag, self.reason)
    }
}

impl std::error::Error for ParseArgError {}

/// Parsed `--key value` / `--switch` arguments plus positional words.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments (excluding the program
    /// name). A token starting with `--` that is followed by a non-flag
    /// token becomes a key/value pair; a trailing or flag-followed `--x`
    /// becomes a switch; everything else is positional.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Args {
        let tokens: Vec<String> = raw.into_iter().collect();
        let mut out = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(flag) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    out.values.insert(flag.to_owned(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    out.switches.push(flag.to_owned());
                    i += 1;
                }
            } else {
                out.positional.push(t.clone());
                i += 1;
            }
        }
        out
    }

    /// Parse from the process environment.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// The positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether `--flag` was given (with or without a value).
    pub fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag) || self.values.contains_key(flag)
    }

    /// The raw value of `--flag`, if present.
    pub fn raw(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// Every flag name that was given (switches and valued flags alike),
    /// for unknown-flag detection in binaries with a closed flag set.
    pub fn flags(&self) -> impl Iterator<Item = &str> {
        self.switches
            .iter()
            .map(String::as_str)
            .chain(self.values.keys().map(String::as_str))
    }

    /// Parse `--flag`'s value as `T`, or return `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseArgError`] when the flag is present but does not
    /// parse as `T`.
    pub fn get_or<T: FromStr>(&self, flag: &str, default: T) -> Result<T, ParseArgError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParseArgError {
                flag: flag.to_owned(),
                reason: format!("could not parse {v:?}"),
            }),
        }
    }

    /// Require `--flag` to be one of `options`; returns `default` when
    /// absent.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseArgError`] naming the valid options otherwise.
    pub fn choice<'a>(
        &'a self,
        flag: &str,
        options: &[&'a str],
        default: &'a str,
    ) -> Result<&'a str, ParseArgError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => options
                .iter()
                .find(|&&o| o == v)
                .copied()
                .ok_or_else(|| ParseArgError {
                    flag: flag.to_owned(),
                    reason: format!("{v:?} is not one of {options:?}"),
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn key_values_and_positionals() {
        let a = parse("histogram --n 1024 --range 64 --quick");
        assert_eq!(a.positional(), ["histogram"]);
        assert_eq!(a.get_or("n", 0usize).unwrap(), 1024);
        assert_eq!(a.get_or("range", 0u64).unwrap(), 64);
        assert!(a.has("quick"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("scan");
        assert_eq!(a.get_or("n", 4096usize).unwrap(), 4096);
    }

    #[test]
    fn bad_value_reports_flag() {
        let a = parse("--n frog");
        let err = a.get_or("n", 0usize).unwrap_err();
        assert_eq!(err.flag, "n");
        assert!(err.to_string().contains("frog"));
    }

    #[test]
    fn choices_validate() {
        let a = parse("--impl hw");
        assert_eq!(a.choice("impl", &["hw", "sortscan"], "hw").unwrap(), "hw");
        assert_eq!(a.choice("net", &["low", "high"], "high").unwrap(), "high");
        let b = parse("--impl carrier-pigeon");
        assert!(b.choice("impl", &["hw", "sortscan"], "hw").is_err());
    }

    #[test]
    fn switch_followed_by_flag() {
        let a = parse("--combining --nodes 4");
        assert!(a.has("combining"));
        assert_eq!(a.get_or("nodes", 1usize).unwrap(), 4);
    }

    #[test]
    fn raw_access() {
        let a = parse("--seed 42");
        assert_eq!(a.raw("seed"), Some("42"));
        assert_eq!(a.raw("nope"), None);
    }
}
