//! The perf-regression gate behind `analyze --diff <baseline> <candidate>`.
//!
//! Two sa-stats documents are compared on their timing-relevant content:
//!
//! * every `metrics` counter whose path ends in `.cycles` or
//!   `.drain_cycles` (the per-kernel run lengths);
//! * every per-stage and end-to-end latency percentile (`p50`, `p90`,
//!   `p99`, `max`) of every kernel in the v2 `latency` section.
//!
//! A metric regresses when the candidate exceeds the baseline by more than a
//! relative threshold *and* a small absolute slack (so a 3→4-cycle p50 on a
//! tiny stage does not trip the gate). A compared metric missing from the
//! candidate is itself a regression: silently dropping instrumentation must
//! not pass the gate. The simulator is deterministic, so in CI — same
//! machine configuration, same seed — an honest candidate reproduces the
//! committed baseline exactly and the thresholds only absorb intentional,
//! reviewed drift.

use sa_telemetry::Json;

/// Gate thresholds; [`DiffConfig::default`] matches the CI perf gate.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DiffConfig {
    /// Maximum tolerated relative increase (0.05 = +5%).
    pub threshold: f64,
    /// Increases of at most this many cycles never regress, whatever the
    /// ratio says.
    pub min_abs: f64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            threshold: 0.05,
            min_abs: 4.0,
        }
    }
}

/// One metric that got worse (or disappeared).
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Dotted path of the offending metric, e.g.
    /// `latency.ebe_hw.stages.fu_pipe.p99`.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value (`None` when the metric vanished).
    pub cand: Option<f64>,
}

impl Regression {
    /// Absolute increase over the baseline (`None` when the metric
    /// vanished).
    pub fn abs_delta(&self) -> Option<f64> {
        self.cand.map(|c| c - self.base)
    }

    /// Relative increase over the baseline (`None` when the metric
    /// vanished); 0.22 = +22%.
    pub fn rel_delta(&self) -> Option<f64> {
        self.cand.map(|c| c / self.base.max(1e-12) - 1.0)
    }

    /// The metric's scope: the dotted path with the final key removed
    /// (`latency.ebe_hw.stages.fu_pipe.p99` → `latency.ebe_hw.stages.fu_pipe`).
    pub fn scope(&self) -> &str {
        self.metric
            .rsplit_once('.')
            .map_or(self.metric.as_str(), |(scope, _)| scope)
    }
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cand {
            Some(c) => write!(
                f,
                "{}: {} -> {} (+{}, +{:.1}%)",
                self.metric,
                self.base,
                c,
                c - self.base,
                (c / self.base.max(1e-12) - 1.0) * 100.0
            ),
            None => write!(f, "{}: {} -> missing in candidate", self.metric, self.base),
        }
    }
}

/// The timing-relevant scalar metrics of a document, as dotted paths.
fn timing_metrics(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (path, value) in doc.get("metrics").and_then(Json::as_obj).unwrap_or(&[]) {
        let timed = path.ends_with(".cycles") || path.ends_with(".drain_cycles");
        if timed {
            if let Some(v) = value.as_f64() {
                out.push((format!("metrics.{path}"), v));
            }
        }
    }
    for (kernel, report) in doc.get("latency").and_then(Json::as_obj).unwrap_or(&[]) {
        let summaries = report
            .get("stages")
            .and_then(Json::as_obj)
            .unwrap_or(&[])
            .iter()
            .map(|(stage, s)| (format!("stages.{stage}"), s))
            .chain(
                report
                    .get("end_to_end")
                    .map(|s| ("end_to_end".to_owned(), s)),
            );
        for (name, summary) in summaries {
            for field in ["p50", "p90", "p99", "max"] {
                if let Some(v) = summary.get(field).and_then(Json::as_f64) {
                    out.push((format!("latency.{kernel}.{name}.{field}"), v));
                }
            }
        }
    }
    out
}

/// Compare two parsed stats documents; returns every regression, worst
/// relative increase first. An empty vector means the candidate passes.
///
/// # Errors
///
/// Returns a message when the documents are not comparable: different
/// `bench` names or different machine `config` blocks.
pub fn diff_stats(base: &Json, cand: &Json, cfg: &DiffConfig) -> Result<Vec<Regression>, String> {
    let bench_of = |doc: &Json, which: &str| {
        doc.get("bench")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("{which} document has no 'bench'"))
    };
    let b = bench_of(base, "baseline")?;
    let c = bench_of(cand, "candidate")?;
    if b != c {
        return Err(format!("comparing different benches: '{b}' vs '{c}'"));
    }
    if base.get("config") != cand.get("config") {
        return Err("machine config blocks differ; re-baseline instead of diffing".to_owned());
    }
    let cand_metrics = timing_metrics(cand);
    let mut regressions = Vec::new();
    for (metric, base_v) in timing_metrics(base) {
        let cand_v = cand_metrics
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|&(_, v)| v);
        let worse = match cand_v {
            None => true,
            Some(v) => v > base_v * (1.0 + cfg.threshold) && v - base_v > cfg.min_abs,
        };
        if worse {
            regressions.push(Regression {
                metric,
                base: base_v,
                cand: cand_v,
            });
        }
    }
    regressions.sort_by(|a, b| {
        let ratio = |r: &Regression| match r.cand {
            None => f64::INFINITY,
            Some(c) => c / r.base.max(1e-12),
        };
        ratio(b).total_cmp(&ratio(a))
    });
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(p99: u64, cycles: u64) -> Json {
        Json::parse(&format!(
            r#"{{
                "schema": "sa-stats", "version": 2, "bench": "fig9",
                "config": {{"ghz": 1.0}},
                "metrics": {{"ebe_hw.cycles": {cycles}, "ebe_hw.flops": 99}},
                "latency": {{"ebe_hw": {{
                    "sample": 64, "issued": 10, "retired": 10,
                    "stages": {{"fu_pipe": {{"count": 10, "total": 640,
                        "p50": 50, "p90": 80, "p99": {p99}, "max": 120}}}}
                }}}},
                "rows": []
            }}"#
        ))
        .expect("literal parses")
    }

    #[test]
    fn self_diff_is_clean() {
        let d = doc(100, 10_000);
        assert_eq!(diff_stats(&d, &d, &DiffConfig::default()).unwrap(), vec![]);
    }

    #[test]
    fn p99_growth_names_the_metric() {
        let r = diff_stats(&doc(100, 10_000), &doc(120, 10_000), &DiffConfig::default()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "latency.ebe_hw.stages.fu_pipe.p99");
        assert_eq!(r[0].cand, Some(120.0));
    }

    #[test]
    fn small_absolute_jitter_is_tolerated() {
        // +3 cycles is +30% relative but under the absolute slack.
        let r = diff_stats(&doc(10, 10_000), &doc(13, 10_000), &DiffConfig::default()).unwrap();
        assert_eq!(r, vec![]);
    }

    #[test]
    fn cycle_counters_are_gated() {
        let r = diff_stats(&doc(100, 10_000), &doc(100, 11_000), &DiffConfig::default()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "metrics.ebe_hw.cycles");
        // Non-timing counters (flops) are never compared.
    }

    #[test]
    fn every_regression_reports_absolute_and_relative_deltas() {
        // Two independent regressions: the p99 and the cycle counter. Both
        // must be listed, each with its absolute and relative delta, so CI
        // perf-gate logs are actionable without re-running the bench.
        let r = diff_stats(&doc(100, 10_000), &doc(150, 12_000), &DiffConfig::default()).unwrap();
        assert_eq!(r.len(), 2);
        let lines: Vec<String> = r.iter().map(ToString::to_string).collect();
        assert!(lines
            .iter()
            .any(|l| l == "latency.ebe_hw.stages.fu_pipe.p99: 100 -> 150 (+50, +50.0%)"));
        assert!(lines
            .iter()
            .any(|l| l == "metrics.ebe_hw.cycles: 10000 -> 12000 (+2000, +20.0%)"));
        // The worst relative increase sorts first.
        assert_eq!(r[0].metric, "latency.ebe_hw.stages.fu_pipe.p99");
        assert_eq!(r[0].abs_delta(), Some(50.0));
        assert_eq!(r[1].rel_delta().map(|d| (d * 100.0).round()), Some(20.0));
        assert_eq!(r[0].scope(), "latency.ebe_hw.stages.fu_pipe");
    }

    #[test]
    fn vanished_metric_regresses() {
        let mut cand = doc(100, 10_000);
        if let Json::Obj(pairs) = &mut cand {
            pairs.retain(|(k, _)| k != "latency");
        }
        let r = diff_stats(&doc(100, 10_000), &cand, &DiffConfig::default()).unwrap();
        assert!(r
            .iter()
            .any(|x| x.metric.starts_with("latency.") && x.cand.is_none()));
    }

    #[test]
    fn different_benches_do_not_compare() {
        let mut other = doc(100, 10_000);
        if let Json::Obj(pairs) = &mut other {
            for (k, v) in pairs.iter_mut() {
                if k == "bench" {
                    *v = Json::Str("fig10".into());
                }
            }
        }
        assert!(diff_stats(&doc(100, 10_000), &other, &DiffConfig::default()).is_err());
    }
}
