//! Ablation benches for the design choices called out in DESIGN.md: each
//! group varies one machine parameter of the scatter-add design and runs the
//! same workload, printing simulated-cycle effects through the measured
//! simulation time (the simulated cycle counts themselves are verified and
//! reported by the `fig*` binaries and EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_apps::histogram::{run_hw, run_sort_scan, HistogramInput};
use sa_multinode::MultiNode;
use sa_sim::{MachineConfig, NetworkConfig, Rng64};

/// Bank count ablation: the scatter-add units scale with cache banks.
fn bank_count(c: &mut Criterion) {
    let input = HistogramInput::uniform(2048, 4096, 1);
    let mut group = c.benchmark_group("ablation_banks");
    group.sample_size(10);
    for banks in [2usize, 4, 8] {
        let mut cfg = MachineConfig::merrimac();
        cfg.cache.banks = banks;
        group.bench_with_input(BenchmarkId::from_parameter(banks), &cfg, |b, cfg| {
            b.iter(|| run_hw(cfg, &input).report.cycles)
        });
    }
    group.finish();
}

/// FU latency ablation on the full machine (Figure 11 uses the rig).
fn fu_latency(c: &mut Criterion) {
    let input = HistogramInput::uniform(2048, 2, 2); // dependent chains
    let mut group = c.benchmark_group("ablation_fu_latency");
    group.sample_size(10);
    for lat in [1u32, 4, 8] {
        let mut cfg = MachineConfig::merrimac();
        cfg.sa.fu_latency = lat;
        group.bench_with_input(BenchmarkId::from_parameter(lat), &cfg, |b, cfg| {
            b.iter(|| run_hw(cfg, &input).report.cycles)
        });
    }
    group.finish();
}

/// Software batch-size ablation (§4.1: 256 was the paper's optimum).
fn sw_batch_size(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let input = HistogramInput::uniform(4096, 2048, 3);
    let mut group = c.benchmark_group("ablation_sw_batch");
    group.sample_size(10);
    for batch in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| run_sort_scan(&cfg, &input, batch).report.cycles)
        });
    }
    group.finish();
}

/// Multi-node cache-combining ablation on a high-locality trace.
fn combining(c: &mut Criterion) {
    let machine = MachineConfig::merrimac();
    let mut rng = Rng64::new(4);
    let trace: Vec<u64> = (0..4096).map(|_| rng.below(128)).collect();
    let values = vec![1.0; trace.len()];
    let mut group = c.benchmark_group("ablation_combining");
    group.sample_size(10);
    for (name, combining) in [("direct", false), ("combining", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                MultiNode::new(machine, 4, NetworkConfig::low(), combining)
                    .run_trace(&trace, &values)
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bank_count, fu_latency, sw_batch_size, combining);
criterion_main!(benches);
