//! Micro-benchmarks of the scatter-add unit: simulated-machine cycle counts
//! are asserted in the crates' tests; these benches measure the *simulator's*
//! throughput on characteristic traffic patterns so regressions in the model
//! show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_core::{drive_scatter, ScatterKernel};
use sa_sim::{MachineConfig, Rng64};

fn unit_patterns(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let n = 2048usize;
    let mut group = c.benchmark_group("scatter_unit");
    group.sample_size(10);

    // Distinct addresses: additions pipeline through the FUs.
    let distinct = ScatterKernel::histogram(0, (0..n as u64).collect());
    group.bench_function("distinct_addresses", |b| {
        b.iter(|| drive_scatter(&cfg, &distinct, false).cycles)
    });

    // One hot address: the dependent-add chain (Figure 7's left edge).
    let hot = ScatterKernel::histogram(0, vec![0; n]);
    group.bench_function("hot_address_chain", |b| {
        b.iter(|| drive_scatter(&cfg, &hot, false).cycles)
    });

    // Uniform random over a cache-resident range.
    let mut rng = Rng64::new(1);
    let uniform = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(4096)).collect());
    group.bench_function("uniform_4096_bins", |b| {
        b.iter(|| drive_scatter(&cfg, &uniform, false).cycles)
    });

    // Fetch-op variant (the §3.3 extension) on one counter.
    let fetch = ScatterKernel::histogram(0, vec![0; 512]);
    group.bench_function("fetch_and_add_queue_alloc", |b| {
        b.iter(|| drive_scatter(&cfg, &fetch, true).fetched.len())
    });

    group.finish();
}

fn combining_store_sizes(c: &mut Criterion) {
    let mut rng = Rng64::new(2);
    let n = 1024usize;
    let indices: Vec<u64> = (0..n).map(|_| rng.below(8192)).collect();
    let kernel = ScatterKernel::histogram(0, indices);
    let mut group = c.benchmark_group("combining_store_size");
    group.sample_size(10);
    for cs in [2usize, 8, 32] {
        let mut cfg = MachineConfig::merrimac();
        cfg.sa.cs_entries = cs;
        group.bench_with_input(BenchmarkId::from_parameter(cs), &cfg, |b, cfg| {
            b.iter(|| drive_scatter(cfg, &kernel, false).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, unit_patterns, combining_store_sizes);
criterion_main!(benches);
