//! Wall-clock cost of the telemetry layer on the simulator hot loop.
//!
//! Three variants of the same 8K-element histogram drive:
//!
//! * `disabled` — the default `NullTrace` path with sampling off: the
//!   per-tick cost is one integer compare, so this must stay within noise
//!   (<2%) of the pre-telemetry simulator;
//! * `sampled` — `NullTrace` with the default 64-cycle sampling interval
//!   (time-series only, no trace events);
//! * `chrome` — full Chrome-trace event capture at the default interval;
//! * `req_traced_64` — request-lifecycle tracing of 1 in 64 requests
//!   (the `--req-sample` default of the figure binaries);
//! * `req_traced_all` — every request's lifecycle recorded (the worst
//!   case: one `BTreeMap` record per request);
//! * `probe_off` — the probed driver entry point with a disabled
//!   [`Introspect`]: the probe registry's zero-cost path, which must match
//!   `disabled` (each gate is one branch on an off recorder/progress);
//! * `probe_512` — an `sa-probe` snapshot of the whole node every 512
//!   cycles, kept in memory;
//! * `probe_512_heartbeat` — the same cadence streamed to a null writer
//!   with heartbeats enabled (the `--probe-listen` shape);
//! * `host_profiled` — scoped wall-clock timers around every loop phase
//!   (the `--host-profile` shape).
//!
//! Compare the `disabled` median against the others to see what each level
//! of observability costs. `disabled` also covers the request tracer's off
//! path: with `req_sample == 0` every tracer call short-circuits on one
//! integer compare.

use criterion::{criterion_group, criterion_main, Criterion};
use sa_core::{drive_scatter, drive_scatter_probed, drive_scatter_with, NodeMemSys, ScatterKernel};
use sa_sim::{MachineConfig, Rng64};
use sa_telemetry::{ChromeTrace, HostProfiler, Introspect, NullTrace, ProbeRecorder, Progress};

fn kernel() -> ScatterKernel {
    let mut rng = Rng64::new(0xBE7C);
    ScatterKernel::histogram(0, (0..8192).map(|_| rng.below(4096)).collect())
}

fn telemetry_overhead(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let k = kernel();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("disabled", |b| {
        b.iter(|| drive_scatter(&cfg, &k, false).cycles)
    });
    group.bench_function("sampled", |b| {
        b.iter(|| {
            let mut node = NodeMemSys::with_tracer(cfg, 0, false, NullTrace);
            node.set_sample_interval(sa_core::DEFAULT_SAMPLE_INTERVAL);
            drive_scatter_with(node, &k, false).cycles
        })
    });
    group.bench_function("chrome", |b| {
        b.iter(|| {
            let node = NodeMemSys::with_tracer(cfg, 0, false, ChromeTrace::new());
            drive_scatter_with(node, &k, false).cycles
        })
    });
    for (name, sample) in [("req_traced_64", 64), ("req_traced_all", 1)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut node = NodeMemSys::with_tracer(cfg, 0, false, NullTrace);
                node.set_req_sample(sample);
                drive_scatter_with(node, &k, false).cycles
            })
        });
    }
    group.bench_function("probe_off", |b| {
        b.iter(|| {
            let node = NodeMemSys::new(cfg, 0, false);
            let mut probe = Introspect::off();
            drive_scatter_probed(node, &k, false, &mut probe).cycles
        })
    });
    group.bench_function("probe_512", |b| {
        b.iter(|| {
            let node = NodeMemSys::new(cfg, 0, false);
            let mut probe = Introspect::off();
            probe.recorder = ProbeRecorder::every(512);
            drive_scatter_probed(node, &k, false, &mut probe).cycles
        })
    });
    group.bench_function("probe_512_heartbeat", |b| {
        b.iter(|| {
            let node = NodeMemSys::new(cfg, 0, false);
            let sink = Progress::to_writer(Box::new(std::io::sink()));
            let mut probe = Introspect::off();
            probe.recorder = ProbeRecorder::every(512).with_sink(sink.clone());
            probe.progress = sink;
            drive_scatter_probed(node, &k, false, &mut probe).cycles
        })
    });
    group.bench_function("host_profiled", |b| {
        b.iter(|| {
            let node = NodeMemSys::new(cfg, 0, false);
            let mut probe = Introspect::off();
            probe.profiler = HostProfiler::on();
            drive_scatter_probed(node, &k, false, &mut probe).cycles
        })
    });
    group.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
