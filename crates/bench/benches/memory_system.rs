//! Benches of the memory-system substrates: DRAM channel, cache bank, and
//! crossbar simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use sa_cache::{AccessKind, CacheAccess, CacheBank};
use sa_mem::{BackingStore, DramChannel, DramCommand, DramKind, SimpleMemory};
use sa_net::{Crossbar, Message};
use sa_sim::{
    Addr, CacheConfig, Cycle, DramConfig, MemOp, MemRequest, NetworkConfig, Origin, Rng64,
};

fn dram_channel(c: &mut Criterion) {
    c.bench_function("dram_channel_stream_10k_cycles", |b| {
        b.iter(|| {
            let cfg = DramConfig::default();
            let mut store = BackingStore::new();
            let mut ch = DramChannel::new(cfg);
            let mut now = Cycle(0);
            let mut id = 0u64;
            let mut words = 0u64;
            for _ in 0..10_000 {
                now += 1;
                while ch.can_accept() {
                    id += 1;
                    let _ = ch.try_submit(
                        DramCommand {
                            id,
                            req: Some(id),
                            base: Addr(id * 32),
                            words: 4,
                            kind: DramKind::Read,
                            origin: Origin::CacheBank { node: 0, bank: 0 },
                        },
                        now,
                    );
                }
                if let Some(r) = ch.tick(now, &mut store) {
                    words += r.data.len() as u64;
                }
            }
            words
        })
    });
}

fn cache_bank_hits(c: &mut Criterion) {
    c.bench_function("cache_bank_hit_stream_8k", |b| {
        let cfg = CacheConfig::default();
        b.iter(|| {
            let mut bank = CacheBank::new(cfg, 0, 0);
            // Zero-alloc a few lines, then hammer them with hits.
            let mut lines = Vec::new();
            for l in 0.. {
                if cfg.bank_of_line(l) == 0 {
                    lines.push(l);
                    if lines.len() == 8 {
                        break;
                    }
                }
            }
            let mut now = Cycle(0);
            let mut sum = 0u64;
            for i in 0..8192u64 {
                now += 1;
                let addr = Addr(lines[(i % 8) as usize] * cfg.line_bytes);
                let acc = CacheAccess {
                    id: i,
                    addr,
                    kind: if i < 8 {
                        AccessKind::Read { zero_alloc: true }
                    } else {
                        AccessKind::Read { zero_alloc: false }
                    },
                    origin: Origin::AddrGen { node: 0, ag: 0 },
                };
                let _ = bank.try_access(acc, now);
                while let Some(r) = bank.pop_ready(now) {
                    sum = sum.wrapping_add(r.bits);
                }
            }
            sum
        })
    });
}

fn simple_memory(c: &mut Criterion) {
    c.bench_function("simple_memory_stream_8k", |b| {
        b.iter(|| {
            let mut store = BackingStore::new();
            let mut mem = SimpleMemory::new(16, 2);
            let mut now = Cycle(0);
            let mut done = 0u64;
            let mut i = 0u64;
            while done < 8192 {
                now += 1;
                let req = MemRequest {
                    id: i,
                    addr: Addr::from_word_index(i % 1024),
                    op: MemOp::Read,
                    origin: Origin::SaUnit { node: 0, bank: 0 },
                };
                if mem.try_access(req, now, &mut store) {
                    i += 1;
                }
                if mem.tick(now).is_some() {
                    done += 1;
                }
            }
            now.raw()
        })
    });
}

fn crossbar(c: &mut Criterion) {
    c.bench_function("crossbar_4node_shuffle_4k_msgs", |b| {
        b.iter(|| {
            let mut net: Crossbar<u64> = Crossbar::new(4, NetworkConfig::high());
            let mut rng = Rng64::new(3);
            let mut now = Cycle(0);
            let mut sent = 0u64;
            let mut recv = 0u64;
            while recv < 4096 {
                now += 1;
                for s in 0..4 {
                    if sent < 4096 && net.can_inject(s) {
                        let d = (s + 1 + rng.below(3) as usize) % 4;
                        let _ = net.try_inject(Message::new(s, d, 1, sent));
                        sent += 1;
                    }
                }
                net.tick(now);
                for d in 0..4 {
                    while net.pop_delivered(d).is_some() {
                        recv += 1;
                    }
                }
            }
            now.raw()
        })
    });
}

criterion_group!(
    benches,
    dram_channel,
    cache_bank_hits,
    simple_memory,
    crossbar
);
criterion_main!(benches);
