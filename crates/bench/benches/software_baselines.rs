//! Benches of the software scatter-add building blocks (functional layer):
//! bitonic sort, segmented scan, the batched pipeline, coloring, and
//! privatization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_core::ScatterKernel;
use sa_sim::{Rng64, ScalarKind};
use sa_sw::{
    bitonic_sort_pairs, color_assignment, inclusive_scan_add, privatization_result, segment_heads,
    segmented_scan_add, sort_scan_result,
};

fn sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitonic_sort");
    for size in [256usize, 1024, 4096] {
        let mut rng = Rng64::new(size as u64);
        let keys: Vec<u64> = (0..size).map(|_| rng.below(1 << 20)).collect();
        let vals: Vec<u64> = (0..size as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut v = vals.clone();
                bitonic_sort_pairs(&mut k, &mut v)
            })
        });
    }
    group.finish();
}

fn scans(c: &mut Criterion) {
    let mut rng = Rng64::new(7);
    let n = 16_384;
    let xs: Vec<u64> = (0..n).map(|_| rng.below(100)).collect();
    let mut keys: Vec<u64> = (0..n as u64).map(|_| rng.below(512)).collect();
    keys.sort_unstable();
    let heads = segment_heads(&keys);
    let mut group = c.benchmark_group("scan");
    group.bench_function("inclusive_scan_16k", |b| {
        b.iter(|| inclusive_scan_add(&xs, ScalarKind::I64))
    });
    group.bench_function("segmented_scan_16k", |b| {
        b.iter(|| segmented_scan_add(&xs, &heads, ScalarKind::I64))
    });
    group.finish();
}

fn batched_pipeline(c: &mut Criterion) {
    let mut rng = Rng64::new(9);
    let n = 8192;
    let kernel = ScatterKernel::histogram(0, (0..n).map(|_| rng.below(2048)).collect());
    let mut group = c.benchmark_group("sort_scan_functional");
    group.sample_size(20);
    for batch in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| sort_scan_result(&kernel, 2048, batch))
        });
    }
    group.finish();
}

fn other_baselines(c: &mut Criterion) {
    let mut rng = Rng64::new(11);
    let n = 8192;
    let indices: Vec<u64> = (0..n).map(|_| rng.below(512)).collect();
    let kernel = ScatterKernel::histogram(0, indices.clone());
    let mut group = c.benchmark_group("baselines");
    group.bench_function("color_assignment_8k", |b| {
        b.iter(|| color_assignment(&indices))
    });
    group.bench_function("privatization_8k_512bins", |b| {
        b.iter(|| privatization_result(&kernel, 512, 32))
    });
    group.finish();
}

criterion_group!(benches, sorting, scans, batched_pipeline, other_baselines);
criterion_main!(benches);
