//! Reduced-scale end-to-end versions of the paper's figures, one Criterion
//! bench per figure, so `cargo bench` exercises every experiment path.
//! The full-scale runs (paper-size inputs, full sweeps) live in the
//! `src/bin/fig*.rs` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use sa_apps::histogram::{
    run_hw, run_privatization_default, run_sort_scan_default, HistogramInput,
};
use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::{run_csr, run_ebe_hw, run_ebe_sw_default, Csr};
use sa_core::SensitivityRig;
use sa_multinode::MultiNode;
use sa_sim::{MachineConfig, NetworkConfig, Rng64, SensitivityConfig};

fn fig6_histogram_sizes(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let input = HistogramInput::uniform(1024, 2048, 6);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("hw_1024", |b| b.iter(|| run_hw(&cfg, &input).report.cycles));
    group.bench_function("sort_scan_1024", |b| {
        b.iter(|| run_sort_scan_default(&cfg, &input).report.cycles)
    });
    group.finish();
}

fn fig7_index_ranges(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let narrow = HistogramInput::uniform(2048, 16, 7);
    let wide = HistogramInput::uniform(2048, 1 << 18, 7);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("hw_narrow_range", |b| {
        b.iter(|| run_hw(&cfg, &narrow).report.cycles)
    });
    group.bench_function("hw_wide_range", |b| {
        b.iter(|| run_hw(&cfg, &wide).report.cycles)
    });
    group.finish();
}

fn fig8_privatization(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let input = HistogramInput::uniform(1024, 512, 8);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("privatization_512bins", |b| {
        b.iter(|| run_privatization_default(&cfg, &input).report.cycles)
    });
    group.finish();
}

fn fig9_spmv(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let mesh = Mesh::generate(150, 20, 800, 9);
    let x = mesh.test_vector(9);
    let csr = Csr::from_mesh(&mesh);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("csr", |b| b.iter(|| run_csr(&cfg, &csr, &x).report.cycles));
    group.bench_function("ebe_sw", |b| {
        b.iter(|| run_ebe_sw_default(&cfg, &mesh, &x).report.cycles)
    });
    group.bench_function("ebe_hw", |b| {
        b.iter(|| run_ebe_hw(&cfg, &mesh, &x).report.cycles)
    });
    group.finish();
}

fn fig10_md(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let sys = WaterSystem::generate(80, 10);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("md_hw", |b| {
        b.iter(|| sa_apps::md::run_hw(&cfg, &sys).report.cycles)
    });
    group.bench_function("md_no_sa", |b| {
        b.iter(|| sa_apps::md::run_no_sa(&cfg, &sys).report.cycles)
    });
    group.finish();
}

fn fig11_12_sensitivity(c: &mut Criterion) {
    let mut rng = Rng64::new(11);
    let indices: Vec<u64> = (0..512).map(|_| rng.below(65_536)).collect();
    let mut group = c.benchmark_group("fig11_12");
    group.bench_function("rig_cs8_lat16", |b| {
        let rig = SensitivityRig::new(SensitivityConfig::default());
        b.iter(|| rig.run_histogram(&indices, 65_536).cycles)
    });
    group.bench_function("rig_cs64_lat256", |b| {
        let rig = SensitivityRig::new(SensitivityConfig {
            cs_entries: 64,
            fu_latency: 4,
            mem_latency: 256,
            mem_interval: 2,
        });
        b.iter(|| rig.run_histogram(&indices, 65_536).cycles)
    });
    group.finish();
}

fn fig13_multinode(c: &mut Criterion) {
    let machine = MachineConfig::merrimac();
    let mut rng = Rng64::new(13);
    let trace: Vec<u64> = (0..4096).map(|_| rng.below(256)).collect();
    let values = vec![1.0; trace.len()];
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("4node_low_direct", |b| {
        b.iter(|| {
            MultiNode::new(machine, 4, NetworkConfig::low(), false)
                .run_trace(&trace, &values)
                .cycles
        })
    });
    group.bench_function("4node_low_combining", |b| {
        b.iter(|| {
            MultiNode::new(machine, 4, NetworkConfig::low(), true)
                .run_trace(&trace, &values)
                .cycles
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    fig6_histogram_sizes,
    fig7_index_ranges,
    fig8_privatization,
    fig9_spmv,
    fig10_md,
    fig11_12_sensitivity,
    fig13_multinode
);
criterion_main!(benches);
