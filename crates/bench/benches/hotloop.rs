//! Wall-clock cost of the simulator hot loop with and without the
//! event-horizon scheduler (`--fast-forward`).
//!
//! Two fig6-scale workloads, each run with skipping on and off:
//!
//! * `histogram` — the 8K-element, 2K-bin histogram of Figure 6 on the
//!   executor path (AG startup, kernel occupancy, DRAM stalls);
//! * `spmv` — the EBE sparse matrix-vector product on a generated mesh.
//!
//! The simulated results are byte-identical between the `ff_on` and
//! `ff_off` variants (the `fast_forward_is_byte_identical` tests assert
//! it); only wall-clock time may differ. Compare medians to see what the
//! event-horizon scheduler buys on each shape. The `hotloop` *binary*
//! measures the same thing plus a memory-stall-dominated rig sweep and
//! records `BENCH_hotloop.json` for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use sa_apps::histogram::{run_hw, HistogramInput};
use sa_apps::mesh::Mesh;
use sa_apps::spmv::run_ebe_hw;
use sa_sim::MachineConfig;

fn hotloop(c: &mut Criterion) {
    let cfg = MachineConfig::merrimac();
    let hist = HistogramInput::uniform(8192, 2048, 0xF16_0006 + 8192);
    let mesh = Mesh::generate(200, 20, 1040, 14);
    let x = mesh.test_vector(15);
    let mut group = c.benchmark_group("hotloop");
    for (tag, ff) in [("ff_on", true), ("ff_off", false)] {
        sa_sim::set_fast_forward_default(ff);
        group.bench_function(format!("histogram_{tag}"), |b| {
            b.iter(|| run_hw(&cfg, &hist).report.cycles)
        });
        group.bench_function(format!("spmv_{tag}"), |b| {
            b.iter(|| run_ebe_hw(&cfg, &mesh, &x).report.cycles)
        });
    }
    sa_sim::set_fast_forward_default(true);
    group.finish();
}

criterion_group!(benches, hotloop);
criterion_main!(benches);
