//! Regression tests for `analyze trend` error wiring: a missing
//! perf-trajectory ledger is a *usage* problem (nothing benchmarked on this
//! machine yet) and must print the usage block and exit 2 — the same
//! contract as every other usage error — while a present ledger renders its
//! tail and exits 0.

use std::process::Command;

fn analyze_trend_in(dir: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .arg("trend")
        .current_dir(dir)
        .output()
        .expect("analyze runs")
}

#[test]
fn trend_without_a_ledger_prints_usage_and_exits_2() {
    // An empty scratch directory guarantees bench/history/trajectory.ndjson
    // does not exist relative to the working directory.
    let mut dir = std::env::temp_dir();
    dir.push(format!("sa-trend-usage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let out = analyze_trend_in(&dir);
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing ledger is a usage error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no perf-trajectory ledger"),
        "stderr names the problem: {stderr}"
    );
    assert!(
        stderr.contains("usage: analyze"),
        "stderr carries the usage block: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trend_with_a_ledger_renders_its_tail_and_exits_0() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("sa-trend-ok-{}", std::process::id()));
    let history = dir.join("bench/history");
    std::fs::create_dir_all(&history).expect("history dir");
    std::fs::write(
        history.join("trajectory.ndjson"),
        r#"{"schema":"sa-trajectory","version":1,"bench":"hotloop","workload":"fig6-histogram","wall_ms":1.5}"#,
    )
    .expect("seed ledger");

    let out = analyze_trend_in(&dir);
    assert_eq!(out.status.code(), Some(0), "present ledger renders fine");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("perf trajectory") && stdout.contains("workload=fig6-histogram"),
        "tail rendered: {stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
