//! Integration tests for the telemetry export: determinism of the stats
//! JSON, the Chrome trace's track layout, and zero simulated-time cost.

use sa_bench::args::Args;
use sa_bench::telemetry::{machine_config_json, BenchRun};
use sa_core::{drive_scatter, drive_scatter_probed, drive_scatter_with, NodeMemSys, ScatterKernel};
use sa_sim::{MachineConfig, Rng64};
use sa_telemetry::{validate_stats_json, ChromeTrace, Introspect, Json};

fn args(s: &str) -> Args {
    Args::parse(s.split_whitespace().map(str::to_owned))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sa-stats-test-{}-{name}", std::process::id()));
    p
}

/// Emit one stats document exactly as a figure binary would.
fn export(cfg: &MachineConfig, path: &std::path::Path) -> String {
    let flag = format!("--stats-json {}", path.display());
    let mut bench = BenchRun::from_args("determinism", cfg, &args(&flag));
    bench.scope("experiment").counter("events", 42);
    bench.row("r=1", &[("time", "1.00us".to_owned())]);
    bench.finish();
    let text = std::fs::read_to_string(path).expect("document written");
    std::fs::remove_file(path).ok();
    text
}

#[test]
fn same_config_and_seed_give_byte_identical_json() {
    let cfg = MachineConfig::merrimac();
    let a = export(&cfg, &tmp("a.json"));
    let b = export(&cfg, &tmp("b.json"));
    assert_eq!(a, b, "export must be byte-for-byte deterministic");
    let doc = Json::parse(&a).expect("valid JSON");
    validate_stats_json(&doc).expect("valid sa-stats document");
}

#[test]
fn different_config_changes_the_document() {
    let base = export(&MachineConfig::merrimac(), &tmp("c.json"));
    let mut cfg = MachineConfig::merrimac();
    cfg.sa.cs_entries = 2;
    let small = export(&cfg, &tmp("d.json"));
    assert_ne!(
        base, small,
        "the config block and canonical run must differ"
    );
}

#[test]
fn exported_document_covers_required_metric_families() {
    let text = export(&MachineConfig::merrimac(), &tmp("e.json"));
    let doc = Json::parse(&text).unwrap();
    for family in ["sa.", "cache.", "dram.", "queue."] {
        assert!(
            sa_telemetry::has_metric_matching(&doc, family),
            "missing {family} metrics"
        );
    }
    // The experiment's own metrics and rows survive the round trip.
    let events = doc
        .get("metrics")
        .and_then(|m| m.get("experiment.events"))
        .and_then(Json::as_u64);
    assert_eq!(events, Some(42));
    let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn exported_document_carries_v2_latency_and_attribution() {
    let text = export(&MachineConfig::merrimac(), &tmp("v2.json"));
    let doc = Json::parse(&text).unwrap();
    assert_eq!(
        doc.get("version").and_then(Json::as_u64),
        Some(sa_telemetry::STATS_SCHEMA_VERSION)
    );
    let lat = doc
        .get("latency")
        .and_then(|l| l.get("canonical"))
        .expect("canonical latency report");
    assert!(lat.get("retired").and_then(Json::as_u64).unwrap() > 0);
    let stages = lat.get("stages").and_then(Json::as_obj).unwrap();
    for stage in ["issued", "comb_store"] {
        let s = stages
            .iter()
            .find(|(n, _)| n == stage)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("stage {stage} missing"));
        for field in ["p50", "p90", "p99", "max"] {
            assert!(
                s.get(field).and_then(Json::as_u64).is_some(),
                "{stage}.{field}"
            );
        }
    }
    let attr = doc
        .get("attribution")
        .and_then(|a| a.get("canonical"))
        .expect("canonical attribution table");
    assert!(attr.get("cycles").and_then(Json::as_u64).unwrap() > 0);
    assert!(attr
        .get("bank_conflict")
        .and_then(|e| e.get("pct"))
        .is_some());
}

#[test]
fn request_spans_land_on_node_scoped_tracks() {
    let mut cfg = MachineConfig::merrimac();
    cfg.req_sample = 16;
    let mut rng = Rng64::new(7);
    let kernel = ScatterKernel::histogram(0, (0..2048).map(|_| rng.below(1024)).collect());
    let node = NodeMemSys::with_tracer(cfg, 0, false, ChromeTrace::new());
    let run = drive_scatter_with(node, &kernel, false);
    let doc = Json::parse(&run.node.tracer().to_json_string()).expect("valid trace JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let req_tracks = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .filter(|t| t.starts_with("node0.req"))
        .count();
    assert!(req_tracks > 0, "sampled requests get per-request tracks");
    let spans = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .filter(|n| *n == "comb_store" || *n == "enqueued")
        .count();
    assert!(spans > 0, "stage spans are emitted");
}

#[test]
fn trace_has_one_track_per_bank_and_channel() {
    let cfg = MachineConfig::merrimac();
    let mut rng = Rng64::new(7);
    let kernel = ScatterKernel::histogram(0, (0..2048).map(|_| rng.below(1024)).collect());
    let node = NodeMemSys::with_tracer(cfg, 0, false, ChromeTrace::new());
    let run = drive_scatter_with(node, &kernel, false);
    let doc = Json::parse(&run.node.tracer().to_json_string()).expect("valid trace JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let tracks: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    let banks = tracks.iter().filter(|t| t.contains(".cache.bank")).count();
    let chans = tracks.iter().filter(|t| t.contains(".dram.chan")).count();
    assert_eq!(banks, cfg.cache.banks);
    assert_eq!(chans, cfg.dram.channels);
}

#[test]
fn tracing_never_changes_simulated_time() {
    let cfg = MachineConfig::merrimac();
    let mut rng = Rng64::new(11);
    let kernel = ScatterKernel::histogram(0, (0..4096).map(|_| rng.below(512)).collect());
    let plain = drive_scatter(&cfg, &kernel, false);
    let traced = {
        let mut node = NodeMemSys::with_tracer(cfg, 0, false, ChromeTrace::new());
        node.set_sample_interval(1); // densest possible sampling
        node.set_req_sample(1); // trace every request's lifecycle
        drive_scatter_with(node, &kernel, false)
    };
    assert_eq!(plain.cycles, traced.cycles);
    assert_eq!(plain.drain_cycles, traced.drain_cycles);
    assert_eq!(plain.stats, traced.stats);
}

#[test]
fn disabled_probes_are_byte_free() {
    // The zero-cost contract of the probe layer (docs/OBSERVABILITY.md):
    // running through the probed entry point with introspection fully off
    // must reproduce the plain driver's observable state exactly — same
    // cycles, same stats, same fetched values — and leave no probe lines.
    let cfg = MachineConfig::merrimac();
    let mut rng = Rng64::new(23);
    let kernel = ScatterKernel::histogram(0, (0..4096).map(|_| rng.below(2048)).collect());
    let plain = drive_scatter(&cfg, &kernel, false);
    let mut probe = Introspect::off();
    let probed = drive_scatter_probed(NodeMemSys::new(cfg, 0, false), &kernel, false, &mut probe);
    assert_eq!(plain.cycles, probed.cycles);
    assert_eq!(plain.drain_cycles, probed.drain_cycles);
    assert_eq!(plain.stats, probed.stats);
    assert_eq!(plain.fetched, probed.fetched);
    assert!(probe.recorder.lines().is_empty(), "no snapshots when off");
    assert!(!probe.profiler.is_on(), "profiler stays off");

    // And the whole export path: a BenchRun without probe flags writes the
    // same bytes as one with probes explicitly disabled (interval 0).
    let a = export(&cfg, &tmp("probe-off-a.json"));
    let b = {
        let path = tmp("probe-off-b.json");
        let flag = format!("--stats-json {} --probe-interval 0", path.display());
        let mut bench = BenchRun::from_args("determinism", &cfg, &args(&flag));
        bench.scope("experiment").counter("events", 42);
        bench.row("r=1", &[("time", "1.00us".to_owned())]);
        bench.finish();
        let text = std::fs::read_to_string(&path).expect("document written");
        std::fs::remove_file(&path).ok();
        text
    };
    assert_eq!(a, b, "probes off must not change a single stats byte");
}

#[test]
fn host_profile_sidecar_is_opt_in_and_validates() {
    let cfg = MachineConfig::merrimac();
    let without = export(&cfg, &tmp("hp-off.json"));
    let doc = Json::parse(&without).unwrap();
    assert!(
        doc.get("host_profile").is_none(),
        "host_profile must be absent unless --host-profile is given"
    );

    let path = tmp("hp-on.json");
    let flag = format!("--stats-json {} --host-profile", path.display());
    let mut bench = BenchRun::from_args("determinism", &cfg, &args(&flag));
    bench.scope("experiment").counter("events", 42);
    bench.finish();
    let text = std::fs::read_to_string(&path).expect("document written");
    std::fs::remove_file(&path).ok();
    let doc = Json::parse(&text).unwrap();
    validate_stats_json(&doc).expect("document with host_profile validates");
    let hp = doc.get("host_profile").expect("host_profile present");
    assert!(hp.get("total_ns").and_then(Json::as_u64).is_some());
    let phases = hp.get("phases").and_then(Json::as_obj).expect("phases");
    // The canonical run goes through the probed driver, so the loop phases
    // are attributed.
    for phase in ["tick", "inject", "drain"] {
        assert!(
            phases.iter().any(|(n, _)| n == phase),
            "phase {phase} attributed"
        );
    }
}

#[test]
fn config_json_is_stable_across_identical_configs() {
    let a = machine_config_json(&MachineConfig::merrimac()).to_string_compact();
    let b = machine_config_json(&MachineConfig::merrimac()).to_string_compact();
    assert_eq!(a, b);
}
