//! Golden tests for the `analyze --diff` perf gate: a document diffed
//! against itself is clean (exit 0); a +20% perturbation of the canonical
//! scatter workload's p99 latency fails (exit nonzero) naming the metric.

use std::path::PathBuf;
use std::process::Command;

use sa_bench::args::Args;
use sa_bench::telemetry::BenchRun;
use sa_sim::MachineConfig;
use sa_telemetry::Json;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sa-diff-gate-{}-{name}", std::process::id()));
    p
}

/// Emit a stats document exactly as a figure binary would.
fn export(path: &std::path::Path) -> Json {
    let flag = format!("--stats-json {}", path.display());
    let args = Args::parse(flag.split_whitespace().map(str::to_owned));
    let bench = BenchRun::from_args("gate", &MachineConfig::merrimac(), &args);
    bench.finish();
    let text = std::fs::read_to_string(path).expect("document written");
    Json::parse(&text).expect("valid JSON")
}

fn analyze_diff(baseline: &std::path::Path, candidate: &std::path::Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_analyze"))
        .arg("--diff")
        .arg(baseline)
        .arg(candidate)
        .output()
        .expect("analyze runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Multiply `latency.canonical.end_to_end.p99` by 1.2 in place.
fn perturb_p99(doc: &mut Json) {
    let path = ["latency", "canonical", "end_to_end", "p99"];
    let mut cur = doc;
    for key in &path[..path.len() - 1] {
        let Json::Obj(pairs) = cur else {
            panic!("{key} parent is not an object")
        };
        cur = &mut pairs
            .iter_mut()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("missing {key}"))
            .1;
    }
    let Json::Obj(pairs) = cur else {
        panic!("end_to_end is not an object")
    };
    let p99 = &mut pairs.iter_mut().find(|(k, _)| k == "p99").expect("p99").1;
    let old = p99.as_u64().expect("numeric p99");
    *p99 = Json::UInt(old * 12 / 10 + 5); // +20%, past the absolute slack
}

#[test]
fn self_diff_passes_and_perturbed_p99_fails_naming_the_metric() {
    let base_path = tmp("base.json");
    let mut doc = export(&base_path);

    let (ok, _) = analyze_diff(&base_path, &base_path);
    assert!(
        ok,
        "a document diffed against itself must report no regressions"
    );

    perturb_p99(&mut doc);
    let cand_path = tmp("cand.json");
    std::fs::write(&cand_path, doc.to_string_pretty()).expect("write candidate");
    let (ok, stderr) = analyze_diff(&base_path, &cand_path);
    assert!(!ok, "a +20% p99 must fail the gate");
    assert!(
        stderr.contains("latency.canonical.end_to_end.p99"),
        "the offending metric is named; stderr was:\n{stderr}"
    );

    std::fs::remove_file(&base_path).ok();
    std::fs::remove_file(&cand_path).ok();
}
