//! Determinism-under-parallelism at the binary level: every figure binary
//! must emit byte-identical stdout and byte-identical sa-stats documents no
//! matter how many sweep workers (`--jobs` / `SA_JOBS`) or multinode stepper
//! threads (`--step-threads`) it runs with.
//!
//! The binaries are invoked for real via the `CARGO_BIN_EXE_*` paths Cargo
//! provides to integration tests.

use std::process::Command;

/// Run `bin` with `args` (plus `--quick --stats-json <file>`), returning
/// (stdout bytes, stats-file bytes).
fn run_with_stats(
    bin: &str,
    extra: &[&str],
    env: &[(&str, &str)],
    tag: &str,
) -> (Vec<u8>, Vec<u8>) {
    let stats = std::env::temp_dir().join(format!(
        "sa-parallel-determinism-{}-{tag}.json",
        std::process::id()
    ));
    let mut cmd = Command::new(bin);
    cmd.args(extra)
        .arg("--quick")
        .arg("--stats-json")
        .arg(&stats)
        .env_remove("SA_JOBS");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "{bin} {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read(&stats).expect("stats file written");
    let _ = std::fs::remove_file(&stats);
    (out.stdout, doc)
}

fn assert_jobs_invariant(bin: &str, name: &str) {
    let (base_out, base_doc) = run_with_stats(bin, &["--jobs", "1"], &[], &format!("{name}-j1"));
    for (tag, extra, env) in [
        ("j2", vec!["--jobs", "2"], vec![]),
        ("j8", vec!["--jobs", "8"], vec![]),
        ("env3", vec![], vec![("SA_JOBS", "3")]),
    ] {
        let (out, doc) = run_with_stats(bin, &extra, &env, &format!("{name}-{tag}"));
        assert_eq!(out, base_out, "{name} {tag}: stdout diverged");
        assert_eq!(doc, base_doc, "{name} {tag}: stats document diverged");
    }
}

#[test]
fn fig6_stats_are_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig6"), "fig6");
}

#[test]
fn fig8_stats_are_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig8"), "fig8");
}

#[test]
fn fig9_stats_are_jobs_invariant() {
    // fig9 is the perf-gate workload: its smoke output must not depend on
    // the sweep worker count, or the committed baseline would be unstable.
    assert_jobs_invariant(env!("CARGO_BIN_EXE_fig9"), "fig9");
}

#[test]
fn ablate_stats_are_jobs_invariant() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_ablate"), "ablate");
}

#[test]
fn fig13_step_threads_are_byte_invariant() {
    // Both parallel axes at once: sweep workers across (variant, nodes)
    // points and stepper threads inside each multinode simulation.
    let bin = env!("CARGO_BIN_EXE_fig13");
    let (base_out, base_doc) = run_with_stats(
        bin,
        &["--jobs", "1", "--step-threads", "1"],
        &[],
        "fig13-s1",
    );
    for (tag, threads) in [("s2", "2"), ("s4", "4")] {
        let (out, doc) = run_with_stats(
            bin,
            &["--jobs", "2", "--step-threads", threads],
            &[],
            &format!("fig13-{tag}"),
        );
        assert_eq!(out, base_out, "fig13 {tag}: stdout diverged");
        assert_eq!(doc, base_doc, "fig13 {tag}: stats document diverged");
    }
}

#[test]
fn explore_multinode_step_threads_are_byte_invariant() {
    let bin = env!("CARGO_BIN_EXE_explore");
    let common = [
        "multinode",
        "--nodes",
        "4",
        "--net",
        "low",
        "--combining",
        "--n",
        "4000",
    ];
    let mut serial = common.to_vec();
    serial.extend(["--step-threads", "1"]);
    let (base_out, base_doc) = run_with_stats(bin, &serial, &[], "explore-s1");
    let mut parallel = common.to_vec();
    parallel.extend(["--step-threads", "4"]);
    let (out, doc) = run_with_stats(bin, &parallel, &[], "explore-s4");
    assert_eq!(out, base_out, "explore multinode: stdout diverged");
    assert_eq!(doc, base_doc, "explore multinode: stats document diverged");
}

/// Wall-clock speedup of the parallel sweep on the fig13 smoke workload.
/// Ignored by default (timing-sensitive); CI and `docs/PARALLELISM.md`
/// describe how to run it: `cargo test -p sa-bench --release -- --ignored`.
#[test]
#[ignore = "timing-sensitive; run explicitly with --ignored on a quiet machine"]
fn fig_smoke_sweep_speeds_up_with_jobs() {
    let bin = env!("CARGO_BIN_EXE_fig13");
    let time = |jobs: &str| {
        let start = std::time::Instant::now();
        let out = Command::new(bin)
            .args(["--quick", "--jobs", jobs])
            .env_remove("SA_JOBS")
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        start.elapsed()
    };
    let _warm = time("1");
    let serial = time("1");
    let parallel = time("4");
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "expected >=2x speedup at 4 jobs, measured {speedup:.2}x \
         (serial {serial:?}, parallel {parallel:?})"
    );
}
