//! Bounded FIFO queues with back-pressure accounting.

use std::collections::VecDeque;

use crate::stats::QueueStats;

/// A bounded FIFO connecting two pipeline stages of the simulated machine.
///
/// Producers must check [`BoundedQueue::can_accept`] (or use the fallible
/// [`BoundedQueue::try_push`]) before inserting; a full queue models the
/// back-pressure that, in the paper's design, stalls the address generators
/// when a combining store or a DRAM channel queue fills up (§3.2).
///
/// The queue records occupancy statistics used by the benchmark harness to
/// explain *why* a configuration is slow (e.g. hot-bank effects in Figure 7).
///
/// ```
/// use sa_sim::BoundedQueue;
/// let mut q: BoundedQueue<u32> = BoundedQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert_eq!(q.try_push(3), Err(3), "full queue rejects and returns the item");
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    stats: QueueStats,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity queue can never carry
    /// traffic and always indicates a configuration bug.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue::new_at(capacity, 0)
    }

    /// [`BoundedQueue::new`] for a queue constructed mid-run at cycle `now`.
    ///
    /// Recording the construction cycle lets [`QueueStats::cycle_utilization`]
    /// normalize by the cycles the queue actually existed instead of the
    /// whole run.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new_at(capacity: usize, now: u64) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats {
                created_at: now,
                advanced_to: now,
                capacity: capacity as u64,
                ..QueueStats::default()
            },
        }
    }

    /// Fold the cycles elapsed up to `now` into the time-weighted occupancy
    /// statistics at the current occupancy. Owners call this once per tick.
    #[inline]
    pub fn advance(&mut self, now: u64) {
        self.stats.advance(self.items.len() as u64, now);
    }

    /// Whether one more item fits.
    #[inline]
    pub fn can_accept(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// Number of free slots.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Push an item, returning it back if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity; the caller keeps
    /// ownership and typically retries next cycle (a stall).
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.can_accept() {
            self.items.push_back(item);
            self.stats
                .observe_push(self.items.len() as u64, self.capacity as u64);
            Ok(())
        } else {
            self.stats.rejected += 1;
            Err(item)
        }
    }

    /// Remove and return the oldest item.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item without removing it.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupancy/stall statistics gathered so far.
    #[inline]
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Iterate over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Remove and return the oldest item only if `accept` approves it.
    ///
    /// This is the single-touch replacement for the `front().copied()` +
    /// re-`pop()` pattern: the consumer inspects the head in place, commits
    /// to it (e.g. by submitting it downstream) inside `accept`, and the item
    /// is popped only on approval — no clone, no double lookup.
    #[inline]
    pub fn pop_if<F: FnMut(&T) -> bool>(&mut self, mut accept: F) -> Option<T> {
        if accept(self.items.front()?) {
            self.items.pop_front()
        } else {
            None
        }
    }

    /// Remove and return the first item matching `pred`, preserving the order
    /// of the others.
    ///
    /// Used by response routing where a stage must claim the response for a
    /// specific request id out of a shared queue.
    pub fn take_first<F: FnMut(&T) -> bool>(&mut self, pred: F) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        self.items.remove(idx)
    }

    /// Remove and return the item at position `idx` (0 = oldest), preserving
    /// the order of the others. Returns `None` when out of range.
    pub fn take_at(&mut self, idx: usize) -> Option<T> {
        self.items.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn capacity_enforced_and_counted() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.free(), 2);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert!(!q.can_accept());
        assert_eq!(q.free(), 0);
        assert_eq!(q.try_push('c'), Err('c'));
        assert_eq!(q.try_push('d'), Err('d'));
        let s = q.stats();
        assert_eq!(s.enqueued, 2);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.peak_occupancy, 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn take_first_preserves_order() {
        let mut q = BoundedQueue::new(4);
        for i in 1..=4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.take_first(|&x| x % 2 == 0), Some(2));
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, vec![1, 3, 4]);
    }

    #[test]
    fn mid_run_queue_normalizes_utilization_by_its_own_lifetime() {
        // Regression: utilization used to be normalized against the whole
        // run, so a queue created mid-run looked almost idle. Two queues
        // with identical traffic must report identical cycle utilization
        // regardless of when they were constructed.
        let drive = |mut q: BoundedQueue<u32>, start: u64| {
            for now in start..start + 100 {
                q.advance(now);
                if q.len() < 2 {
                    q.try_push(now as u32).unwrap();
                }
                if now % 4 == 3 {
                    q.pop();
                }
            }
            q.advance(start + 100);
            q.stats()
        };
        let from_zero = drive(BoundedQueue::new(4), 0);
        let mid_run = drive(BoundedQueue::new_at(4, 100_000), 100_000);
        assert!(from_zero.cycle_utilization() > 0.0);
        assert!(
            (from_zero.cycle_utilization() - mid_run.cycle_utilization()).abs() < 1e-12,
            "construction time must not skew utilization: {} vs {}",
            from_zero.cycle_utilization(),
            mid_run.cycle_utilization()
        );
        // Normalizing the mid-run queue's integral by all 100_100 elapsed
        // cycles (the old bug) would report far less than the true figure.
        let diluted = mid_run.occ_integral as f64 / (100_100.0 * 4.0);
        assert!(diluted < mid_run.cycle_utilization() / 100.0);
    }

    #[test]
    fn pop_if_touches_head_once() {
        let mut q = BoundedQueue::new(4);
        q.try_push(5).unwrap();
        q.try_push(6).unwrap();
        assert_eq!(q.pop_if(|&x| x > 10), None, "head stays when rejected");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_if(|&x| x == 5), Some(5));
        assert_eq!(q.front(), Some(&6));
        let mut empty: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(empty.pop_if(|_| true), None);
    }

    #[test]
    fn front_and_iter() {
        let mut q = BoundedQueue::new(3);
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        assert_eq!(q.front(), Some(&10));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.capacity(), 3);
    }
}
