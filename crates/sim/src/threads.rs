//! Process-wide default for intra-node stepping threads.
//!
//! Intra-node parallel stepping (see `docs/PARALLELISM.md`) is the third
//! parallelism axis: cache-bank lanes of one node stepped by a small worker
//! pool under the crossbar serialization point, with a byte-identity
//! contract — simulated results are the same for every thread count. Every
//! `NodeMemSys` reads this default at construction time into a per-instance
//! setting, so a CLI `--node-threads N` set before any simulation starts
//! applies everywhere, while tests that compare thread counts use the
//! per-instance setters and stay immune to concurrent tests flipping the
//! global. The `SA_NODE_THREADS` environment variable seeds the default
//! when no explicit set has happened (the CI test matrix uses it to re-run
//! the whole suite under intra-node threading).

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = "not resolved yet": the first read consults `SA_NODE_THREADS`.
static NODE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// How many threads newly constructed nodes should step their bank lanes
/// with. Defaults to 1 (classic serial stepping) unless the
/// `SA_NODE_THREADS` environment variable says otherwise.
#[inline]
pub fn node_threads_default() -> usize {
    match NODE_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("SA_NODE_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            NODE_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Set the process-wide intra-node thread default (e.g. from
/// `--node-threads`); clamped to at least 1.
///
/// Only affects nodes constructed after the call.
pub fn set_node_threads_default(threads: usize) {
    NODE_THREADS.store(threads.max(1), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_and_settable() {
        // Restore afterwards so concurrently running tests that read the
        // default are not perturbed.
        let prev = node_threads_default();
        set_node_threads_default(4);
        assert_eq!(node_threads_default(), 4);
        set_node_threads_default(0);
        assert_eq!(node_threads_default(), 1, "clamped to at least 1");
        set_node_threads_default(prev);
    }
}
