//! Machine configurations.
//!
//! [`MachineConfig::merrimac`] reproduces Table 1 of the paper. The
//! sensitivity experiments of §4.4 replace the banked cache + DRAM-channel
//! memory system with a uniform latency/throughput structure, captured by
//! [`SensitivityConfig`].

use crate::WORD_BYTES;

/// A sustained word rate expressed as `words` per `cycles`, allowing
/// non-integral words-per-cycle rates (the 38.4 GB/s DRAM of Table 1 is 4.8
/// words/cycle at 1 GHz, i.e. 0.3 words/cycle per channel).
///
/// Components consume bandwidth through a token bucket: [`Throughput::tick`]
/// refills once per cycle, [`Throughput::try_consume`] spends one word of
/// credit.
///
/// ```
/// use sa_sim::Throughput;
/// // 3 words every 10 cycles.
/// let mut t = Throughput::new(3, 10);
/// let mut sent = 0;
/// for _ in 0..100 {
///     t.tick();
///     if t.try_consume() { sent += 1; }
/// }
/// assert_eq!(sent, 30);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Throughput {
    words: u32,
    cycles: u32,
    credit: u64,
}

impl Throughput {
    /// `words` transferred per `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    pub fn new(words: u32, cycles: u32) -> Throughput {
        assert!(words > 0 && cycles > 0, "throughput must be positive");
        Throughput {
            words,
            cycles,
            credit: 0,
        }
    }

    /// One word per `cycles` cycles.
    pub fn one_per(cycles: u32) -> Throughput {
        Throughput::new(1, cycles)
    }

    /// Average words per cycle as a float (for reporting).
    pub fn words_per_cycle(&self) -> f64 {
        f64::from(self.words) / f64::from(self.cycles)
    }

    /// The configured words-per-burst numerator. Two rates with equal
    /// averages but different burst shapes (3/10 vs 6/20) behave
    /// differently, so fingerprints need both raw terms.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// The configured cycles-per-burst denominator.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Refill credit for one elapsed cycle.
    #[inline]
    pub fn tick(&mut self) {
        // Credit is in units of 1/cycles words; cap at one cycle's burst of
        // `words` so idle periods don't accumulate unbounded bursts.
        self.credit = (self.credit + u64::from(self.words))
            .min(u64::from(self.words) * u64::from(self.cycles));
    }

    /// Refill credit for `cycles` elapsed cycles at once, none of which spent
    /// any bandwidth. Equivalent to calling [`Throughput::tick`] `cycles`
    /// times with no intervening [`Throughput::try_consume`]; used by the
    /// event-horizon fast-forward to fold skipped idle cycles into the token
    /// bucket exactly.
    #[inline]
    pub fn tick_idle(&mut self, cycles: u64) {
        self.credit = self
            .credit
            .saturating_add(u64::from(self.words).saturating_mul(cycles))
            .min(u64::from(self.words) * u64::from(self.cycles));
    }

    /// Try to spend one word of bandwidth; returns whether it was available.
    #[inline]
    pub fn try_consume(&mut self) -> bool {
        if self.credit >= u64::from(self.cycles) {
            self.credit -= u64::from(self.cycles);
            true
        } else {
            false
        }
    }
}

/// Scatter-add unit parameters (one unit per stream-cache bank in the base
/// machine).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SaUnitConfig {
    /// Combining-store entries per unit (Table 1: 8).
    pub cs_entries: usize,
    /// Functional-unit latency in cycles (Table 1: 4). The FU is fully
    /// pipelined: one new addition may start each cycle.
    pub fu_latency: u32,
}

impl Default for SaUnitConfig {
    fn default() -> Self {
        SaUnitConfig {
            cs_entries: 8,
            fu_latency: 4,
        }
    }
}

/// Stream-cache parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of address-interleaved banks (Table 1: 8).
    pub banks: usize,
    /// Total capacity in bytes (Table 1: 1 MB).
    pub total_bytes: u64,
    /// Line size in bytes. Not listed in Table 1; 32 B (four words) matches
    /// the Imagine/Merrimac lineage and reproduces the hot-bank granularity
    /// of Figure 7.
    pub line_bytes: u64,
    /// Set associativity.
    pub ways: usize,
    /// Miss-status handling registers per bank.
    pub mshrs_per_bank: usize,
    /// Requests that can merge into one MSHR before it refuses.
    pub targets_per_mshr: usize,
    /// Access latency of a bank hit, in cycles.
    pub hit_latency: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            banks: 8,
            total_bytes: 1 << 20,
            line_bytes: 32,
            ways: 4,
            mshrs_per_bank: 8,
            targets_per_mshr: 8,
            hit_latency: 4,
        }
    }
}

impl CacheConfig {
    /// Capacity of one bank in bytes.
    pub fn bytes_per_bank(&self) -> u64 {
        self.total_bytes / self.banks as u64
    }

    /// Number of lines in one bank.
    pub fn lines_per_bank(&self) -> u64 {
        self.bytes_per_bank() / self.line_bytes
    }

    /// Number of sets in one bank.
    pub fn sets_per_bank(&self) -> u64 {
        self.lines_per_bank() / self.ways as u64
    }

    /// Words per cache line.
    pub fn words_per_line(&self) -> u64 {
        self.line_bytes / WORD_BYTES
    }

    /// Which bank serves `line_index`.
    ///
    /// Lines interleave across banks through an XOR-folded hash rather than
    /// a plain modulo — real memory systems do the same to keep
    /// power-of-two strides (such as the node-interleaved addresses of a
    /// multi-node run) from camping on one bank. Small index ranges still
    /// touch few banks, preserving the hot-bank effect of Figure 7.
    pub fn bank_of_line(&self, line_index: u64) -> usize {
        let folded = line_index ^ (line_index >> 3) ^ (line_index >> 6);
        (folded % self.banks as u64) as usize
    }
}

/// DRAM-interface parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of DRAM interface channels (Table 1: 16).
    pub channels: usize,
    /// Per-channel sustained data rate. Table 1's 38.4 GB/s peak over 16
    /// channels is 0.3 words/cycle/channel = 3 words per 10 cycles.
    pub channel_rate: Throughput,
    /// Internal DRAM banks per channel.
    pub banks_per_channel: usize,
    /// Open row size in bytes per internal bank.
    pub row_bytes: u64,
    /// Column access latency (row already open), cycles.
    pub t_cas: u32,
    /// Full row cycle (precharge + activate + access), cycles.
    pub t_rc: u32,
    /// Request queue depth per channel; memory-access scheduling reorders
    /// within this window (Rixner et al., cited by the paper).
    pub queue_depth: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 16,
            channel_rate: Throughput::new(3, 10),
            banks_per_channel: 4,
            row_bytes: 2048,
            t_cas: 12,
            t_rc: 36,
            queue_depth: 16,
        }
    }
}

impl DramConfig {
    /// Which channel serves `line_index` (XOR-folded interleave; see
    /// [`CacheConfig::bank_of_line`] for the rationale).
    pub fn channel_of_line(&self, line_index: u64) -> usize {
        let folded = line_index ^ (line_index >> 4) ^ (line_index >> 8);
        (folded % self.channels as u64) as usize
    }

    /// Peak bandwidth in GB/s at `ghz` GHz.
    pub fn peak_gbps(&self, ghz: f64) -> f64 {
        self.channel_rate.words_per_cycle() * self.channels as f64 * WORD_BYTES as f64 * ghz
    }
}

/// Address-generator parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AgConfig {
    /// Number of address generators (Table 1: 2).
    pub count: usize,
    /// Single-word requests each generator can issue per cycle. Two
    /// generators at 4 words/cycle saturate the 64 GB/s (8 words/cycle)
    /// stream cache of Table 1.
    pub width: u32,
    /// Fixed cost of starting a stream memory operation (priming the memory
    /// pipeline; §4.1 discusses its effect on software batch sizing).
    pub startup_cycles: u32,
}

impl Default for AgConfig {
    fn default() -> Self {
        AgConfig {
            count: 2,
            width: 4,
            startup_cycles: 60,
        }
    }
}

/// Compute-cluster parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ComputeConfig {
    /// Number of data-parallel execution clusters (Table 1: 16).
    pub clusters: usize,
    /// Peak floating-point operations per cycle over all clusters
    /// (Table 1: 128 — four multiply-adds per cluster per cycle).
    pub peak_flops_per_cycle: u32,
    /// Stream-register-file bandwidth in words per cycle (Table 1:
    /// 512 GB/s = 64 words/cycle).
    pub srf_words_per_cycle: u32,
    /// Stream-register-file capacity in bytes (Table 1: 1 MB).
    pub srf_bytes: u64,
    /// Fixed cost of launching a kernel: microcode load, stream-descriptor
    /// setup, and cluster pipeline fill. Several hundred cycles on
    /// Imagine/Merrimac-class machines; this constant is what makes small
    /// software batches unattractive (§4.1: "smaller batches do not
    /// amortize the latency of starting a stream operation").
    pub kernel_startup_cycles: u32,
}

impl Default for ComputeConfig {
    fn default() -> Self {
        ComputeConfig {
            clusters: 16,
            peak_flops_per_cycle: 128,
            srf_words_per_cycle: 64,
            srf_bytes: 1 << 20,
            kernel_startup_cycles: 250,
        }
    }
}

/// Inter-node network parameters (§4.5: input-queued crossbar with
/// back-pressure).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Per-node injection/ejection bandwidth in words per cycle. The paper
    /// evaluates `1` (low) and `8` (high).
    pub node_words_per_cycle: u32,
    /// Network traversal latency in cycles.
    pub hop_latency: u32,
    /// Input queue depth per node port.
    pub queue_depth: usize,
}

impl NetworkConfig {
    /// The paper's low-bandwidth configuration (1 word/cycle/node).
    pub fn low() -> NetworkConfig {
        NetworkConfig {
            node_words_per_cycle: 1,
            hop_latency: 50,
            queue_depth: 32,
        }
    }

    /// The paper's high-bandwidth configuration (8 words/cycle/node).
    pub fn high() -> NetworkConfig {
        NetworkConfig {
            node_words_per_cycle: 8,
            hop_latency: 50,
            queue_depth: 32,
        }
    }

    /// Every field as a flat JSON object for result-cache fingerprints (see
    /// [`MachineConfig::fingerprint_json`]).
    pub fn fingerprint_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::Json;
        let mut o = Json::obj();
        o.push(
            "node_words_per_cycle",
            Json::UInt(u64::from(self.node_words_per_cycle)),
        );
        o.push("hop_latency", Json::UInt(u64::from(self.hop_latency)));
        o.push("queue_depth", Json::UInt(self.queue_depth as u64));
        o
    }

    /// Parse the object written by [`NetworkConfig::fingerprint_json`].
    ///
    /// Strict: every field is required and unknown keys are rejected, so a
    /// typo in a job spec fails loudly instead of silently meaning "default".
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing, mistyped, or unknown key.
    pub fn from_fingerprint_json(doc: &sa_telemetry::Json) -> Result<NetworkConfig, String> {
        let mut fields = FieldReader::new("network", doc)?;
        let cfg = NetworkConfig {
            node_words_per_cycle: fields.u32("node_words_per_cycle")?,
            hop_latency: fields.u32("hop_latency")?,
            queue_depth: fields.usize("queue_depth")?,
        };
        fields.finish()?;
        Ok(cfg)
    }
}

/// Strict reader for the flat fingerprint objects: every key must be
/// consumed exactly once, and leftovers are an error.
struct FieldReader<'a> {
    what: &'static str,
    pairs: &'a [(String, sa_telemetry::Json)],
    seen: Vec<&'a str>,
}

impl<'a> FieldReader<'a> {
    fn new(what: &'static str, doc: &'a sa_telemetry::Json) -> Result<FieldReader<'a>, String> {
        let pairs = doc
            .as_obj()
            .ok_or_else(|| format!("{what}: not a JSON object"))?;
        Ok(FieldReader {
            what,
            pairs,
            seen: Vec::new(),
        })
    }

    fn u64(&mut self, key: &'a str) -> Result<u64, String> {
        self.seen.push(key);
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
            .ok_or_else(|| format!("{}: missing or non-integer field '{key}'", self.what))
    }

    fn u32(&mut self, key: &'a str) -> Result<u32, String> {
        let v = self.u64(key)?;
        u32::try_from(v).map_err(|_| format!("{}: field '{key}' out of range", self.what))
    }

    fn usize(&mut self, key: &'a str) -> Result<usize, String> {
        let v = self.u64(key)?;
        usize::try_from(v).map_err(|_| format!("{}: field '{key}' out of range", self.what))
    }

    fn f64(&mut self, key: &'a str) -> Result<f64, String> {
        self.seen.push(key);
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
            .ok_or_else(|| format!("{}: missing or non-numeric field '{key}'", self.what))
    }

    fn finish(self) -> Result<(), String> {
        for (k, _) in self.pairs {
            if !self.seen.contains(&k.as_str()) {
                return Err(format!("{}: unknown field '{k}'", self.what));
            }
        }
        Ok(())
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::high()
    }
}

/// Full single-node machine description.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Clock frequency in GHz (Table 1: 1 GHz).
    pub ghz: f64,
    /// Stream-cache parameters.
    pub cache: CacheConfig,
    /// Scatter-add unit parameters (one unit per cache bank).
    pub sa: SaUnitConfig,
    /// DRAM interface parameters.
    pub dram: DramConfig,
    /// Address generator parameters.
    pub ag: AgConfig,
    /// Compute cluster parameters.
    pub compute: ComputeConfig,
    /// Request-lifecycle tracing: record the full stage-by-stage timeline of
    /// one in `req_sample` requests (0 = off, the default). Pure observation;
    /// never affects simulated time.
    pub req_sample: u64,
}

// `f64` keeps MachineConfig from deriving Eq mechanically; ghz is always a
// small exact literal so bitwise equality is the intended semantics.
impl Eq for MachineConfig {}

impl MachineConfig {
    /// The base configuration of Table 1 of the paper.
    pub fn merrimac() -> MachineConfig {
        MachineConfig {
            ghz: 1.0,
            cache: CacheConfig::default(),
            sa: SaUnitConfig::default(),
            dram: DramConfig::default(),
            ag: AgConfig::default(),
            compute: ComputeConfig::default(),
            req_sample: 0,
        }
    }

    /// Stream-cache bandwidth in GB/s (banks × 1 word/cycle).
    pub fn cache_gbps(&self) -> f64 {
        self.cache.banks as f64 * WORD_BYTES as f64 * self.ghz
    }

    /// Peak DRAM bandwidth in GB/s.
    pub fn dram_gbps(&self) -> f64 {
        self.dram.peak_gbps(self.ghz)
    }

    /// Every field of the configuration as one flat, insertion-ordered JSON
    /// object — the result cache's config fingerprint.
    ///
    /// Unlike the reporting-oriented config block in stats documents (which
    /// names only the commonly swept knobs), this covers *all* simulation
    /// parameters: any field that can change output bytes must change the
    /// fingerprint, or a stale cache entry would masquerade as a fresh run.
    /// Keep this in sync when adding config fields.
    pub fn fingerprint_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::Json;
        let mut o = Json::obj();
        o.push("ghz", Json::Num(self.ghz));
        o.push("cache.banks", Json::UInt(self.cache.banks as u64));
        o.push("cache.total_bytes", Json::UInt(self.cache.total_bytes));
        o.push("cache.line_bytes", Json::UInt(self.cache.line_bytes));
        o.push("cache.ways", Json::UInt(self.cache.ways as u64));
        o.push(
            "cache.mshrs_per_bank",
            Json::UInt(self.cache.mshrs_per_bank as u64),
        );
        o.push(
            "cache.targets_per_mshr",
            Json::UInt(self.cache.targets_per_mshr as u64),
        );
        o.push(
            "cache.hit_latency",
            Json::UInt(u64::from(self.cache.hit_latency)),
        );
        o.push("sa.cs_entries", Json::UInt(self.sa.cs_entries as u64));
        o.push("sa.fu_latency", Json::UInt(u64::from(self.sa.fu_latency)));
        o.push("dram.channels", Json::UInt(self.dram.channels as u64));
        o.push(
            "dram.channel_rate.words",
            Json::UInt(u64::from(self.dram.channel_rate.words())),
        );
        o.push(
            "dram.channel_rate.cycles",
            Json::UInt(u64::from(self.dram.channel_rate.cycles())),
        );
        o.push(
            "dram.banks_per_channel",
            Json::UInt(self.dram.banks_per_channel as u64),
        );
        o.push("dram.row_bytes", Json::UInt(self.dram.row_bytes));
        o.push("dram.t_cas", Json::UInt(u64::from(self.dram.t_cas)));
        o.push("dram.t_rc", Json::UInt(u64::from(self.dram.t_rc)));
        o.push("dram.queue_depth", Json::UInt(self.dram.queue_depth as u64));
        o.push("ag.count", Json::UInt(self.ag.count as u64));
        o.push("ag.width", Json::UInt(u64::from(self.ag.width)));
        o.push(
            "ag.startup_cycles",
            Json::UInt(u64::from(self.ag.startup_cycles)),
        );
        o.push("compute.clusters", Json::UInt(self.compute.clusters as u64));
        o.push(
            "compute.peak_flops_per_cycle",
            Json::UInt(u64::from(self.compute.peak_flops_per_cycle)),
        );
        o.push(
            "compute.srf_words_per_cycle",
            Json::UInt(u64::from(self.compute.srf_words_per_cycle)),
        );
        o.push("compute.srf_bytes", Json::UInt(self.compute.srf_bytes));
        o.push(
            "compute.kernel_startup_cycles",
            Json::UInt(u64::from(self.compute.kernel_startup_cycles)),
        );
        o.push("req_sample", Json::UInt(self.req_sample));
        o
    }

    /// Parse the object written by [`MachineConfig::fingerprint_json`] — the
    /// machine half of a serialized session spec.
    ///
    /// Strict by the same rule as the writer's "any field that can change
    /// output bytes must change the fingerprint": every field is required
    /// and unknown keys are rejected, so specs cannot drift out of sync with
    /// the config struct silently.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing, mistyped, out-of-range,
    /// or unknown key.
    pub fn from_fingerprint_json(doc: &sa_telemetry::Json) -> Result<MachineConfig, String> {
        let mut f = FieldReader::new("config", doc)?;
        let rate_words = f.u32("dram.channel_rate.words")?;
        let rate_cycles = f.u32("dram.channel_rate.cycles")?;
        if rate_words == 0 || rate_cycles == 0 {
            return Err("config: dram.channel_rate terms must be positive".into());
        }
        let cfg = MachineConfig {
            ghz: f.f64("ghz")?,
            cache: CacheConfig {
                banks: f.usize("cache.banks")?,
                total_bytes: f.u64("cache.total_bytes")?,
                line_bytes: f.u64("cache.line_bytes")?,
                ways: f.usize("cache.ways")?,
                mshrs_per_bank: f.usize("cache.mshrs_per_bank")?,
                targets_per_mshr: f.usize("cache.targets_per_mshr")?,
                hit_latency: f.u32("cache.hit_latency")?,
            },
            sa: SaUnitConfig {
                cs_entries: f.usize("sa.cs_entries")?,
                fu_latency: f.u32("sa.fu_latency")?,
            },
            dram: DramConfig {
                channels: f.usize("dram.channels")?,
                channel_rate: Throughput::new(rate_words, rate_cycles),
                banks_per_channel: f.usize("dram.banks_per_channel")?,
                row_bytes: f.u64("dram.row_bytes")?,
                t_cas: f.u32("dram.t_cas")?,
                t_rc: f.u32("dram.t_rc")?,
                queue_depth: f.usize("dram.queue_depth")?,
            },
            ag: AgConfig {
                count: f.usize("ag.count")?,
                width: f.u32("ag.width")?,
                startup_cycles: f.u32("ag.startup_cycles")?,
            },
            compute: ComputeConfig {
                clusters: f.usize("compute.clusters")?,
                peak_flops_per_cycle: f.u32("compute.peak_flops_per_cycle")?,
                srf_words_per_cycle: f.u32("compute.srf_words_per_cycle")?,
                srf_bytes: f.u64("compute.srf_bytes")?,
                kernel_startup_cycles: f.u32("compute.kernel_startup_cycles")?,
            },
            req_sample: f.u64("req_sample")?,
        };
        f.finish()?;
        Ok(cfg)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::merrimac()
    }
}

/// Configuration of the §4.4 sensitivity rig: a single scatter-add unit in
/// front of a uniform-latency, fixed-throughput memory, with no cache.
///
/// "In order to isolate and emphasize the sensitivity, we modify the baseline
/// machine model and provide a simpler memory system" — the rig strips the
/// machine to one address generator, one scatter-add unit with `cs_entries`
/// combining-store entries, and a memory pipe accepting one word every
/// `mem_interval` cycles with a flat `mem_latency`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SensitivityConfig {
    /// Combining-store entries (x-axis of Figures 11 and 12: 2–64).
    pub cs_entries: usize,
    /// Functional-unit latency in cycles (Figure 11 sweeps 2–16).
    pub fu_latency: u32,
    /// Flat memory latency in cycles (Figure 11 sweeps 8–256).
    pub mem_latency: u32,
    /// Minimum cycles between successive memory word accesses (Figure 12
    /// sweeps 1–16; Figure 11 holds it at 2).
    pub mem_interval: u32,
}

impl Default for SensitivityConfig {
    fn default() -> Self {
        SensitivityConfig {
            cs_entries: 8,
            fu_latency: 4,
            mem_latency: 16,
            mem_interval: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let m = MachineConfig::merrimac();
        assert_eq!(m.cache.banks, 8);
        assert_eq!(m.sa.cs_entries, 8);
        assert_eq!(m.sa.fu_latency, 4);
        assert_eq!(m.dram.channels, 16);
        assert_eq!(m.ag.count, 2);
        assert_eq!(m.ghz, 1.0);
        assert_eq!(m.compute.clusters, 16);
        assert_eq!(m.compute.peak_flops_per_cycle, 128);
        assert_eq!(m.compute.srf_bytes, 1 << 20);
        assert_eq!(m.cache.total_bytes, 1 << 20);
        // Table 1 bandwidth figures.
        assert!((m.dram_gbps() - 38.4).abs() < 1e-9, "got {}", m.dram_gbps());
        assert!((m.cache_gbps() - 64.0).abs() < 1e-9);
        let srf_gbps = m.compute.srf_words_per_cycle as f64 * 8.0 * m.ghz;
        assert!((srf_gbps - 512.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_rate_is_exact() {
        let mut t = Throughput::new(3, 10);
        let mut sent = 0;
        for _ in 0..1000 {
            t.tick();
            while t.try_consume() {
                sent += 1;
            }
        }
        assert_eq!(sent, 300);
        assert!((t.words_per_cycle() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn throughput_full_rate() {
        let mut t = Throughput::one_per(1);
        t.tick();
        assert!(t.try_consume());
        assert!(!t.try_consume(), "only one word per cycle");
    }

    #[test]
    fn tick_idle_matches_repeated_ticks() {
        // tick_idle(k) must be indistinguishable from k no-consume ticks for
        // any starting credit, or fast-forward would perturb DRAM pacing.
        for drain in 0..4 {
            let mut bulk = Throughput::new(3, 10);
            let mut step = Throughput::new(3, 10);
            for _ in 0..drain {
                bulk.tick();
                step.tick();
                bulk.try_consume();
                step.try_consume();
            }
            for k in [0u64, 1, 2, 7, 1_000] {
                let mut b = bulk;
                let mut s = step;
                b.tick_idle(k);
                for _ in 0..k {
                    s.tick();
                }
                assert_eq!(b, s, "drain={drain} k={k}");
            }
        }
    }

    #[test]
    fn throughput_burst_is_capped() {
        let mut t = Throughput::new(1, 4);
        // Long idle period...
        for _ in 0..100 {
            t.tick();
        }
        // ...must not allow more than one immediate word (credit cap).
        assert!(t.try_consume());
        assert!(!t.try_consume());
    }

    #[test]
    #[should_panic(expected = "throughput must be positive")]
    fn throughput_zero_panics() {
        let _ = Throughput::new(0, 1);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig::default();
        assert_eq!(c.bytes_per_bank(), 128 << 10);
        assert_eq!(c.lines_per_bank(), 4096);
        assert_eq!(c.sets_per_bank(), 1024);
        assert_eq!(c.words_per_line(), 4);
        assert_eq!(c.bank_of_line(0), 0);
        // The XOR fold is a bijection of the low bits within each group of
        // `banks` lines: consecutive lines cover all banks.
        let covered: std::collections::HashSet<usize> = (0..8).map(|l| c.bank_of_line(l)).collect();
        assert_eq!(covered.len(), 8, "8 consecutive lines hit 8 distinct banks");
        // Node-interleaved strides (every 8th line) must not camp on one
        // bank — the reason for the fold.
        let strided: std::collections::HashSet<usize> =
            (0..64).map(|i| c.bank_of_line(i * 8)).collect();
        assert!(strided.len() >= 4, "strided lines spread over banks");
    }

    #[test]
    fn dram_mapping() {
        let d = DramConfig::default();
        let covered: std::collections::HashSet<usize> =
            (0..16).map(|l| d.channel_of_line(l)).collect();
        assert_eq!(covered.len(), 16, "16 consecutive lines hit 16 channels");
    }

    #[test]
    fn network_presets() {
        assert_eq!(NetworkConfig::low().node_words_per_cycle, 1);
        assert_eq!(NetworkConfig::high().node_words_per_cycle, 8);
    }
}
