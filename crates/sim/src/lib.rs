//! Simulation kernel for the scatter-add reproduction.
//!
//! This crate provides the building blocks shared by every other crate in the
//! workspace:
//!
//! * [`Cycle`] — the simulated time base (one cycle = 1 ns at the 1 GHz clock
//!   of Table 1 in the paper).
//! * [`BoundedQueue`] — a back-pressured FIFO used to connect pipeline stages
//!   (address generators, cache banks, scatter-add units, DRAM channels).
//! * [`MemRequest`]/[`MemResponse`] and the scatter-op value semantics
//!   ([`combine`]) — the lingua franca of the simulated memory system.
//! * [`MachineConfig`] — the machine parameters of Table 1 of the paper, plus
//!   the simplified configurations used by the sensitivity study (§4.4).
//! * [`Rng64`] — a tiny deterministic PRNG so that every experiment is
//!   reproducible down to the cycle.
//!
//! # Example
//!
//! ```
//! use sa_sim::{combine, MachineConfig, ScalarKind, ScatterOp};
//!
//! let cfg = MachineConfig::merrimac();
//! assert_eq!(cfg.cache.banks, 8);
//!
//! // The value semantics of a floating-point scatter-add:
//! let old = 1.5f64.to_bits();
//! let add = 2.25f64.to_bits();
//! let sum = combine(old, add, ScalarKind::F64, ScatterOp::Add);
//! assert_eq!(f64::from_bits(sum), 3.75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cycle;
mod ff;
mod queue;
mod req;
mod rng;
mod stats;
mod threads;

pub use config::{
    AgConfig, CacheConfig, ComputeConfig, DramConfig, MachineConfig, NetworkConfig, SaUnitConfig,
    SensitivityConfig, Throughput,
};
pub use cycle::{Clock, Cycle};
pub use ff::{fast_forward_default, set_fast_forward_default};
pub use queue::BoundedQueue;
pub use req::{
    combine, identity_bits, Addr, MemOp, MemRequest, MemResponse, Origin, ReqId, ScalarKind,
    ScatterOp, WORD_BYTES,
};
pub use rng::Rng64;
pub use stats::{Counter, QueueStats};
pub use threads::{node_threads_default, set_node_threads_default};
