//! A small deterministic PRNG for workload generation inside the simulator.
//!
//! The simulator crates avoid external dependencies; experiments that need
//! richer distributions (the applications crate) use `rand` instead. This
//! generator is SplitMix64, which passes BigCrush and is more than adequate
//! for generating uniform histogram inputs and request traces.

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// ```
/// use sa_sim::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// let x = a.below(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed. Distinct seeds yield independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 {
            // Avoid the all-zero fixed point bias by mixing the seed once.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Create a generator for one stream of a keyed family: the same
    /// `(seed, stream)` pair always yields the same sequence, and distinct
    /// streams are independent for practical purposes.
    ///
    /// Parallel sweeps and per-node simulation state use this instead of
    /// drawing from one shared generator, so the values a config or node
    /// sees depend only on its identity — never on the order in which
    /// concurrent work happens to be issued.
    ///
    /// ```
    /// use sa_sim::Rng64;
    /// let mut a = Rng64::for_stream(42, 3);
    /// let mut b = Rng64::for_stream(42, 3);
    /// let mut c = Rng64::for_stream(42, 4);
    /// assert_eq!(a.next_u64(), b.next_u64(), "same key, same stream");
    /// assert_ne!(a.next_u64(), c.next_u64(), "streams are independent");
    /// ```
    pub fn for_stream(seed: u64, stream: u64) -> Rng64 {
        // Finalize the stream id through the SplitMix64 mixer so that
        // adjacent stream ids land far apart in the seed space before the
        // usual seed mixing applies.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng64::new(seed ^ z)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift with rejection to remove modulo bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let take = |stream: u64| {
            let mut r = Rng64::for_stream(7, stream);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(take(0), take(0));
        for s in 1..8 {
            assert_ne!(take(0), take(s), "stream {s} must differ from stream 0");
        }
        // A keyed stream is not the plain seed's stream either.
        let mut plain = Rng64::new(7);
        assert_ne!(take(0)[0], plain.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(3);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng64::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bin; 5% tolerance is generous for n=80k.
            assert!((9_500..10_500).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
        let y = r.range_f64(-2.0, 2.0);
        assert!((-2.0..2.0).contains(&y));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(9);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
