//! Process-wide default for event-horizon fast-forward.
//!
//! Fast-forward (see `docs/PERFORMANCE.md`) is a wall-clock optimization
//! with a byte-identity contract: simulated results are the same with it on
//! or off. Every run loop that supports skipping reads this default at
//! construction time into a per-instance flag, so a CLI `--fast-forward off`
//! set before any simulation starts applies everywhere, while tests that
//! compare on-vs-off runs use the per-instance setters and stay immune to
//! concurrent tests flipping the global.

use std::sync::atomic::{AtomicBool, Ordering};

static FAST_FORWARD: AtomicBool = AtomicBool::new(true);

/// Whether newly constructed run loops should skip provably-idle cycles.
/// Defaults to `true`.
#[inline]
pub fn fast_forward_default() -> bool {
    FAST_FORWARD.load(Ordering::Relaxed)
}

/// Set the process-wide fast-forward default (e.g. from `--fast-forward`).
///
/// Only affects simulations constructed after the call.
pub fn set_fast_forward_default(enabled: bool) {
    FAST_FORWARD.store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_on_and_settable() {
        // Runs in its own process group rarely, so restore the flag to avoid
        // perturbing concurrently running tests that read the default.
        let prev = fast_forward_default();
        set_fast_forward_default(false);
        assert!(!fast_forward_default());
        set_fast_forward_default(true);
        assert!(fast_forward_default());
        set_fast_forward_default(prev);
    }
}
