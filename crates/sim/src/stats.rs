//! Lightweight statistics primitives used by every simulated component.

use sa_telemetry::{HistogramMetric, Scope};

/// A saturating event counter.
///
/// ```
/// use sa_sim::Counter;
/// let mut c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Number of occupancy buckets in [`QueueStats::occ_hist`].
pub const QUEUE_OCC_BUCKETS: usize = 8;

/// Occupancy statistics for a [`BoundedQueue`](crate::BoundedQueue).
///
/// Every field is either a sum or a max, so [`QueueStats::merge`] is
/// associative and commutative — aggregating per-bank stats in any grouping
/// yields the same totals.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items successfully enqueued over the queue's lifetime.
    pub enqueued: u64,
    /// Push attempts rejected because the queue was full (stall events).
    pub rejected: u64,
    /// Highest occupancy ever observed.
    pub peak_occupancy: u64,
    /// Sum of post-push occupancies; divide by `enqueued` for the mean
    /// occupancy seen at push time.
    pub occ_sum: u64,
    /// The queue's capacity (max over merged queues).
    pub capacity: u64,
    /// Post-push occupancy histogram: bucket `i` counts pushes that left the
    /// queue in octile `i` of its capacity (bucket 7 = at/near full).
    pub occ_hist: [u64; QUEUE_OCC_BUCKETS],
    /// Cycle the queue was constructed (nonzero for queues created mid-run).
    pub created_at: u64,
    /// Last cycle folded into [`QueueStats::occ_integral`] by
    /// [`QueueStats::advance`] (min over merged queues is `created_at`).
    pub advanced_to: u64,
    /// Time-weighted occupancy integral in item-cycles, maintained by
    /// [`QueueStats::advance`].
    pub occ_integral: u64,
}

impl QueueStats {
    /// Record a successful push that left the queue holding `occupancy` of
    /// `capacity` items.
    #[inline]
    pub fn observe_push(&mut self, occupancy: u64, capacity: u64) {
        self.enqueued += 1;
        self.peak_occupancy = self.peak_occupancy.max(occupancy);
        self.capacity = self.capacity.max(capacity);
        self.occ_sum += occupancy;
        let bucket = if capacity == 0 || occupancy == 0 {
            0
        } else {
            (((occupancy * QUEUE_OCC_BUCKETS as u64) - 1) / capacity)
                .min(QUEUE_OCC_BUCKETS as u64 - 1)
        };
        self.occ_hist[bucket as usize] += 1;
    }

    /// Fraction of push attempts that stalled, in `[0, 1]`.
    ///
    /// Returns `0.0` when no pushes were attempted.
    pub fn stall_ratio(&self) -> f64 {
        let attempts = self.enqueued + self.rejected;
        if attempts == 0 {
            0.0
        } else {
            self.rejected as f64 / attempts as f64
        }
    }

    /// Mean fractional occupancy observed at push time, in `[0, 1]`.
    ///
    /// Returns `0.0` when nothing was enqueued or the capacity is unknown.
    pub fn utilization(&self) -> f64 {
        let denom = self.enqueued * self.capacity;
        if denom == 0 {
            0.0
        } else {
            self.occ_sum as f64 / denom as f64
        }
    }

    /// Fold the elapsed cycles since the last advance (or since
    /// construction, whichever is later) into the occupancy integral, at the
    /// occupancy that held over that interval.
    #[inline]
    pub fn advance(&mut self, occupancy: u64, now: u64) {
        let from = self.advanced_to.max(self.created_at);
        if now > from {
            self.occ_integral += occupancy * (now - from);
            self.advanced_to = now;
        }
    }

    /// Mean fractional occupancy *per cycle since construction*, in `[0, 1]`.
    ///
    /// Unlike the per-run normalization this used to share with every other
    /// queue, the denominator is the cycles the queue actually existed
    /// (`advanced_to - created_at`), so a queue created mid-run is not
    /// diluted by cycles that predate it. Returns `0.0` before the first
    /// [`QueueStats::advance`] or when the capacity is unknown.
    pub fn cycle_utilization(&self) -> f64 {
        let cycles = self.advanced_to.saturating_sub(self.created_at);
        let denom = cycles * self.capacity;
        if denom == 0 {
            0.0
        } else {
            self.occ_integral as f64 / denom as f64
        }
    }

    /// Record this queue's counters into a telemetry scope.
    pub fn record(&self, scope: &mut Scope<'_>) {
        scope.counter("enqueued", self.enqueued);
        scope.counter("rejected", self.rejected);
        scope.gauge("peak_occupancy", self.peak_occupancy as f64);
        scope.gauge("utilization", self.utilization());
        scope.gauge("cycle_utilization", self.cycle_utilization());
        scope.histogram(
            "occupancy",
            &HistogramMetric::from_counts(&self.occ_hist, "octile-of-capacity"),
        );
    }

    /// Merge another queue's statistics into this one (for aggregating over
    /// banks or channels).
    pub fn merge(&mut self, other: QueueStats) {
        self.enqueued += other.enqueued;
        self.rejected += other.rejected;
        self.peak_occupancy = self.peak_occupancy.max(other.peak_occupancy);
        self.occ_sum += other.occ_sum;
        self.capacity = self.capacity.max(other.capacity);
        for (a, b) in self.occ_hist.iter_mut().zip(other.occ_hist.iter()) {
            *a += b;
        }
        self.created_at = self.created_at.min(other.created_at);
        self.advanced_to = self.advanced_to.max(other.advanced_to);
        self.occ_integral += other.occ_integral;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::default();
        c.add(u64::MAX);
        c.incr();
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn stall_ratio_handles_empty() {
        let s = QueueStats::default();
        assert_eq!(s.stall_ratio(), 0.0);
    }

    #[test]
    fn stall_ratio_computes() {
        let s = QueueStats {
            enqueued: 3,
            rejected: 1,
            peak_occupancy: 2,
            ..QueueStats::default()
        };
        assert!((s.stall_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = QueueStats {
            enqueued: 1,
            rejected: 2,
            peak_occupancy: 3,
            ..QueueStats::default()
        };
        let b = QueueStats {
            enqueued: 10,
            rejected: 20,
            peak_occupancy: 2,
            ..QueueStats::default()
        };
        a.merge(b);
        assert_eq!(a.enqueued, 11);
        assert_eq!(a.rejected, 22);
        assert_eq!(a.peak_occupancy, 3);
    }

    #[test]
    fn observe_push_buckets_octiles() {
        let mut s = QueueStats::default();
        // Capacity 8: occupancy k lands in bucket k-1.
        for occ in 1..=8 {
            s.observe_push(occ, 8);
        }
        assert_eq!(s.occ_hist, [1, 1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(s.enqueued, 8);
        assert_eq!(s.peak_occupancy, 8);
        assert_eq!(s.occ_sum, 36);
        // Capacity 2: half-full goes to the low half, full to the top bucket.
        let mut t = QueueStats::default();
        t.observe_push(1, 2);
        t.observe_push(2, 2);
        assert_eq!(t.occ_hist[3], 1, "occ 1/2 lands in bucket 3");
        assert_eq!(t.occ_hist[7], 1, "occ 2/2 lands in bucket 7");
    }

    #[test]
    fn utilization_is_mean_fractional_occupancy() {
        let mut s = QueueStats::default();
        assert_eq!(s.utilization(), 0.0);
        s.observe_push(1, 4);
        s.observe_push(3, 4);
        // (1 + 3) / (2 pushes * capacity 4) = 0.5
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cycle_utilization_normalizes_by_lifetime() {
        // A queue constructed at cycle 1000 that then holds 2 of 4 slots for
        // 100 cycles is 50% utilized — cycles before its construction must
        // not dilute the figure.
        let mut s = QueueStats {
            created_at: 1000,
            advanced_to: 1000,
            capacity: 4,
            ..QueueStats::default()
        };
        s.advance(2, 1100);
        assert!((s.cycle_utilization() - 0.5).abs() < 1e-12);
        // Advancing with a stale cycle is a no-op.
        s.advance(4, 1050);
        assert!((s.cycle_utilization() - 0.5).abs() < 1e-12);
        // An un-advanced queue reports zero rather than dividing by zero.
        let fresh = QueueStats {
            created_at: 7,
            capacity: 4,
            ..QueueStats::default()
        };
        assert_eq!(fresh.cycle_utilization(), 0.0);
    }

    fn sample_stats(seed: u64) -> QueueStats {
        let mut s = QueueStats::default();
        for i in 0..seed {
            s.observe_push(i % 8 + 1, 8);
            if i % 3 == 0 {
                s.rejected += 1;
            }
        }
        s
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (sample_stats(5), sample_stats(11), sample_stats(17));
        // (a + b) + c
        let mut left = a;
        left.merge(b);
        left.merge(c);
        // a + (b + c)
        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);
        assert_eq!(left, right, "merge is associative");
        // b + a == a + b
        let mut ab = a;
        ab.merge(b);
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab, ba, "merge is commutative");
        // identity
        let mut with_id = a;
        with_id.merge(QueueStats::default());
        assert_eq!(with_id, a, "default is the merge identity");
    }
}
