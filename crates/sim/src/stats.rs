//! Lightweight statistics primitives used by every simulated component.

/// A saturating event counter.
///
/// ```
/// use sa_sim::Counter;
/// let mut c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Occupancy statistics for a [`BoundedQueue`](crate::BoundedQueue).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items successfully enqueued over the queue's lifetime.
    pub enqueued: u64,
    /// Push attempts rejected because the queue was full (stall events).
    pub rejected: u64,
    /// Highest occupancy ever observed.
    pub peak_occupancy: u64,
}

impl QueueStats {
    /// Fraction of push attempts that stalled, in `[0, 1]`.
    ///
    /// Returns `0.0` when no pushes were attempted.
    pub fn stall_ratio(&self) -> f64 {
        let attempts = self.enqueued + self.rejected;
        if attempts == 0 {
            0.0
        } else {
            self.rejected as f64 / attempts as f64
        }
    }

    /// Merge another queue's statistics into this one (for aggregating over
    /// banks or channels).
    pub fn merge(&mut self, other: QueueStats) {
        self.enqueued += other.enqueued;
        self.rejected += other.rejected;
        self.peak_occupancy = self.peak_occupancy.max(other.peak_occupancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::default();
        c.add(u64::MAX);
        c.incr();
        c.add(5);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn stall_ratio_handles_empty() {
        let s = QueueStats::default();
        assert_eq!(s.stall_ratio(), 0.0);
    }

    #[test]
    fn stall_ratio_computes() {
        let s = QueueStats {
            enqueued: 3,
            rejected: 1,
            peak_occupancy: 2,
        };
        assert!((s.stall_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = QueueStats {
            enqueued: 1,
            rejected: 2,
            peak_occupancy: 3,
        };
        let b = QueueStats {
            enqueued: 10,
            rejected: 20,
            peak_occupancy: 2,
        };
        a.merge(b);
        assert_eq!(a.enqueued, 11);
        assert_eq!(a.rejected, 22);
        assert_eq!(a.peak_occupancy, 3);
    }
}
