//! Simulated time: cycles and the global clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in processor clock cycles.
///
/// The base machine (Table 1 of the paper) runs at 1 GHz, so one cycle is
/// one nanosecond; [`Cycle::as_micros`] performs that conversion when
/// reporting execution times the way the paper's figures do.
///
/// ```
/// use sa_sim::Cycle;
/// let t = Cycle(1_500);
/// assert_eq!(t.as_micros(1.0), 1.5);
/// assert_eq!(t + 10, Cycle(1_510));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw cycle count.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Convert a cycle count to microseconds for a clock of `ghz` GHz.
    ///
    /// The paper's histogram figures report execution time in microseconds at
    /// 1 GHz, so `as_micros(1.0)` divides by 1000.
    pub fn as_micros(self, ghz: f64) -> f64 {
        self.0 as f64 / (ghz * 1e3)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Saturating difference in cycles.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Cycle {
        Cycle(v)
    }
}

/// A monotonically advancing clock driving a cycle-level simulation.
///
/// Components are ticked once per [`Clock::advance`]; the clock also guards
/// against runaway simulations via a configurable cycle limit.
///
/// ```
/// use sa_sim::Clock;
/// let mut clk = Clock::new();
/// assert_eq!(clk.now().raw(), 0);
/// clk.advance();
/// assert_eq!(clk.now().raw(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Clock {
    now: Cycle,
    limit: u64,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    /// Default safety limit on simulated cycles (one simulated second).
    pub const DEFAULT_LIMIT: u64 = 1_000_000_000;

    /// Create a clock at cycle zero with the default safety limit.
    pub fn new() -> Clock {
        Clock {
            now: Cycle::ZERO,
            limit: Self::DEFAULT_LIMIT,
        }
    }

    /// Create a clock with an explicit runaway limit.
    ///
    /// # Panics
    ///
    /// [`Clock::advance`] panics when the limit is exceeded; this converts
    /// deadlocks in the simulated machine into loud test failures rather than
    /// hangs.
    pub fn with_limit(limit: u64) -> Clock {
        Clock {
            now: Cycle::ZERO,
            limit,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advance time by one cycle and return the new time.
    ///
    /// # Panics
    ///
    /// Panics if the cycle limit is exceeded, which indicates a deadlock in
    /// the simulated machine (e.g. a request stuck in a full queue forever).
    #[inline]
    pub fn advance(&mut self) -> Cycle {
        self.now.0 += 1;
        assert!(
            self.now.0 <= self.limit,
            "simulation exceeded {} cycles: likely deadlock",
            self.limit
        );
        self.now
    }

    /// Jump time forward to `target` without ticking the cycles in between
    /// — the event-horizon fast-forward primitive (see
    /// `docs/PERFORMANCE.md`). The caller is responsible for having proven
    /// that every skipped cycle would have been a no-op and for folding any
    /// per-cycle accounting into its components in bulk.
    ///
    /// # Panics
    ///
    /// Panics if `target` is behind the current time or beyond the runaway
    /// limit (the same deadlock guard as [`Clock::advance`]).
    #[inline]
    pub fn skip_to(&mut self, target: Cycle) -> Cycle {
        assert!(
            target.0 >= self.now.0,
            "clock cannot move backwards: {} -> {}",
            self.now,
            target
        );
        assert!(
            target.0 <= self.limit,
            "simulation exceeded {} cycles: likely deadlock",
            self.limit
        );
        self.now = target;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(10);
        let b = a + 5;
        assert_eq!(b, Cycle(15));
        assert_eq!(b - a, 5);
        assert_eq!(b.since(a), 5);
        assert_eq!(a.since(b), 0, "since saturates");
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn cycle_display_and_conversion() {
        assert_eq!(Cycle(42).to_string(), "42 cyc");
        assert_eq!(Cycle::from(7u64), Cycle(7));
        assert_eq!(Cycle(2_000).as_micros(1.0), 2.0);
        assert_eq!(Cycle(2_000).as_micros(2.0), 1.0);
    }

    #[test]
    fn clock_advances() {
        let mut c = Clock::new();
        for i in 1..=100 {
            assert_eq!(c.advance().raw(), i);
        }
        assert_eq!(c.now().raw(), 100);
    }

    #[test]
    #[should_panic(expected = "likely deadlock")]
    fn clock_limit_trips() {
        let mut c = Clock::with_limit(3);
        for _ in 0..4 {
            c.advance();
        }
    }

    #[test]
    fn add_assign() {
        let mut t = Cycle(1);
        t += 9;
        assert_eq!(t, Cycle(10));
    }
}
