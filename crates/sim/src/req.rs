//! Memory request/response types and scatter-op value semantics.
//!
//! Every component of the simulated memory system — address generators, cache
//! banks, scatter-add units, DRAM channels, and the multi-node network —
//! exchanges [`MemRequest`] and [`MemResponse`] values. The scatter-add unit
//! applies [`combine`] to merge an incoming value with the value currently in
//! memory, exactly as the paper's functional unit does (Figure 4b).

use std::fmt;

use crate::Cycle;

/// Bytes per machine word. Merrimac is a 64-bit machine; all scatter-add
/// traffic in the paper is in 64-bit words.
pub const WORD_BYTES: u64 = 8;

/// Unique id of an in-flight memory request.
pub type ReqId = u64;

/// A byte address in the simulated global memory. Always word-aligned for
/// word-granularity operations.
///
/// ```
/// use sa_sim::{Addr, WORD_BYTES};
/// let a = Addr::from_word_index(3);
/// assert_eq!(a.0, 3 * WORD_BYTES);
/// assert_eq!(a.word_index(), 3);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Address of the `i`-th 64-bit word.
    #[inline]
    pub fn from_word_index(i: u64) -> Addr {
        Addr(i * WORD_BYTES)
    }

    /// Index of the 64-bit word containing this address.
    #[inline]
    pub fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// The first address of the cache line of size `line_bytes` containing
    /// this address.
    #[inline]
    pub fn line_base(self, line_bytes: u64) -> Addr {
        Addr(self.0 / line_bytes * line_bytes)
    }

    /// Index of the cache line of size `line_bytes` containing this address.
    #[inline]
    pub fn line_index(self, line_bytes: u64) -> u64 {
        self.0 / line_bytes
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// How the 64 bits of a memory word are interpreted by the scatter-add
/// functional unit.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum ScalarKind {
    /// IEEE-754 double precision.
    F64,
    /// Two's-complement 64-bit integer.
    I64,
}

/// The reduction performed by a scatter-op request.
///
/// The paper's mechanism is addition; §3.3 notes that "a simple extension is
/// to expand the set of operations ... to include other commutative and
/// associative operations such as min/max and multiplication", which we
/// implement as well.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum ScatterOp {
    /// `mem += value` — the operation the paper is built around.
    Add,
    /// `mem = min(mem, value)`.
    Min,
    /// `mem = max(mem, value)`.
    Max,
    /// `mem *= value`.
    Mul,
}

/// The identity element of `op` over `kind`, used when a combining cache
/// allocates a line without fetching it from the home node (§3.2,
/// multi-node local phase: "it is simply allocated with a value of 0").
///
/// ```
/// use sa_sim::{identity_bits, ScalarKind, ScatterOp};
/// assert_eq!(identity_bits(ScalarKind::F64, ScatterOp::Add), 0.0f64.to_bits());
/// assert_eq!(identity_bits(ScalarKind::I64, ScatterOp::Mul), 1u64);
/// ```
pub fn identity_bits(kind: ScalarKind, op: ScatterOp) -> u64 {
    match (kind, op) {
        (ScalarKind::F64, ScatterOp::Add) => 0.0f64.to_bits(),
        (ScalarKind::I64, ScatterOp::Add) => 0,
        (ScalarKind::F64, ScatterOp::Mul) => 1.0f64.to_bits(),
        (ScalarKind::I64, ScatterOp::Mul) => 1,
        (ScalarKind::F64, ScatterOp::Min) => f64::INFINITY.to_bits(),
        (ScalarKind::I64, ScatterOp::Min) => i64::MAX as u64,
        (ScalarKind::F64, ScatterOp::Max) => f64::NEG_INFINITY.to_bits(),
        (ScalarKind::I64, ScatterOp::Max) => i64::MIN as u64,
    }
}

/// Apply scatter-op `op` over interpretation `kind`: returns the bits of
/// `old ∘ val`.
///
/// This is the single source of truth for value semantics; the functional
/// unit model, the cache-combining path, and the software baselines all call
/// it, so functional equivalence between hardware and software scatter-add is
/// checked against one definition.
#[inline]
pub fn combine(old_bits: u64, val_bits: u64, kind: ScalarKind, op: ScatterOp) -> u64 {
    match kind {
        ScalarKind::F64 => {
            let a = f64::from_bits(old_bits);
            let b = f64::from_bits(val_bits);
            let r = match op {
                ScatterOp::Add => a + b,
                ScatterOp::Min => a.min(b),
                ScatterOp::Max => a.max(b),
                ScatterOp::Mul => a * b,
            };
            r.to_bits()
        }
        ScalarKind::I64 => {
            let a = old_bits as i64;
            let b = val_bits as i64;
            let r = match op {
                ScatterOp::Add => a.wrapping_add(b),
                ScatterOp::Min => a.min(b),
                ScatterOp::Max => a.max(b),
                ScatterOp::Mul => a.wrapping_mul(b),
            };
            r as u64
        }
    }
}

/// What a memory request asks the memory system to do with one word.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum MemOp {
    /// Fetch the word (a gather element).
    Read,
    /// Overwrite the word (a plain scatter element). Bypasses the scatter-add
    /// unit (Figure 5: "if ... a regular memory-write, it bypasses the
    /// scatter-add").
    Write {
        /// Raw bits to store.
        bits: u64,
    },
    /// Atomically combine `bits` into the word (the paper's scatter-add, or
    /// one of its §3.3 extensions).
    Scatter {
        /// Raw bits of the value to combine.
        bits: u64,
        /// Interpretation of the word.
        kind: ScalarKind,
        /// Reduction to apply.
        op: ScatterOp,
        /// When `true`, the response carries the *old* value — the
        /// data-parallel fetch-and-op extension of §3.3.
        fetch: bool,
    },
}

impl MemOp {
    /// Whether this operation is handled by the scatter-add unit (as opposed
    /// to bypassing it).
    #[inline]
    pub fn is_scatter(&self) -> bool {
        matches!(self, MemOp::Scatter { .. })
    }

    /// Whether the issuer expects a data response (reads and fetch-ops).
    #[inline]
    pub fn wants_data(&self) -> bool {
        match self {
            MemOp::Read => true,
            MemOp::Write { .. } => false,
            MemOp::Scatter { fetch, .. } => *fetch,
        }
    }
}

/// Who issued a request — used to route completions back.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub enum Origin {
    /// Address generator `ag` of node `node`.
    AddrGen {
        /// Node index (0 for single-node runs).
        node: usize,
        /// Address generator index within the node.
        ag: usize,
    },
    /// Internal traffic of the scatter-add unit attached to cache bank
    /// `bank` of node `node` (its fills and write-backs).
    SaUnit {
        /// Node index.
        node: usize,
        /// Cache bank / scatter-add unit index.
        bank: usize,
    },
    /// A cache bank's fill/write-back traffic to the DRAM channels.
    CacheBank {
        /// Node index.
        node: usize,
        /// Bank index.
        bank: usize,
    },
    /// A remote node's network interface (multi-node traffic); `node` is the
    /// *requesting* node.
    Remote {
        /// Requesting node index.
        node: usize,
    },
}

/// A single-word memory request flowing through the simulated machine.
#[derive(Copy, Clone, Debug)]
pub struct MemRequest {
    /// Unique id; responses echo it.
    pub id: ReqId,
    /// Target word address.
    pub addr: Addr,
    /// Operation to perform.
    pub op: MemOp,
    /// Issuing component, for response routing.
    pub origin: Origin,
}

/// Completion of a [`MemRequest`].
#[derive(Copy, Clone, Debug)]
pub struct MemResponse {
    /// Id of the completed request.
    pub id: ReqId,
    /// Address the request targeted.
    pub addr: Addr,
    /// Data carried back: the fetched word for reads, the pre-op value for
    /// fetch-ops, zero for plain acknowledgements.
    pub bits: u64,
    /// Component the completed request originated from.
    pub origin: Origin,
    /// Simulated time of completion.
    pub at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_word_and_line_math() {
        let a = Addr(100);
        assert_eq!(a.word_index(), 12);
        assert_eq!(a.line_base(32), Addr(96));
        assert_eq!(a.line_index(32), 3);
        assert_eq!(Addr::from_word_index(5), Addr(40));
        assert_eq!(Addr(64).to_string(), "0x40");
    }

    #[test]
    fn combine_f64_add() {
        let r = combine(
            1.25f64.to_bits(),
            2.5f64.to_bits(),
            ScalarKind::F64,
            ScatterOp::Add,
        );
        assert_eq!(f64::from_bits(r), 3.75);
    }

    #[test]
    fn combine_i64_ops() {
        let five = 5i64 as u64;
        let neg2 = (-2i64) as u64;
        assert_eq!(
            combine(five, neg2, ScalarKind::I64, ScatterOp::Add) as i64,
            3
        );
        assert_eq!(
            combine(five, neg2, ScalarKind::I64, ScatterOp::Min) as i64,
            -2
        );
        assert_eq!(
            combine(five, neg2, ScalarKind::I64, ScatterOp::Max) as i64,
            5
        );
        assert_eq!(
            combine(five, neg2, ScalarKind::I64, ScatterOp::Mul) as i64,
            -10
        );
    }

    #[test]
    fn combine_f64_min_max_mul() {
        let a = 3.0f64.to_bits();
        let b = (-7.0f64).to_bits();
        assert_eq!(
            f64::from_bits(combine(a, b, ScalarKind::F64, ScatterOp::Min)),
            -7.0
        );
        assert_eq!(
            f64::from_bits(combine(a, b, ScalarKind::F64, ScatterOp::Max)),
            3.0
        );
        assert_eq!(
            f64::from_bits(combine(a, b, ScalarKind::F64, ScatterOp::Mul)),
            -21.0
        );
    }

    #[test]
    fn combine_i64_wraps_instead_of_panicking() {
        let max = i64::MAX as u64;
        let one = 1i64 as u64;
        assert_eq!(
            combine(max, one, ScalarKind::I64, ScatterOp::Add) as i64,
            i64::MIN
        );
    }

    #[test]
    fn identities_are_identities() {
        for kind in [ScalarKind::F64, ScalarKind::I64] {
            for op in [
                ScatterOp::Add,
                ScatterOp::Min,
                ScatterOp::Max,
                ScatterOp::Mul,
            ] {
                let id = identity_bits(kind, op);
                for raw in [0u64, 1, 42, (-3i64) as u64] {
                    let v = match kind {
                        ScalarKind::F64 => (raw as i64 as f64).to_bits(),
                        ScalarKind::I64 => raw,
                    };
                    assert_eq!(
                        combine(id, v, kind, op),
                        v,
                        "identity failed for {kind:?} {op:?} value {raw}"
                    );
                }
            }
        }
    }

    #[test]
    fn memop_classification() {
        assert!(!MemOp::Read.is_scatter());
        assert!(MemOp::Read.wants_data());
        assert!(!MemOp::Write { bits: 0 }.is_scatter());
        assert!(!MemOp::Write { bits: 0 }.wants_data());
        let sa = MemOp::Scatter {
            bits: 0,
            kind: ScalarKind::F64,
            op: ScatterOp::Add,
            fetch: false,
        };
        assert!(sa.is_scatter());
        assert!(!sa.wants_data());
        let fa = MemOp::Scatter {
            bits: 0,
            kind: ScalarKind::I64,
            op: ScatterOp::Add,
            fetch: true,
        };
        assert!(fa.wants_data());
    }
}
