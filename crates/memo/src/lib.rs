//! Content-addressed on-disk result store for deterministic runs.
//!
//! Every byte of a run's output is deterministic given (workload spec,
//! machine config, fault plan, seed) — the byte-identity contract the
//! parallelism and fast-forward layers already enforce. That makes exact
//! memoization sound: a cache entry keyed by a canonical fingerprint of the
//! run's inputs reproduces the run byte-for-byte, so a warm re-run costs
//! zero simulation.
//!
//! The store is a flat directory of `<digest>.json` entries:
//!
//! - **Keys** are built with [`Fingerprint`]: an insertion-ordered JSON
//!   document of the execution-*relevant* inputs, automatically salted with
//!   the sa-stats schema version and this crate's version so a schema or
//!   code change invalidates every old entry. Execution-irrelevant knobs
//!   (`--jobs`, `--step-threads`, `--node-threads`, `--fast-forward`,
//!   progress sinks) must stay out of the key — they do not change output
//!   bytes. Large index/value arrays enter the key as SHA-256 digests
//!   ([`hash_u64s`]/[`hash_f64s`]) rather than inline, keeping key documents
//!   small enough to store alongside the payload for auditability.
//! - **Writes** go to a process-unique temp file then `rename` into place,
//!   so concurrent sweep processes racing on one key are safe: rename is
//!   atomic within a directory and the losers simply overwrite with an
//!   identical entry.
//! - **Reads** validate everything (entry schema/version, key digest,
//!   payload checksum); a truncated, bit-flipped, or stale entry is deleted
//!   and reported as a miss so the caller recomputes — corruption can never
//!   crash a run or poison an output.
//! - **Eviction** is a size-bounded LRU ([`ResultCache::gc`]): hits touch
//!   the entry's mtime, gc removes oldest-first until the store fits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use sa_telemetry::{Json, STATS_SCHEMA_VERSION};

/// `schema` field of every on-disk entry.
pub const ENTRY_SCHEMA: &str = "sa-cache-entry";

/// Version of the on-disk entry layout; bumping it invalidates all entries.
pub const ENTRY_VERSION: u64 = 1;

/// Environment variable naming the cache directory (enables caching when
/// set, even without a `--cache` flag).
pub const ENV_DIR: &str = "SA_CACHE_DIR";

/// Directory used by a bare `--cache` when [`ENV_DIR`] is unset.
pub const DEFAULT_DIR: &str = ".sa-cache";

// ---------------------------------------------------------------------------
// SHA-256 (hand-rolled: the build environment has no registry access, and a
// content-addressed store needs a real collision-resistant digest, not fxhash)
// ---------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 state.
struct Sha256 {
    h: [u32; 8],
    block: [u8; 64],
    block_len: usize,
    total_len: u64,
}

impl Sha256 {
    fn new() -> Sha256 {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            block: [0; 64],
            block_len: 0,
            total_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;
        while !data.is_empty() {
            let take = (64 - self.block_len).min(data.len());
            self.block[self.block_len..self.block_len + take].copy_from_slice(&data[..take]);
            self.block_len += take;
            data = &data[take..];
            if self.block_len == 64 {
                self.compress();
                self.block_len = 0;
            }
        }
    }

    fn compress(&mut self) {
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                self.block[4 * i],
                self.block[4 * i + 1],
                self.block[4 * i + 2],
                self.block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (i, v) in [a, b, c, d, e, f, g, h].into_iter().enumerate() {
            self.h[i] = self.h[i].wrapping_add(v);
        }
    }

    fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len * 8;
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        // update() would count the length bytes into total_len; write directly.
        self.block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress();
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// SHA-256 digest of `bytes` as a lowercase hex string.
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut s = Sha256::new();
    s.update(bytes);
    let digest = s.finish();
    let mut hex = String::with_capacity(64);
    for b in digest {
        hex.push_str(&format!("{b:02x}"));
    }
    hex
}

/// Digest of a `u64` slice (little-endian words) — for folding large index
/// arrays into a fingerprint without embedding them.
pub fn hash_u64s(values: &[u64]) -> String {
    let mut s = Sha256::new();
    for v in values {
        s.update(&v.to_le_bytes());
    }
    let digest = s.finish();
    let mut hex = String::with_capacity(64);
    for b in digest {
        hex.push_str(&format!("{b:02x}"));
    }
    hex
}

/// Digest of an `f64` slice (bit patterns, little-endian) — exact, no
/// rounding: two value arrays hash equal iff they are bitwise equal.
pub fn hash_f64s(values: &[f64]) -> String {
    let mut s = Sha256::new();
    for v in values {
        s.update(&v.to_bits().to_le_bytes());
    }
    let digest = s.finish();
    let mut hex = String::with_capacity(64);
    for b in digest {
        hex.push_str(&format!("{b:02x}"));
    }
    hex
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Canonical cache key: an insertion-ordered JSON document of every
/// execution-relevant input, salted with schema and crate versions.
///
/// Build one field at a time in a fixed order; the digest is the SHA-256 of
/// the compact JSON encoding, so any difference in any field — or in the
/// salt — yields a different entry.
///
/// ```
/// use sa_memo::Fingerprint;
/// use sa_telemetry::Json;
///
/// let a = Fingerprint::new("session").u64("seed", 1).digest();
/// let b = Fingerprint::new("session").u64("seed", 2).digest();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct Fingerprint {
    key: Json,
}

impl Fingerprint {
    /// A fingerprint for a run of the given `kind` (e.g. `"session"`,
    /// `"sweep-point"`, `"canonical"`), pre-salted for invalidation.
    pub fn new(kind: &str) -> Fingerprint {
        let mut key = Json::obj();
        key.push("schema", Json::Str("sa-cache-key".to_string()));
        key.push("stats_schema_version", Json::UInt(STATS_SCHEMA_VERSION));
        key.push(
            "crate_version",
            Json::Str(env!("CARGO_PKG_VERSION").to_string()),
        );
        key.push("kind", Json::Str(kind.to_string()));
        Fingerprint { key }
    }

    /// A fingerprint whose entire content is one canonical JSON payload —
    /// the spec-first key shape: `Fingerprint::for_payload("session",
    /// spec.canonical_json())` makes the serialized job description *be*
    /// the cache key (plus the usual schema/version salts), so any two
    /// routes that produce the same canonical spec (builder chain, spec
    /// file, HTTP job body) hit the same entry by construction.
    pub fn for_payload(kind: &str, payload: Json) -> Fingerprint {
        Fingerprint::new(kind).field("spec", payload)
    }

    /// Append an arbitrary JSON field.
    pub fn field(mut self, name: &str, value: Json) -> Fingerprint {
        self.key.push(name, value);
        self
    }

    /// Append a string field.
    pub fn str(self, name: &str, value: &str) -> Fingerprint {
        self.field(name, Json::Str(value.to_string()))
    }

    /// Append an unsigned integer field.
    pub fn u64(self, name: &str, value: u64) -> Fingerprint {
        self.field(name, Json::UInt(value))
    }

    /// Append a float field (bit-exact through the JSON writer).
    pub fn f64(self, name: &str, value: f64) -> Fingerprint {
        self.field(name, Json::Num(value))
    }

    /// Append a boolean field.
    pub fn bool(self, name: &str, value: bool) -> Fingerprint {
        self.field(name, Json::Bool(value))
    }

    /// The key document (stored verbatim inside each entry for audit).
    pub fn key_json(&self) -> &Json {
        &self.key
    }

    /// Content address: SHA-256 of the compact key encoding.
    pub fn digest(&self) -> String {
        sha256_hex(self.key.to_string_compact().as_bytes())
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// One entry as reported by [`ResultCache::ls`].
#[derive(Clone, Debug)]
pub struct EntryInfo {
    /// Content address (file stem).
    pub digest: String,
    /// Entry size on disk in bytes.
    pub bytes: u64,
    /// Last-used time (mtime; hits touch it).
    pub modified: SystemTime,
}

/// Outcome of a [`ResultCache::gc`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries deleted (oldest-first).
    pub removed: usize,
    /// Entries kept.
    pub kept: usize,
    /// Bytes freed.
    pub bytes_freed: u64,
    /// Bytes still stored.
    pub bytes_kept: u64,
}

/// A content-addressed result store rooted at one directory.
///
/// Cheap to share: hit/miss/store counts are atomics, all file operations
/// are self-contained, and concurrent processes on the same directory are
/// safe by construction (atomic rename, validate-on-read).
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl ResultCache {
    /// Open (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// Open the store named by `SA_CACHE_DIR`, if set and creatable.
    pub fn from_env() -> Option<ResultCache> {
        let dir = std::env::var(ENV_DIR).ok().filter(|d| !d.is_empty())?;
        ResultCache::open(dir).ok()
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Hits observed through this handle.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses observed through this handle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Stores performed through this handle.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Look up `fp`, returning the stored payload on a valid hit.
    ///
    /// Any defect — unreadable file, truncation, bad JSON, wrong entry
    /// schema/version, digest mismatch, payload checksum mismatch — deletes
    /// the entry and returns `None` so the caller recomputes. A hit touches
    /// the entry's mtime (the LRU clock for [`gc`](ResultCache::gc)).
    pub fn lookup(&self, fp: &Fingerprint) -> Option<Json> {
        let digest = fp.digest();
        let path = self.entry_path(&digest);
        let mut text = String::new();
        match File::open(&path).and_then(|mut f| f.read_to_string(&mut text)) {
            Ok(_) => {}
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        match validate_entry(&text, &digest) {
            Some(payload) => {
                // Touch mtime so gc sees this entry as recently used. Best
                // effort: a read-only store still serves hits.
                if let Ok(f) = File::options().append(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                let _ = fs::remove_file(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `payload` under `fp` (atomic: temp file + rename).
    ///
    /// Failures are returned, not panicked — a full disk degrades to "no
    /// cache", never to a broken run.
    pub fn store(&self, fp: &Fingerprint, payload: &Json) -> io::Result<()> {
        let digest = fp.digest();
        let payload_text = payload.to_string_compact();
        let mut entry = Json::obj();
        entry.push("schema", Json::Str(ENTRY_SCHEMA.to_string()));
        entry.push("version", Json::UInt(ENTRY_VERSION));
        entry.push("digest", Json::Str(digest.clone()));
        entry.push(
            "payload_sha256",
            Json::Str(sha256_hex(payload_text.as_bytes())),
        );
        entry.push("key", fp.key_json().clone());
        entry.push("payload", payload.clone());
        // Unique per process AND per call: two threads of one process may
        // race on the same key, so the pid alone is not enough.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{digest}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(entry.to_string_compact().as_bytes())?;
            f.write_all(b"\n")?;
        }
        let result = fs::rename(&tmp, self.entry_path(&digest));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// All entries, least-recently-used first (ties broken by digest so the
    /// listing is stable). Stray temp files are skipped.
    pub fn ls(&self) -> io::Result<Vec<EntryInfo>> {
        let mut entries = Vec::new();
        for item in fs::read_dir(&self.dir)? {
            let item = item?;
            let name = item.file_name();
            let name = name.to_string_lossy();
            let Some(digest) = name.strip_suffix(".json") else {
                continue;
            };
            let meta = match item.metadata() {
                Ok(m) => m,
                Err(_) => continue, // raced with a concurrent gc/clear
            };
            entries.push(EntryInfo {
                digest: digest.to_string(),
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        entries.sort_by(|a, b| a.modified.cmp(&b.modified).then(a.digest.cmp(&b.digest)));
        Ok(entries)
    }

    /// Total entry count and bytes on disk.
    pub fn usage(&self) -> io::Result<(usize, u64)> {
        let entries = self.ls()?;
        let bytes = entries.iter().map(|e| e.bytes).sum();
        Ok((entries.len(), bytes))
    }

    /// Delete least-recently-used entries until the store holds at most
    /// `max_bytes`.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let entries = self.ls()?;
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut report = GcReport {
            kept: entries.len(),
            bytes_kept: total,
            ..GcReport::default()
        };
        for entry in &entries {
            if total <= max_bytes {
                break;
            }
            match fs::remove_file(self.entry_path(&entry.digest)) {
                Ok(()) => {
                    total -= entry.bytes;
                    report.removed += 1;
                    report.kept -= 1;
                    report.bytes_freed += entry.bytes;
                    report.bytes_kept -= entry.bytes;
                }
                Err(_) => continue, // raced with another gc; recount below
            }
        }
        Ok(report)
    }

    /// Delete every entry, returning how many were removed.
    pub fn clear(&self) -> io::Result<usize> {
        let entries = self.ls()?;
        let mut removed = 0;
        for entry in &entries {
            if fs::remove_file(self.entry_path(&entry.digest)).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Parse and validate one entry's text; `Some(payload)` only if everything
/// checks out.
fn validate_entry(text: &str, want_digest: &str) -> Option<Json> {
    let entry = Json::parse(text).ok()?;
    if entry.get("schema").and_then(Json::as_str) != Some(ENTRY_SCHEMA) {
        return None;
    }
    if entry.get("version").and_then(Json::as_u64) != Some(ENTRY_VERSION) {
        return None;
    }
    if entry.get("digest").and_then(Json::as_str) != Some(want_digest) {
        return None;
    }
    let payload = entry.get("payload")?;
    let checksum = entry.get("payload_sha256").and_then(Json::as_str)?;
    if sha256_hex(payload.to_string_compact().as_bytes()) != checksum {
        return None;
    }
    Some(payload.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sa-memo-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(n: u64) -> Json {
        let mut p = Json::obj();
        p.push("cycles", Json::UInt(n));
        p.push("gbps", Json::Num(38.4));
        p
    }

    #[test]
    fn sha256_matches_known_vectors() {
        // FIPS 180-2 test vectors.
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block message (one million 'a' would be slow in debug; use
        // 200 bytes to cross several 64-byte blocks instead).
        let long = vec![b'a'; 200];
        assert_eq!(sha256_hex(&long), {
            let mut s = Sha256::new();
            for chunk in long.chunks(7) {
                s.update(chunk);
            }
            let d = s.finish();
            d.iter().map(|b| format!("{b:02x}")).collect::<String>()
        });
    }

    #[test]
    fn fingerprint_digest_is_order_and_value_sensitive() {
        let base = Fingerprint::new("t").u64("a", 1).u64("b", 2);
        assert_eq!(
            base.digest(),
            Fingerprint::new("t").u64("a", 1).u64("b", 2).digest()
        );
        assert_ne!(
            base.digest(),
            Fingerprint::new("t").u64("b", 2).u64("a", 1).digest()
        );
        assert_ne!(
            base.digest(),
            Fingerprint::new("t").u64("a", 1).u64("b", 3).digest()
        );
        assert_ne!(
            base.digest(),
            Fingerprint::new("u").u64("a", 1).u64("b", 2).digest()
        );
    }

    #[test]
    fn array_hashes_are_exact() {
        assert_eq!(hash_u64s(&[1, 2, 3]), hash_u64s(&[1, 2, 3]));
        assert_ne!(hash_u64s(&[1, 2, 3]), hash_u64s(&[1, 2, 4]));
        assert_ne!(hash_u64s(&[1, 2]), hash_u64s(&[1, 2, 0]));
        assert_eq!(hash_f64s(&[0.1]), hash_f64s(&[0.1]));
        assert_ne!(hash_f64s(&[0.1]), hash_f64s(&[0.1 + f64::EPSILON]));
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let fp = Fingerprint::new("t").u64("seed", 7);
        assert_eq!(cache.lookup(&fp), None);
        cache.store(&fp, &payload(42)).unwrap();
        let hit = cache.lookup(&fp).expect("stored entry should hit");
        assert_eq!(hit.to_string_compact(), payload(42).to_string_compact());
        assert_eq!((cache.hits(), cache.misses(), cache.stores()), (1, 1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_keys_do_not_collide() {
        let dir = temp_dir("keys");
        let cache = ResultCache::open(&dir).unwrap();
        let a = Fingerprint::new("t").u64("seed", 1);
        let b = Fingerprint::new("t").u64("seed", 2);
        cache.store(&a, &payload(1)).unwrap();
        assert_eq!(cache.lookup(&b), None);
        assert_eq!(cache.lookup(&a).unwrap(), payload(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_evicted_and_recomputed() {
        let dir = temp_dir("truncate");
        let cache = ResultCache::open(&dir).unwrap();
        let fp = Fingerprint::new("t").u64("seed", 9);
        cache.store(&fp, &payload(9)).unwrap();
        let path = dir.join(format!("{}.json", fp.digest()));
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.lookup(&fp), None, "truncated entry must miss");
        assert!(!path.exists(), "corrupt entry must be evicted");
        // Recompute-and-store produces an identical entry again.
        cache.store(&fp, &payload(9)).unwrap();
        assert_eq!(fs::read(&path).unwrap(), full);
        assert_eq!(cache.lookup(&fp).unwrap(), payload(9));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflipped_payload_is_evicted() {
        let dir = temp_dir("bitflip");
        let cache = ResultCache::open(&dir).unwrap();
        let fp = Fingerprint::new("t").u64("seed", 11);
        cache.store(&fp, &payload(11)).unwrap();
        let path = dir.join(format!("{}.json", fp.digest()));
        let mut bytes = fs::read(&path).unwrap();
        // Flip a digit inside the payload's cycles value: the entry still
        // parses, but the checksum catches it.
        let at = String::from_utf8(bytes.clone())
            .unwrap()
            .find("\"cycles\":11")
            .unwrap()
            + "\"cycles\":1".len();
        bytes[at] = b'2';
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.lookup(&fp), None, "bit-flipped entry must miss");
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_converge_to_one_valid_entry() {
        let dir = temp_dir("race");
        let cache = ResultCache::open(&dir).unwrap();
        let fp = Fingerprint::new("t").u64("seed", 13);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let mine = ResultCache::open(&dir).unwrap();
                    let fp = Fingerprint::new("t").u64("seed", 13);
                    for _ in 0..50 {
                        mine.store(&fp, &payload(13)).unwrap();
                        if let Some(p) = mine.lookup(&fp) {
                            assert_eq!(p, payload(13));
                        }
                    }
                });
            }
        });
        // Exactly one file, valid, with the agreed payload.
        let entries = cache.ls().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(cache.lookup(&fp).unwrap(), payload(13));
        assert!(
            fs::read_dir(&dir).unwrap().count() == 1,
            "no stray temp files may survive"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_lru_until_under_bound() {
        let dir = temp_dir("gc");
        let cache = ResultCache::open(&dir).unwrap();
        let fps: Vec<Fingerprint> = (0..4)
            .map(|i| Fingerprint::new("t").u64("seed", i))
            .collect();
        for (i, fp) in fps.iter().enumerate() {
            cache.store(fp, &payload(i as u64)).unwrap();
            // Distinct mtimes even on coarse filesystem clocks.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // Touch the oldest entry so it becomes the newest.
        assert!(cache.lookup(&fps[0]).is_some());
        let (count, total) = cache.usage().unwrap();
        assert_eq!(count, 4);
        let per_entry = total / 4;
        let report = cache.gc(2 * per_entry + 1).unwrap();
        assert_eq!(report.removed, 2);
        assert_eq!(report.kept, 2);
        assert!(report.bytes_kept <= 2 * per_entry + 1);
        // Survivors: the touched entry 0 and the newest entry 3.
        assert!(cache.lookup(&fps[0]).is_some());
        assert!(cache.lookup(&fps[3]).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_empties_the_store() {
        let dir = temp_dir("clear");
        let cache = ResultCache::open(&dir).unwrap();
        for i in 0..3 {
            cache
                .store(&Fingerprint::new("t").u64("seed", i), &payload(i))
                .unwrap();
        }
        assert_eq!(cache.clear().unwrap(), 3);
        assert_eq!(cache.usage().unwrap(), (0, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_salt_invalidates() {
        // A future schema bump must change every digest; simulate by
        // checking the salt fields are present in the key doc.
        let fp = Fingerprint::new("t");
        let key = fp.key_json();
        assert_eq!(
            key.get("stats_schema_version").and_then(Json::as_u64),
            Some(STATS_SCHEMA_VERSION)
        );
        assert!(key.get("crate_version").and_then(Json::as_str).is_some());
    }
}
