//! The functional contents of global memory.

use fxhash::FxHashMap;
use sa_sim::{combine, Addr, ScalarKind, ScatterOp, WORD_BYTES};

/// Sparse, word-granularity functional memory.
///
/// The store holds the *values* of the simulated global memory while the
/// timing models decide *when* each access completes. Unwritten words read
/// as zero, matching a zero-initialized result array.
///
/// ```
/// use sa_mem::BackingStore;
/// use sa_sim::{Addr, ScalarKind, ScatterOp};
///
/// let mut m = BackingStore::new();
/// let a = Addr::from_word_index(10);
/// m.scatter_combine(a, 3.0f64.to_bits(), ScalarKind::F64, ScatterOp::Add);
/// m.scatter_combine(a, 4.0f64.to_bits(), ScalarKind::F64, ScatterOp::Add);
/// assert_eq!(m.read_f64(a), 7.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BackingStore {
    // Fx-hashed: this map is touched on every simulated word access (the
    // hottest map in the workspace) and is never iterated for output, so the
    // deterministic fast hasher is safe. See docs/PERFORMANCE.md.
    words: FxHashMap<u64, u64>,
}

impl BackingStore {
    /// An empty (all-zero) memory.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    /// Raw bits of the word at `addr` (zero if never written).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned — the simulated machine only
    /// issues word-granularity accesses and misalignment indicates a bug.
    pub fn read_word(&self, addr: Addr) -> u64 {
        assert_eq!(addr.0 % WORD_BYTES, 0, "unaligned read at {addr}");
        self.words.get(&addr.word_index()).copied().unwrap_or(0)
    }

    /// Store raw bits at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not word-aligned.
    pub fn write_word(&mut self, addr: Addr, bits: u64) {
        assert_eq!(addr.0 % WORD_BYTES, 0, "unaligned write at {addr}");
        if bits == 0 {
            // Keep the map sparse: zero is the default.
            self.words.remove(&addr.word_index());
        } else {
            self.words.insert(addr.word_index(), bits);
        }
    }

    /// Read the word at `addr` as an `f64`.
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_word(addr))
    }

    /// Store an `f64` at `addr`.
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.write_word(addr, v.to_bits());
    }

    /// Read the word at `addr` as an `i64`.
    pub fn read_i64(&self, addr: Addr) -> i64 {
        self.read_word(addr) as i64
    }

    /// Store an `i64` at `addr`.
    pub fn write_i64(&mut self, addr: Addr, v: i64) {
        self.write_word(addr, v as u64);
    }

    /// Atomically (from the simulation's point of view) combine `bits` into
    /// the word at `addr` and return the *old* value's bits.
    pub fn scatter_combine(
        &mut self,
        addr: Addr,
        bits: u64,
        kind: ScalarKind,
        op: ScatterOp,
    ) -> u64 {
        let old = self.read_word(addr);
        self.write_word(addr, combine(old, bits, kind, op));
        old
    }

    /// Read `words` consecutive words starting at `base` (a line fill).
    pub fn read_line(&self, base: Addr, words: u64) -> Vec<u64> {
        (0..words)
            .map(|i| self.read_word(Addr(base.0 + i * WORD_BYTES)))
            .collect()
    }

    /// Write `data` to consecutive words starting at `base` (a write-back).
    pub fn write_line(&mut self, base: Addr, data: &[u64]) {
        for (i, &bits) in data.iter().enumerate() {
            self.write_word(Addr(base.0 + i as u64 * WORD_BYTES), bits);
        }
    }

    /// Number of non-zero words currently stored (for tests and stats).
    pub fn population(&self) -> usize {
        self.words.len()
    }

    /// Extract `n` consecutive `f64` values starting at `base` (for
    /// comparing a simulated result array against a reference).
    pub fn extract_f64(&self, base: Addr, n: usize) -> Vec<f64> {
        (0..n as u64)
            .map(|i| self.read_f64(Addr(base.0 + i * WORD_BYTES)))
            .collect()
    }

    /// Extract `n` consecutive `i64` values starting at `base`.
    pub fn extract_i64(&self, base: Addr, n: usize) -> Vec<i64> {
        (0..n as u64)
            .map(|i| self.read_i64(Addr(base.0 + i * WORD_BYTES)))
            .collect()
    }

    /// Load `values` as `f64` words starting at `base`.
    pub fn load_f64(&mut self, base: Addr, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f64(Addr(base.0 + i as u64 * WORD_BYTES), v);
        }
    }

    /// Load `values` as `i64` words starting at `base`.
    pub fn load_i64(&mut self, base: Addr, values: &[i64]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_i64(Addr(base.0 + i as u64 * WORD_BYTES), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = BackingStore::new();
        assert_eq!(m.read_word(Addr(0)), 0);
        assert_eq!(m.read_f64(Addr(8)), 0.0);
        assert_eq!(m.read_i64(Addr(16)), 0);
        assert_eq!(m.population(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = BackingStore::new();
        m.write_f64(Addr(0), -1.5);
        m.write_i64(Addr(8), -42);
        assert_eq!(m.read_f64(Addr(0)), -1.5);
        assert_eq!(m.read_i64(Addr(8)), -42);
        assert_eq!(m.population(), 2);
    }

    #[test]
    fn writing_zero_keeps_store_sparse() {
        let mut m = BackingStore::new();
        m.write_word(Addr(0), 7);
        assert_eq!(m.population(), 1);
        m.write_word(Addr(0), 0);
        assert_eq!(m.population(), 0);
        assert_eq!(m.read_word(Addr(0)), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned read")]
    fn unaligned_read_panics() {
        BackingStore::new().read_word(Addr(3));
    }

    #[test]
    #[should_panic(expected = "unaligned write")]
    fn unaligned_write_panics() {
        BackingStore::new().write_word(Addr(5), 1);
    }

    #[test]
    fn scatter_combine_returns_old() {
        let mut m = BackingStore::new();
        let a = Addr::from_word_index(2);
        let old = m.scatter_combine(a, 5, ScalarKind::I64, ScatterOp::Add);
        assert_eq!(old as i64, 0);
        let old = m.scatter_combine(a, 3, ScalarKind::I64, ScatterOp::Add);
        assert_eq!(old as i64, 5);
        assert_eq!(m.read_i64(a), 8);
    }

    #[test]
    fn line_roundtrip() {
        let mut m = BackingStore::new();
        let base = Addr::from_word_index(8);
        m.write_line(base, &[1, 2, 3, 4]);
        assert_eq!(m.read_line(base, 4), vec![1, 2, 3, 4]);
        // A partial overlap reads the stored values plus zero fill.
        assert_eq!(m.read_line(Addr::from_word_index(10), 4), vec![3, 4, 0, 0]);
    }

    #[test]
    fn bulk_load_and_extract() {
        let mut m = BackingStore::new();
        let base = Addr::from_word_index(100);
        m.load_f64(base, &[1.0, 2.0, 3.0]);
        assert_eq!(m.extract_f64(base, 3), vec![1.0, 2.0, 3.0]);
        m.load_i64(base, &[-1, -2, -3]);
        assert_eq!(m.extract_i64(base, 3), vec![-1, -2, -3]);
    }
}
