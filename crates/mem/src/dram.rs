//! Detailed DRAM channel timing model.
//!
//! Table 1 of the paper gives 16 DRAM interface channels totalling 38.4 GB/s.
//! Each [`DramChannel`] models one of them: a bounded command queue, a set of
//! internal DRAM banks with open-row state, and a data bus with a sustained
//! word rate. Commands are chosen with a *first-ready* policy — a pending
//! command that hits an open row is served before older row-miss commands —
//! which approximates the memory-access scheduling the paper assumes keeps
//! "variance small" (§4.4).
//!
//! The model serves one command at a time per channel; bank-level overlap is
//! approximated by the scheduler's preference for open rows rather than by
//! simulating concurrent activates. This keeps the model simple while
//! preserving the bandwidth/latency behaviour the paper's experiments probe.

use sa_faults::{FaultInjector, FaultKind, ResilienceStats};
use sa_sim::{Addr, BoundedQueue, Cycle, DramConfig, Origin, ReqId, Throughput};
use sa_telemetry::{OccClass, OccupancyStats};

use crate::BackingStore;

/// Whether a DRAM command moves data to or from the chip.
#[derive(Clone, Debug, PartialEq)]
pub enum DramKind {
    /// Fetch `words` consecutive words (a cache-line fill or a single-word
    /// read in uncached mode).
    Read,
    /// Store the carried data (a write-back or uncached write).
    Write(Vec<u64>),
}

/// A burst command sent to one DRAM channel.
#[derive(Clone, Debug)]
pub struct DramCommand {
    /// Request id echoed in the response.
    pub id: ReqId,
    /// Originating memory/scatter request, when this burst is directly on
    /// its critical path (a demand fill or write-around). `None` for traffic
    /// with no single originator, e.g. eviction write-backs. Used only for
    /// request-lifecycle tracing.
    pub req: Option<ReqId>,
    /// First byte address of the burst (word aligned).
    pub base: Addr,
    /// Burst length in words. For writes this must equal the data length.
    pub words: u32,
    /// Read or write.
    pub kind: DramKind,
    /// Issuing component, echoed in the response.
    pub origin: Origin,
}

/// Completion of a [`DramCommand`].
#[derive(Clone, Debug)]
pub struct DramResponse {
    /// Id of the completed command.
    pub id: ReqId,
    /// Base address of the burst.
    pub base: Addr,
    /// Fetched words (empty for writes).
    pub data: Vec<u64>,
    /// Issuing component.
    pub origin: Origin,
    /// Completion time.
    pub at: Cycle,
    /// ECC detected an uncorrectable (double-bit) error in the fetched
    /// data. The consumer must not install it and should replay the read;
    /// always false for writes and fault-free runs.
    pub ecc_error: bool,
}

/// Aggregate counters for one channel.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read commands completed.
    pub reads: u64,
    /// Write commands completed.
    pub writes: u64,
    /// Commands that hit an open row.
    pub row_hits: u64,
    /// Commands that required a row activation.
    pub row_misses: u64,
    /// Total words moved over the data bus.
    pub words_transferred: u64,
    /// Sum of queue-entry-to-completion latencies (cycles), for averaging.
    pub total_latency: u64,
    /// Busy/idle cycle account (command queued or in flight / empty;
    /// row-access waits count as busy — they are the channel's own latency),
    /// with `saturated` counting cycles the command queue was full.
    pub occ: OccupancyStats,
}

impl DramStats {
    /// Mean command latency in cycles (0 if nothing completed).
    pub fn avg_latency(&self) -> f64 {
        let n = self.reads + self.writes;
        if n == 0 {
            0.0
        } else {
            self.total_latency as f64 / n as f64
        }
    }

    /// Merge another channel's counters (for whole-memory-system reporting).
    pub fn merge(&mut self, o: DramStats) {
        self.reads += o.reads;
        self.writes += o.writes;
        self.row_hits += o.row_hits;
        self.row_misses += o.row_misses;
        self.words_transferred += o.words_transferred;
        self.total_latency += o.total_latency;
        self.occ.merge(o.occ);
    }

    /// Record these counters into a telemetry scope.
    pub fn record(&self, scope: &mut sa_telemetry::Scope<'_>) {
        scope.counter("reads", self.reads);
        scope.counter("writes", self.writes);
        scope.counter("row_hits", self.row_hits);
        scope.counter("row_misses", self.row_misses);
        scope.counter("words_transferred", self.words_transferred);
        scope.counter("total_latency", self.total_latency);
        self.occ.record(scope);
        scope.gauge("avg_latency", self.avg_latency());
    }
}

#[derive(Clone, Debug)]
struct BankState {
    open_row: Option<u64>,
}

#[derive(Debug)]
struct Service {
    cmd: DramCommand,
    submitted_at: Cycle,
    access_done: Cycle,
    words_left: u32,
}

/// One DRAM interface channel (see module docs).
#[derive(Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    queue: BoundedQueue<(DramCommand, Cycle)>,
    banks: Vec<BankState>,
    rate: Throughput,
    service: Option<Service>,
    /// One-deep pipeline: the next command's row access overlaps the current
    /// command's data transfer, as on a real channel.
    next: Option<Service>,
    stats: DramStats,
    /// ECC fault schedule for this channel's read completions (inert unless
    /// a fault plan is installed).
    faults: FaultInjector,
    resilience: ResilienceStats,
}

impl DramChannel {
    /// Create a channel with the given configuration.
    pub fn new(cfg: DramConfig) -> DramChannel {
        DramChannel {
            queue: BoundedQueue::new(cfg.queue_depth),
            banks: vec![BankState { open_row: None }; cfg.banks_per_channel],
            rate: cfg.channel_rate,
            service: None,
            next: None,
            stats: DramStats::default(),
            faults: FaultInjector::none(),
            resilience: ResilienceStats::default(),
            cfg,
        }
    }

    /// Install the ECC fault schedule for this channel. The injector is
    /// consulted once per read completion; [`FaultInjector::none`] restores
    /// fault-free behaviour.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// ECC recovery counters accumulated so far.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilience
    }

    /// Whether the command queue can take one more command.
    pub fn can_accept(&self) -> bool {
        self.queue.can_accept()
    }

    /// Submit a command.
    ///
    /// # Errors
    ///
    /// Returns the command back if the queue is full (the caller stalls).
    ///
    /// # Panics
    ///
    /// Panics if a write command's data length disagrees with `words`, or if
    /// the burst length is zero.
    pub fn try_submit(&mut self, cmd: DramCommand, now: Cycle) -> Result<(), DramCommand> {
        assert!(cmd.words > 0, "zero-length DRAM burst");
        if let DramKind::Write(ref data) = cmd.kind {
            assert_eq!(data.len(), cmd.words as usize, "write data length mismatch");
        }
        self.queue.try_push((cmd, now)).map_err(|(c, _)| c)
    }

    fn bank_and_row(&self, addr: Addr) -> (usize, u64) {
        let stripe = addr.0 / self.cfg.row_bytes;
        let bank = (stripe % self.cfg.banks_per_channel as u64) as usize;
        let row = stripe / self.cfg.banks_per_channel as u64;
        (bank, row)
    }

    /// Classify the channel's state at the start of a cycle for occupancy
    /// accounting: any queued or in-flight command (including a row access
    /// in progress — the channel's own latency) is busy; else idle. At
    /// capacity when the command queue is full. Shared by the per-cycle
    /// tick and the fast-forward fold, whose windows freeze this state.
    fn occ_state(&self) -> (OccClass, bool) {
        let class = if self.service.is_some() || self.next.is_some() || !self.queue.is_empty() {
            OccClass::Busy
        } else {
            OccClass::Idle
        };
        (class, !self.queue.can_accept())
    }

    /// Advance one cycle; returns any command that completed this cycle.
    pub fn tick(&mut self, now: Cycle, store: &mut BackingStore) -> Option<DramResponse> {
        let (class, at_capacity) = self.occ_state();
        self.stats.occ.cycle(class, at_capacity);
        self.rate.tick();
        self.queue.advance(now.raw());

        if self.service.is_none() {
            self.service = self.next.take();
        }
        if self.next.is_none() {
            self.schedule(now);
        }
        if self.service.is_none() {
            self.service = self.next.take();
        }

        let done = if let Some(s) = self.service.as_mut() {
            if now >= s.access_done {
                while s.words_left > 0 && self.rate.try_consume() {
                    s.words_left -= 1;
                    self.stats.words_transferred += 1;
                }
            }
            s.words_left == 0
        } else {
            false
        };

        if !done {
            return None;
        }
        let s = self.service.take().expect("service in progress");
        let mut ecc_error = false;
        let data = match s.cmd.kind {
            DramKind::Read => {
                self.stats.reads += 1;
                // ECC model: each read completion is one fault-site event.
                // A single-bit flip is corrected inline (the data stays
                // functionally intact); a double-bit flip is detected and
                // poisons the response so the consumer replays the read.
                // The backing store is untouched — faults are transient.
                if self.faults.is_active() {
                    match self.faults.next() {
                        Some(FaultKind::EccSingle) => self.resilience.ecc_corrected += 1,
                        Some(FaultKind::EccDouble) => {
                            self.resilience.ecc_detected += 1;
                            ecc_error = true;
                        }
                        _ => {}
                    }
                }
                store.read_line(s.cmd.base, u64::from(s.cmd.words))
            }
            DramKind::Write(ref data) => {
                self.stats.writes += 1;
                store.write_line(s.cmd.base, data);
                Vec::new()
            }
        };
        self.stats.total_latency += now.since(s.submitted_at);
        Some(DramResponse {
            id: s.cmd.id,
            base: s.cmd.base,
            data,
            origin: s.cmd.origin,
            at: now,
            ecc_error,
        })
    }

    /// First-ready scheduling: prefer the oldest command that hits an open
    /// row; otherwise take the oldest command.
    fn schedule(&mut self, now: Cycle) {
        if self.queue.is_empty() {
            return;
        }
        let row_bytes = self.cfg.row_bytes;
        let nbanks = self.cfg.banks_per_channel as u64;
        let open_rows: Vec<Option<u64>> = self.banks.iter().map(|b| b.open_row).collect();
        let is_hit = |addr: Addr| {
            let stripe = addr.0 / row_bytes;
            let bank = (stripe % nbanks) as usize;
            let row = stripe / nbanks;
            open_rows[bank] == Some(row)
        };
        // First-ready: pick the oldest row-hit command, but never hop over an
        // older command whose address range overlaps (that reordering would
        // let a fill read stale data past a pending write, or vice versa).
        let mut chosen = 0usize;
        let mut older: Vec<(u64, u64)> = Vec::new();
        for (i, (cmd, _)) in self.queue.iter().enumerate() {
            let lo = cmd.base.0;
            let hi = lo + u64::from(cmd.words) * 8;
            let conflicts = older.iter().any(|&(a, b)| lo < b && a < hi);
            if is_hit(cmd.base) && !conflicts {
                chosen = i;
                break;
            }
            older.push((lo, hi));
        }
        let (cmd, submitted_at) = self.queue.take_at(chosen).expect("queue non-empty");
        let (bank, row) = self.bank_and_row(cmd.base);
        let hit = self.banks[bank].open_row == Some(row);
        let access = if hit {
            self.stats.row_hits += 1;
            self.cfg.t_cas
        } else {
            self.stats.row_misses += 1;
            self.banks[bank].open_row = Some(row);
            self.cfg.t_rc
        };
        let words_left = cmd.words;
        self.next = Some(Service {
            cmd,
            submitted_at,
            access_done: now + u64::from(access),
            words_left,
        });
    }

    /// Whether the channel has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.service.is_none() && self.next.is_none()
    }

    /// Earliest future cycle at which a tick can change this channel's
    /// state. `None` when idle (a state change requires a new command).
    ///
    /// The only span a channel can sleep through is a row access in progress
    /// (`now < access_done`) with the one-deep pipeline already primed and
    /// nothing left to schedule; everything else — data transfer, promotion,
    /// scheduling — makes progress on the very next tick.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match &self.service {
            Some(s) => {
                if now >= s.access_done {
                    // Transferring: bus credit and words_left move every tick.
                    Some(now + 1)
                } else if self.next.is_none() && !self.queue.is_empty() {
                    // The overlapped scheduler would pick a command next tick.
                    Some(now + 1)
                } else {
                    Some(s.access_done.max(now + 1))
                }
            }
            None => {
                if self.next.is_some() || !self.queue.is_empty() {
                    // Promotion or scheduling happens next tick.
                    Some(now + 1)
                } else {
                    None
                }
            }
        }
    }

    /// Fold `skipped` un-ticked cycles (fast-forward) into the bandwidth
    /// token bucket and the busy/idle account. Exact because the transfer
    /// loop never runs during a skippable span (`now < access_done`
    /// throughout), so each skipped tick would only have refilled credit —
    /// and the frozen state classifies identically to per-cycle ticking.
    pub fn skip_idle(&mut self, now: Cycle, skipped: u64) {
        debug_assert!(
            self.next_event(now).is_none_or(|t| t > now + skipped),
            "fast-forward skipped past a DRAM channel event"
        );
        let (class, at_capacity) = self.occ_state();
        self.stats.occ.skip(skipped, class, at_capacity);
        self.rate.tick_idle(skipped);
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Occupancy statistics of the command queue.
    pub fn queue_stats(&self) -> sa_sim::QueueStats {
        self.queue.stats()
    }
}

impl sa_telemetry::Inspectable for DramChannel {
    fn probe_kind(&self) -> &'static str {
        "dram_channel"
    }

    fn probe_json(&self) -> sa_telemetry::Json {
        use sa_telemetry::Json;
        let mut o = Json::obj();
        o.push("queue", Json::UInt(self.queue.len() as u64));
        o.push("queue_capacity", Json::UInt(self.queue.capacity() as u64));
        let in_service = u64::from(self.service.is_some()) + u64::from(self.next.is_some());
        o.push("in_service", Json::UInt(in_service));
        let open_rows = self.banks.iter().filter(|b| b.open_row.is_some()).count();
        o.push("open_rows", Json::UInt(open_rows as u64));
        o
    }
}

/// Convenience: drive a set of channels and a store until all are idle,
/// collecting responses. Mostly used by tests.
pub fn drain_channels(
    channels: &mut [DramChannel],
    store: &mut BackingStore,
    mut now: Cycle,
    limit: u64,
) -> (Vec<DramResponse>, Cycle) {
    let mut out = Vec::new();
    let deadline = now + limit;
    while channels.iter().any(|c| !c.is_idle()) {
        now += 1;
        assert!(now <= deadline, "drain_channels exceeded {limit} cycles");
        for ch in channels.iter_mut() {
            if let Some(r) = ch.tick(now, store) {
                out.push(r);
            }
        }
    }
    (out, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::{DramConfig, Origin};

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    fn origin() -> Origin {
        Origin::CacheBank { node: 0, bank: 0 }
    }

    fn read_cmd(id: ReqId, base: u64, words: u32) -> DramCommand {
        DramCommand {
            id,
            req: Some(id),
            base: Addr(base),
            words,
            kind: DramKind::Read,
            origin: origin(),
        }
    }

    #[test]
    fn read_returns_store_contents() {
        let mut store = BackingStore::new();
        store.write_line(Addr(0), &[10, 20, 30, 40]);
        let mut ch = DramChannel::new(cfg());
        ch.try_submit(read_cmd(1, 0, 4), Cycle(0)).unwrap();
        let (resp, _) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].id, 1);
        assert_eq!(resp[0].data, vec![10, 20, 30, 40]);
    }

    #[test]
    fn write_applies_to_store() {
        let mut store = BackingStore::new();
        let mut ch = DramChannel::new(cfg());
        let cmd = DramCommand {
            id: 2,
            req: None,
            base: Addr(64),
            words: 4,
            kind: DramKind::Write(vec![1, 2, 3, 4]),
            origin: origin(),
        };
        ch.try_submit(cmd, Cycle(0)).unwrap();
        let (resp, _) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        assert_eq!(resp.len(), 1);
        assert!(resp[0].data.is_empty());
        assert_eq!(store.read_line(Addr(64), 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut store = BackingStore::new();
        // First access opens the row (t_rc); second access to the same row
        // is a hit (t_cas).
        let mut ch = DramChannel::new(cfg());
        ch.try_submit(read_cmd(1, 0, 1), Cycle(0)).unwrap();
        ch.try_submit(read_cmd(2, 8, 1), Cycle(0)).unwrap();
        let (resp, _) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        let t1 = resp[0].at;
        let t2 = resp[1].at;
        let first = t1.raw();
        let gap = t2.raw() - t1.raw();
        assert!(
            first > gap,
            "second (row hit) access should be faster: first={first} gap={gap}"
        );
        let s = ch.stats();
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_misses, 1);
    }

    #[test]
    fn first_ready_prefers_open_row() {
        let c = cfg();
        let mut store = BackingStore::new();
        let mut ch = DramChannel::new(c);
        // Open row 0 of bank 0.
        ch.try_submit(read_cmd(1, 0, 1), Cycle(0)).unwrap();
        // A command to a *different* row of bank 0 ...
        let other_row = c.row_bytes * c.banks_per_channel as u64;
        ch.try_submit(read_cmd(2, other_row, 1), Cycle(0)).unwrap();
        // ... then one that hits the open row again.
        ch.try_submit(read_cmd(3, 8, 1), Cycle(0)).unwrap();
        let (resp, _) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        let order: Vec<ReqId> = resp.iter().map(|r| r.id).collect();
        assert_eq!(
            order,
            vec![1, 3, 2],
            "row hit (id 3) scheduled before row miss (id 2)"
        );
    }

    #[test]
    fn bandwidth_is_bounded_by_channel_rate() {
        let c = cfg();
        let mut store = BackingStore::new();
        let mut ch = DramChannel::new(c);
        let mut now = Cycle(0);
        let mut id = 0;
        let mut completed_words = 0u64;
        // Stream sequential line reads for 10k cycles, keeping the queue fed.
        for _ in 0..10_000 {
            now += 1;
            while ch.can_accept() {
                id += 1;
                ch.try_submit(read_cmd(id, id * 32, 4), now).unwrap();
            }
            if let Some(r) = ch.tick(now, &mut store) {
                completed_words += r.data.len() as u64;
            }
        }
        let achieved = completed_words as f64 / 10_000.0;
        let peak = c.channel_rate.words_per_cycle();
        assert!(
            achieved <= peak + 1e-9,
            "achieved {achieved} exceeds peak {peak}"
        );
        // Sequential reads are mostly row hits, so we should get close to peak.
        assert!(
            achieved > peak * 0.8,
            "achieved {achieved} far below peak {peak}"
        );
    }

    #[test]
    fn queue_full_rejects() {
        let c = cfg();
        let mut ch = DramChannel::new(c);
        for i in 0..c.queue_depth as u64 {
            ch.try_submit(read_cmd(i, i * 8, 1), Cycle(0)).unwrap();
        }
        assert!(!ch.can_accept());
        assert!(ch.try_submit(read_cmd(99, 0, 1), Cycle(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "write data length mismatch")]
    fn write_length_mismatch_panics() {
        let mut ch = DramChannel::new(cfg());
        let cmd = DramCommand {
            id: 1,
            req: None,
            base: Addr(0),
            words: 4,
            kind: DramKind::Write(vec![1, 2]),
            origin: origin(),
        };
        let _ = ch.try_submit(cmd, Cycle(0));
    }

    #[test]
    fn stats_latency_accumulates() {
        let mut store = BackingStore::new();
        let mut ch = DramChannel::new(cfg());
        ch.try_submit(read_cmd(1, 0, 1), Cycle(0)).unwrap();
        let (_, end) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        let s = ch.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.total_latency, end.raw());
        assert!(s.avg_latency() > 0.0);
    }

    #[test]
    fn no_reorder_across_overlapping_addresses() {
        let c = cfg();
        let mut store = BackingStore::new();
        let mut ch = DramChannel::new(c);
        // Open row 0 with a read.
        ch.try_submit(read_cmd(1, 0, 1), Cycle(0)).unwrap();
        // Write 77 to word 4 in a *different* row (a row miss) ...
        let other_row = c.row_bytes * c.banks_per_channel as u64;
        let w = DramCommand {
            id: 2,
            req: None,
            base: Addr(other_row),
            words: 1,
            kind: DramKind::Write(vec![77]),
            origin: origin(),
        };
        ch.try_submit(w, Cycle(0)).unwrap();
        // ... then read the same word. The read hits no open row either, but
        // even if it did it must not bypass the older overlapping write.
        ch.try_submit(read_cmd(3, other_row, 1), Cycle(0)).unwrap();
        let (resp, _) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        let r3 = resp.iter().find(|r| r.id == 3).unwrap();
        assert_eq!(r3.data, vec![77], "read must observe the older write");
        // After the write opens the row, id 3 is a row hit scheduled after it.
        let order: Vec<ReqId> = resp.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn horizon_skipping_reproduces_per_cycle_ticking() {
        // Drive the same command stream through a per-cycle channel and a
        // horizon-skipping channel; responses and counters must be identical.
        let c = cfg();
        let submit_all = |ch: &mut DramChannel| {
            let mut addrs = [0u64, 8, 4096, 32, 8192, 40, 12288, 16];
            addrs.rotate_left(3);
            for (i, &a) in addrs.iter().enumerate() {
                ch.try_submit(read_cmd(i as u64 + 1, a, 2), Cycle(0))
                    .unwrap();
            }
        };
        let mut store_a = BackingStore::new();
        let mut stepped = DramChannel::new(c);
        submit_all(&mut stepped);
        let mut got_stepped = Vec::new();
        let mut now = Cycle(0);
        while !stepped.is_idle() {
            now += 1;
            assert!(now.raw() < 100_000, "runaway");
            if let Some(r) = stepped.tick(now, &mut store_a) {
                got_stepped.push((r.id, r.at));
            }
        }

        let mut store_b = BackingStore::new();
        let mut skipping = DramChannel::new(c);
        submit_all(&mut skipping);
        let mut got_skipping = Vec::new();
        let mut now = Cycle(0);
        while !skipping.is_idle() {
            if let Some(h) = skipping.next_event(now) {
                if h > now + 1 {
                    skipping.skip_idle(now, h - now - 1);
                    now = Cycle(h.raw() - 1);
                }
            }
            now += 1;
            assert!(now.raw() < 100_000, "runaway");
            if let Some(r) = skipping.tick(now, &mut store_b) {
                got_skipping.push((r.id, r.at));
            }
        }
        assert_eq!(got_stepped, got_skipping);
        assert_eq!(stepped.stats(), skipping.stats());
        assert!(got_stepped.len() == 8);
    }

    #[test]
    fn ecc_single_bit_is_corrected_inline() {
        use sa_faults::{FaultPlan, FaultRule, FaultSite};
        let plan = FaultPlan {
            seed: 1,
            cs_timeout: 64,
            rules: vec![FaultRule {
                kind: FaultKind::EccSingle,
                period: 1,
                max: 2,
                after: 0,
            }],
        };
        let mut store = BackingStore::new();
        store.write_line(Addr(0), &[5, 6, 7, 8]);
        let mut ch = DramChannel::new(cfg());
        ch.set_fault_injector(plan.injector(FaultSite::DramRead, 0, 0));
        ch.try_submit(read_cmd(1, 0, 4), Cycle(0)).unwrap();
        ch.try_submit(read_cmd(2, 0, 4), Cycle(0)).unwrap();
        ch.try_submit(read_cmd(3, 0, 4), Cycle(0)).unwrap();
        let (resp, _) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        // Corrected errors never poison a response or alter its data.
        assert_eq!(resp.len(), 3);
        for r in &resp {
            assert!(!r.ecc_error);
            assert_eq!(r.data, vec![5, 6, 7, 8]);
        }
        let rs = ch.resilience_stats();
        assert_eq!(rs.ecc_corrected, 2, "max=2 caps the rule");
        assert_eq!(rs.ecc_detected, 0);
    }

    #[test]
    fn ecc_double_bit_poisons_the_response() {
        use sa_faults::{FaultPlan, FaultRule, FaultSite};
        let plan = FaultPlan {
            seed: 1,
            cs_timeout: 64,
            rules: vec![FaultRule {
                kind: FaultKind::EccDouble,
                period: 1,
                max: 1,
                after: 0,
            }],
        };
        let mut store = BackingStore::new();
        store.write_line(Addr(0), &[9, 9]);
        let mut ch = DramChannel::new(cfg());
        ch.set_fault_injector(plan.injector(FaultSite::DramRead, 0, 0));
        ch.try_submit(read_cmd(1, 0, 2), Cycle(0)).unwrap();
        ch.try_submit(read_cmd(2, 0, 2), Cycle(0)).unwrap();
        let (resp, _) = drain_channels(std::slice::from_mut(&mut ch), &mut store, Cycle(0), 10_000);
        assert!(resp[0].ecc_error, "first read is struck");
        assert!(!resp[1].ecc_error, "max=1: second read is clean");
        // Transient fault: the store (and hence a replay) stays correct.
        assert_eq!(resp[1].data, vec![9, 9]);
        assert_eq!(ch.resilience_stats().ecc_detected, 1);
        // Writes are never fault-site events.
        assert_eq!(ch.resilience_stats().ecc_corrected, 0);
    }

    #[test]
    fn stats_merge() {
        let mut a = DramStats {
            reads: 1,
            writes: 2,
            row_hits: 3,
            row_misses: 4,
            words_transferred: 5,
            total_latency: 6,
            occ: OccupancyStats {
                busy: 7,
                blocked: 0,
                idle: 8,
                saturated: 1,
            },
        };
        a.merge(a);
        assert_eq!(a.reads, 2);
        assert_eq!(a.words_transferred, 10);
        assert_eq!(a.occ.busy, 14);
        assert_eq!(a.occ.elapsed(), 30);
    }
}
