//! The uniform-latency, fixed-throughput memory of the §4.4 sensitivity rig.
//!
//! "We run the experiments without a cache, and implement memory as a uniform
//! bandwidth and latency structure. Throughput is modeled by a fixed cycle
//! interval between successive memory word accesses, and latency by a fixed
//! value which corresponds to the average expected memory delay."

use std::collections::VecDeque;

use sa_sim::{Cycle, MemOp, MemRequest, MemResponse};

use crate::BackingStore;

/// Counters for [`SimpleMemory`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SimpleMemoryStats {
    /// Accepted word accesses.
    pub accesses: u64,
    /// Accesses rejected because the interval had not elapsed.
    pub throttled: u64,
}

impl SimpleMemoryStats {
    /// Record these counters into a telemetry scope.
    pub fn record(&self, scope: &mut sa_telemetry::Scope<'_>) {
        scope.counter("accesses", self.accesses);
        scope.counter("throttled", self.throttled);
    }
}

/// Fixed-latency, fixed-interval word-granularity memory.
///
/// One word access is accepted at most every `interval` cycles; each access
/// completes exactly `latency` cycles after acceptance. Writes and scatter
/// ops take effect *in acceptance order*, so the functional result is
/// deterministic.
///
/// ```
/// use sa_mem::{BackingStore, SimpleMemory};
/// use sa_sim::{Addr, Cycle, MemOp, MemRequest, Origin};
///
/// let mut m = SimpleMemory::new(10, 2);
/// let mut store = BackingStore::new();
/// store.write_i64(Addr(0), 7);
/// let req = MemRequest {
///     id: 1,
///     addr: Addr(0),
///     op: MemOp::Read,
///     origin: Origin::AddrGen { node: 0, ag: 0 },
/// };
/// assert!(m.try_access(req, Cycle(0), &mut store));
/// // Nothing completes before the latency elapses.
/// assert!(m.tick(Cycle(5)).is_none());
/// let resp = m.tick(Cycle(10)).expect("completes at latency");
/// assert_eq!(resp.bits as i64, 7);
/// ```
#[derive(Debug)]
pub struct SimpleMemory {
    latency: u32,
    interval: u32,
    next_free: Cycle,
    inflight: VecDeque<MemResponse>,
    stats: SimpleMemoryStats,
}

impl SimpleMemory {
    /// Memory with flat `latency` and a minimum of `interval` cycles between
    /// successive word accesses.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (at most one access per cycle is the
    /// fastest the rig supports, matching the paper's sweep of 1–16).
    pub fn new(latency: u32, interval: u32) -> SimpleMemory {
        assert!(interval > 0, "interval must be at least 1 cycle");
        SimpleMemory {
            latency,
            interval,
            next_free: Cycle::ZERO,
            inflight: VecDeque::new(),
            stats: SimpleMemoryStats::default(),
        }
    }

    /// Whether an access would be accepted at time `now`.
    pub fn can_accept(&self, now: Cycle) -> bool {
        now >= self.next_free
    }

    /// Attempt a word access at time `now`; returns whether it was accepted.
    ///
    /// Functional effects (writes, scatter combines) are applied immediately
    /// on acceptance; the response surfaces `latency` cycles later. The
    /// response of a read carries the word value; a fetch-op response carries
    /// the pre-op value.
    pub fn try_access(&mut self, req: MemRequest, now: Cycle, store: &mut BackingStore) -> bool {
        if !self.can_accept(now) {
            self.stats.throttled += 1;
            return false;
        }
        self.next_free = now + u64::from(self.interval);
        self.stats.accesses += 1;
        let bits = match req.op {
            MemOp::Read => store.read_word(req.addr),
            MemOp::Write { bits } => {
                store.write_word(req.addr, bits);
                0
            }
            MemOp::Scatter { bits, kind, op, .. } => {
                store.scatter_combine(req.addr, bits, kind, op)
            }
        };
        self.inflight.push_back(MemResponse {
            id: req.id,
            addr: req.addr,
            bits,
            origin: req.origin,
            at: now + u64::from(self.latency),
        });
        true
    }

    /// Return the response completing at `now`, if any.
    ///
    /// Acceptance is serialized by the interval and latency is constant, so
    /// at most one response completes per call when `interval >= 1`.
    pub fn tick(&mut self, now: Cycle) -> Option<MemResponse> {
        if self.inflight.front().is_some_and(|r| r.at <= now) {
            self.inflight.pop_front()
        } else {
            None
        }
    }

    /// Whether all accepted accesses have completed.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty()
    }

    /// The first cycle at or after `now` when the interval allows another
    /// access. In the past-tense case (already free) this is `now` itself.
    pub fn ready_at(&self, now: Cycle) -> Cycle {
        self.next_free.max(now)
    }

    /// Earliest future cycle at which this memory can change state on its
    /// own: the completion time of the oldest in-flight response. `None`
    /// when idle (any future change requires a new access from outside).
    ///
    /// Latency is constant and acceptance is serialized, so the in-flight
    /// deque is sorted by completion time and the front is the horizon.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // A completion with `at <= now` is still undelivered (tick returns at
        // most one per call), so the earliest it can surface is next cycle.
        self.inflight.front().map(|r| r.at.max(now + 1))
    }

    /// Fold `skipped` provably-idle cycles (fast-forward) into the counters.
    ///
    /// `pending` says whether the caller held a request it would have retried
    /// on every skipped cycle; each such retry would have been throttled
    /// (the caller must only skip while `now < ready_at`), so the stat stays
    /// byte-identical with skipping off.
    pub fn skip_cycles(&mut self, now: Cycle, skipped: u64, pending: bool) {
        if pending {
            debug_assert!(
                now + skipped < self.next_free,
                "skipped into the interval-free window with a pending request"
            );
            self.stats.throttled += skipped;
        }
        debug_assert!(
            self.next_event(now).is_none_or(|t| t > now + skipped),
            "fast-forward skipped past a memory completion"
        );
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SimpleMemoryStats {
        self.stats
    }

    /// The configured flat latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// The configured minimum interval between accesses in cycles.
    pub fn interval(&self) -> u32 {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::{Addr, Origin, ScalarKind, ScatterOp};

    fn req(id: u64, word: u64, op: MemOp) -> MemRequest {
        MemRequest {
            id,
            addr: Addr::from_word_index(word),
            op,
            origin: Origin::SaUnit { node: 0, bank: 0 },
        }
    }

    #[test]
    fn interval_throttles() {
        let mut store = BackingStore::new();
        let mut m = SimpleMemory::new(4, 3);
        assert!(m.try_access(req(1, 0, MemOp::Read), Cycle(0), &mut store));
        assert!(!m.try_access(req(2, 1, MemOp::Read), Cycle(1), &mut store));
        assert!(!m.try_access(req(2, 1, MemOp::Read), Cycle(2), &mut store));
        assert!(m.try_access(req(2, 1, MemOp::Read), Cycle(3), &mut store));
        assert_eq!(m.stats().accesses, 2);
        assert_eq!(m.stats().throttled, 2);
    }

    #[test]
    fn latency_is_flat() {
        let mut store = BackingStore::new();
        let mut m = SimpleMemory::new(10, 1);
        assert!(m.try_access(req(1, 0, MemOp::Read), Cycle(5), &mut store));
        for c in 6..15 {
            assert!(m.tick(Cycle(c)).is_none(), "no completion at {c}");
        }
        let r = m.tick(Cycle(15)).unwrap();
        assert_eq!(r.id, 1);
        assert_eq!(r.at, Cycle(15));
        assert!(m.is_idle());
    }

    #[test]
    fn write_then_read_sees_value() {
        let mut store = BackingStore::new();
        let mut m = SimpleMemory::new(2, 1);
        assert!(m.try_access(req(1, 7, MemOp::Write { bits: 99 }), Cycle(0), &mut store));
        assert!(m.try_access(req(2, 7, MemOp::Read), Cycle(1), &mut store));
        let _ack = m.tick(Cycle(2)).unwrap();
        let r = m.tick(Cycle(3)).unwrap();
        assert_eq!(r.bits, 99);
    }

    #[test]
    fn scatter_is_atomic_and_returns_old() {
        let mut store = BackingStore::new();
        let mut m = SimpleMemory::new(1, 1);
        let sa = |id, bits| {
            req(
                id,
                0,
                MemOp::Scatter {
                    bits,
                    kind: ScalarKind::I64,
                    op: ScatterOp::Add,
                    fetch: true,
                },
            )
        };
        assert!(m.try_access(sa(1, 5), Cycle(0), &mut store));
        assert!(m.try_access(sa(2, 6), Cycle(1), &mut store));
        let r1 = m.tick(Cycle(1)).unwrap();
        let r2 = m.tick(Cycle(2)).unwrap();
        assert_eq!(r1.bits as i64, 0, "fetch-op returns pre-op value");
        assert_eq!(r2.bits as i64, 5);
        assert_eq!(store.read_i64(Addr(0)), 11);
    }

    #[test]
    #[should_panic(expected = "interval must be at least 1")]
    fn zero_interval_panics() {
        let _ = SimpleMemory::new(1, 0);
    }

    #[test]
    fn next_event_is_oldest_completion() {
        let mut store = BackingStore::new();
        let mut m = SimpleMemory::new(10, 2);
        assert_eq!(m.next_event(Cycle(0)), None, "idle memory has no horizon");
        assert!(m.try_access(req(1, 0, MemOp::Read), Cycle(0), &mut store));
        assert!(m.try_access(req(2, 1, MemOp::Read), Cycle(2), &mut store));
        assert_eq!(m.next_event(Cycle(2)), Some(Cycle(10)));
        // An overdue completion still reports the next cycle, never `now`.
        assert_eq!(m.next_event(Cycle(50)), Some(Cycle(51)));
    }

    #[test]
    fn skip_cycles_bulk_throttle_matches_per_cycle() {
        let mut store = BackingStore::new();
        let mut stepped = SimpleMemory::new(40, 8);
        let mut skipped = SimpleMemory::new(40, 8);
        assert!(stepped.try_access(req(1, 0, MemOp::Read), Cycle(0), &mut store));
        assert!(skipped.try_access(req(1, 0, MemOp::Read), Cycle(0), &mut store));
        // Per-cycle retries of a pending request over cycles 1..=5...
        for c in 1..=5 {
            assert!(!stepped.try_access(req(2, 1, MemOp::Read), Cycle(c), &mut store));
        }
        // ...equal one bulk skip of those five cycles.
        skipped.skip_cycles(Cycle(0), 5, true);
        assert_eq!(stepped.stats(), skipped.stats());
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "skipped past a memory completion")
    )]
    fn skipping_past_a_completion_trips_debug_assert() {
        if !cfg!(debug_assertions) {
            return; // the guard is compiled out in release builds
        }
        let mut store = BackingStore::new();
        let mut m = SimpleMemory::new(4, 1);
        assert!(m.try_access(req(1, 0, MemOp::Read), Cycle(0), &mut store));
        m.skip_cycles(Cycle(0), 10, false);
    }

    #[test]
    fn accessors() {
        let m = SimpleMemory::new(8, 2);
        assert_eq!(m.latency(), 8);
        assert_eq!(m.interval(), 2);
        assert!(m.can_accept(Cycle(0)));
    }
}
