//! Memory models for the scatter-add reproduction.
//!
//! Two timing models share one functional model:
//!
//! * [`BackingStore`] — the functional contents of global memory (sparse,
//!   word-granularity). Every timing model reads and writes through it, so
//!   the final memory image of a simulation can be checked against a scalar
//!   reference regardless of how requests were reordered.
//! * [`DramChannel`] — the detailed model: per-channel command queues,
//!   internal DRAM banks with open-row state, and a first-ready scheduler
//!   approximating memory-access scheduling (Rixner et al., which the paper
//!   relies on to keep DRAM latency variance small).
//! * [`SimpleMemory`] — the §4.4 sensitivity-rig model: uniform latency and
//!   a fixed minimum interval between successive word accesses.
//!
//! # Example
//!
//! ```
//! use sa_mem::BackingStore;
//! use sa_sim::Addr;
//!
//! let mut store = BackingStore::new();
//! store.write_f64(Addr::from_word_index(4), 2.5);
//! assert_eq!(store.read_f64(Addr::from_word_index(4)), 2.5);
//! assert_eq!(store.read_f64(Addr::from_word_index(5)), 0.0, "memory zero-fills");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dram;
mod simple;
mod store;

pub use dram::{drain_channels, DramChannel, DramCommand, DramKind, DramResponse, DramStats};
pub use simple::{SimpleMemory, SimpleMemoryStats};
pub use store::BackingStore;
