//! Model-checking the DRAM channel: any interleaving of reads and writes
//! must return the data a flat memory would, despite first-ready
//! scheduling, and all traffic must eventually complete.

use proptest::prelude::*;
use sa_mem::{BackingStore, DramChannel, DramCommand, DramKind, DramResponse};
use sa_sim::{Addr, Cycle, DramConfig, Origin};

#[derive(Clone, Debug)]
enum Op {
    Read(u64),
    Write(u64, Vec<u64>),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32).prop_map(Op::Read),
            ((0u64..32), prop::collection::vec(any::<u64>(), 4..=4))
                .prop_map(|(l, d)| Op::Write(l, d)),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn channel_behaves_like_flat_memory(ops in ops()) {
        let cfg = DramConfig::default();
        let mut ch = DramChannel::new(cfg);
        let mut store = BackingStore::new();
        let mut reference = std::collections::HashMap::<u64, [u64; 4]>::new();
        let mut expected = std::collections::HashMap::<u64, [u64; 4]>::new();
        let mut now = Cycle(0);
        let mut next = 0usize;
        let mut responses: Vec<DramResponse> = Vec::new();

        for _ in 0..1_000_000 {
            now += 1;
            if next < ops.len() && ch.can_accept() {
                let id = next as u64;
                let cmd = match &ops[next] {
                    Op::Read(line) => {
                        expected.insert(
                            id,
                            reference.get(line).copied().unwrap_or([0; 4]),
                        );
                        DramCommand {
                            id,
                            req: Some(id),
                            base: Addr(line * 32),
                            words: 4,
                            kind: DramKind::Read,
                            origin: Origin::CacheBank { node: 0, bank: 0 },
                        }
                    }
                    Op::Write(line, data) => {
                        reference.insert(*line, [data[0], data[1], data[2], data[3]]);
                        DramCommand {
                            id,
                            req: None,
                            base: Addr(line * 32),
                            words: 4,
                            kind: DramKind::Write(data.clone()),
                            origin: Origin::CacheBank { node: 0, bank: 0 },
                        }
                    }
                };
                ch.try_submit(cmd, now).expect("can_accept checked");
                next += 1;
            }
            if let Some(r) = ch.tick(now, &mut store) {
                responses.push(r);
            }
            if next == ops.len() && ch.is_idle() {
                break;
            }
        }
        prop_assert!(ch.is_idle(), "channel drained");
        prop_assert_eq!(responses.len(), ops.len(), "every command completed");
        for r in &responses {
            if let Some(expect) = expected.get(&r.id) {
                prop_assert_eq!(&r.data[..], &expect[..], "read {} data", r.id);
            }
        }
        // Final memory equals the reference.
        for (&line, data) in &reference {
            prop_assert_eq!(
                store.read_line(Addr(line * 32), 4),
                data.to_vec(),
                "line {}", line
            );
        }
    }
}
