//! Scoreboarded execution of a [`StreamProgram`] on one node.

use fxhash::FxHashMap;
use sa_core::NodeMemSys;
use sa_sim::{Clock, Cycle, MachineConfig, MemOp, MemRequest, Origin, ReqId};

use crate::program::{OpId, StreamOp, StreamProgram};

/// When an operation started and finished (cycles).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpSpan {
    /// Cycle the op acquired its resource.
    pub start: u64,
    /// Cycle the op completed.
    pub end: u64,
}

/// The program's static work counters (the paper's Table 3 metrics),
/// grouped out of [`ExecReport`]'s top level.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramCounters {
    /// The program's "FP Operations" metric.
    pub flops: u64,
    /// The program's "Mem References" metric (words accessed).
    pub mem_refs: u64,
}

/// Stream-register-file footprint accounting, grouped out of
/// [`ExecReport`]'s top level.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SrfUsage {
    /// Peak footprint observed: the largest sum of SRF words held by
    /// concurrently-running operations (each memory op stages its stream,
    /// each kernel holds its in/out streams).
    pub peak_words: u64,
    /// Whether the peak footprint exceeded the machine's SRF capacity —
    /// a modeling red flag meaning the program's stages should be split
    /// (the simulator still completes; real double-buffered code could not).
    pub overflow: bool,
}

/// The outcome of running a program.
#[derive(Debug)]
pub struct ExecReport {
    /// Total execution time in cycles.
    pub cycles: u64,
    /// Per-op start/end times.
    pub spans: Vec<OpSpan>,
    /// Machine statistics accumulated during the run.
    pub stats: sa_core::NodeStats,
    /// Static work counters (flops, memory references).
    pub program: ProgramCounters,
    /// SRF footprint accounting.
    pub srf: SrfUsage,
    /// Request-lifecycle records harvested from the node (empty unless
    /// [`MachineConfig::req_sample`](sa_sim::MachineConfig) enabled tracing).
    pub req_trace: sa_telemetry::ReqTracer,
    /// Cycles the executor fast-forwarded over instead of ticking one by
    /// one. Wall-clock accounting only: simulated time (`cycles`), spans,
    /// and stats are identical with skipping on or off.
    pub skipped_cycles: u64,
}

impl ExecReport {
    /// Execution time in microseconds at 1 GHz.
    pub fn micros(&self) -> f64 {
        self.cycles as f64 / 1e3
    }

    /// The program's "FP Operations" metric (`program.flops`).
    pub fn flops(&self) -> u64 {
        self.program.flops
    }

    /// The program's "Mem References" metric (`program.mem_refs`).
    pub fn mem_refs(&self) -> u64 {
        self.program.mem_refs
    }

    /// Peak SRF footprint in words (`srf.peak_words`).
    pub fn peak_srf_words(&self) -> u64 {
        self.srf.peak_words
    }

    /// Whether the peak SRF footprint exceeded capacity (`srf.overflow`).
    pub fn srf_overflow(&self) -> bool {
        self.srf.overflow
    }
}

/// SRF words a running op holds: a memory op stages its whole stream; a
/// kernel holds its per-element SRF traffic for the elements in flight
/// (conservatively, its declared footprint for one cluster batch).
fn srf_footprint(op: &StreamOp) -> u64 {
    match op {
        StreamOp::Gather { pattern } => pattern.len(),
        StreamOp::Scatter { pattern, .. } => pattern.len(),
        StreamOp::ScatterAdd { pattern, .. } => pattern.len(),
        StreamOp::Kernel {
            elements,
            srf_words_per_element,
            ..
        } => elements * srf_words_per_element,
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum OpState {
    Waiting,
    Running,
    Done,
}

struct MemRun {
    op: OpId,
    issue_from: u64, // cycle after AG startup
    cursor: u64,
    acked: u64,
    total: u64,
}

struct KernelRun {
    op: OpId,
    end_at: u64,
}

/// Executes stream programs against a [`NodeMemSys`].
///
/// Resource model (Table 1): `ag.count` concurrent stream memory operations,
/// each issuing up to `ag.width` word requests per cycle after a fixed
/// startup; one kernel at a time on the cluster array.
#[derive(Copy, Clone, Debug)]
pub struct Executor {
    cfg: MachineConfig,
}

impl Executor {
    /// An executor for machines configured as `cfg`.
    pub fn new(cfg: MachineConfig) -> Executor {
        Executor { cfg }
    }

    /// Cycles a kernel of `elements` elements occupies the cluster array.
    ///
    /// Each cluster retires one element every
    /// `max(ceil(ops / ops_rate), ceil(srf_words / srf_rate), 1)` cycles,
    /// where the per-cluster rates derive from Table 1 (128 ops/cycle and 64
    /// SRF words/cycle over 16 clusters).
    pub fn kernel_cycles(
        &self,
        elements: u64,
        ops_per_element: u64,
        srf_words_per_element: u64,
    ) -> u64 {
        let c = self.cfg.compute;
        let ops_rate = u64::from(c.peak_flops_per_cycle) / c.clusters as u64; // 8
        let srf_rate = (u64::from(c.srf_words_per_cycle) / c.clusters as u64).max(1); // 4
        let per_elem = ops_per_element
            .div_ceil(ops_rate.max(1))
            .max(srf_words_per_element.div_ceil(srf_rate))
            .max(1);
        let groups = elements.div_ceil(c.clusters as u64);
        u64::from(c.kernel_startup_cycles) + groups * per_elem
    }

    /// Run `prog` on `node` to completion and report timing and metrics.
    ///
    /// The node's functional store carries the memory image across runs, so
    /// applications can preload inputs, run, and read results.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (cycle limit exceeded) — which
    /// would indicate a bug in the machine model, not in the program.
    pub fn run<T: sa_telemetry::TraceSink>(
        &self,
        prog: &StreamProgram,
        node: &mut NodeMemSys<T>,
    ) -> ExecReport {
        let n_ops = prog.len();
        let mut state = vec![OpState::Waiting; n_ops];
        let mut spans = vec![OpSpan::default(); n_ops];
        let mut ags: Vec<Option<MemRun>> = (0..self.cfg.ag.count).map(|_| None).collect();
        let mut kernel: Option<KernelRun> = None;
        let mut req_owner: FxHashMap<ReqId, OpId> = FxHashMap::default();
        let mut next_id: ReqId = 0;
        let mut clock = Clock::with_limit(8_000_000_000);
        let mut remaining = n_ops;
        let mut live_srf: u64 = 0;
        let mut peak_srf: u64 = 0;
        let fast_forward = node.fast_forward();
        let mut skipped_cycles: u64 = 0;

        while remaining > 0 {
            let now = clock.advance();
            let t = now.raw();

            // Start ready ops on free resources.
            for id in 0..n_ops {
                if state[id] != OpState::Waiting {
                    continue;
                }
                let (op, deps) = prog.op(id);
                if !deps.iter().all(|&d| state[d] == OpState::Done) {
                    continue;
                }
                match op {
                    StreamOp::Kernel {
                        elements,
                        ops_per_element,
                        srf_words_per_element,
                        ..
                    } => {
                        if kernel.is_none() {
                            let dur = self.kernel_cycles(
                                *elements,
                                *ops_per_element,
                                *srf_words_per_element,
                            );
                            kernel = Some(KernelRun {
                                op: id,
                                end_at: t + dur,
                            });
                            state[id] = OpState::Running;
                            spans[id].start = t;
                            live_srf += srf_footprint(op);
                            peak_srf = peak_srf.max(live_srf);
                        }
                    }
                    _ => {
                        if let Some(slot) = ags.iter().position(|a| a.is_none()) {
                            let total = op.mem_refs();
                            ags[slot] = Some(MemRun {
                                op: id,
                                issue_from: t + u64::from(self.cfg.ag.startup_cycles),
                                cursor: 0,
                                acked: 0,
                                total,
                            });
                            state[id] = OpState::Running;
                            spans[id].start = t;
                            live_srf += srf_footprint(op);
                            peak_srf = peak_srf.max(live_srf);
                            if total == 0 {
                                // Degenerate empty stream: completes at once.
                                state[id] = OpState::Done;
                                spans[id].end = t;
                                remaining -= 1;
                                ags[slot] = None;
                                live_srf -= srf_footprint(op);
                            }
                        }
                    }
                }
            }

            // Kernel completion.
            if kernel.as_ref().is_some_and(|k| k.end_at <= t) {
                let k = kernel.take().expect("checked");
                state[k.op] = OpState::Done;
                spans[k.op].end = t;
                remaining -= 1;
                live_srf -= srf_footprint(prog.op(k.op).0);
            }

            // Issue memory requests from each busy AG.
            for (slot, ag) in ags.iter_mut().enumerate() {
                let Some(run) = ag.as_mut() else { continue };
                if run.issue_from > t {
                    continue;
                }
                let (op, _) = prog.op(run.op);
                for _ in 0..self.cfg.ag.width {
                    if run.cursor >= run.total {
                        break;
                    }
                    let i = run.cursor;
                    let req = match op {
                        StreamOp::Gather { pattern } => MemRequest {
                            id: next_id,
                            addr: pattern.addr(i),
                            op: MemOp::Read,
                            origin: Origin::AddrGen { node: 0, ag: slot },
                        },
                        StreamOp::Scatter { pattern, values } => MemRequest {
                            id: next_id,
                            addr: pattern.addr(i),
                            op: MemOp::Write {
                                bits: values[i as usize],
                            },
                            origin: Origin::AddrGen { node: 0, ag: slot },
                        },
                        StreamOp::ScatterAdd {
                            pattern,
                            values,
                            kind,
                            op,
                        } => MemRequest {
                            id: next_id,
                            addr: pattern.addr(i),
                            op: MemOp::Scatter {
                                bits: values[i as usize],
                                kind: *kind,
                                op: *op,
                                fetch: false,
                            },
                            origin: Origin::AddrGen { node: 0, ag: slot },
                        },
                        StreamOp::Kernel { .. } => unreachable!("kernels don't use AGs"),
                    };
                    match node.inject_traced(req, now) {
                        Ok(()) => {
                            req_owner.insert(next_id, run.op);
                            next_id += 1;
                            run.cursor += 1;
                        }
                        Err(_) => break, // bank queue full: stall this AG
                    }
                }
            }

            node.tick(now);

            // Completions retire requests and, eventually, their ops.
            while let Some(c) = node.pop_completion() {
                let Some(op) = req_owner.remove(&c.id) else {
                    continue;
                };
                for ag in ags.iter_mut() {
                    if let Some(run) = ag.as_mut() {
                        if run.op == op {
                            run.acked += 1;
                            if run.acked == run.total {
                                state[op] = OpState::Done;
                                spans[op].end = t;
                                remaining -= 1;
                                *ag = None;
                                live_srf -= srf_footprint(prog.op(op).0);
                            }
                            break;
                        }
                    }
                }
            }

            // Fast-forward: when no op can start next cycle and no AG is
            // actively issuing, nothing on the scoreboard changes until the
            // next kernel/AG wakeup or node event — jump the clock there.
            if fast_forward && remaining > 0 {
                let can_start = (0..n_ops).any(|id| {
                    state[id] == OpState::Waiting && {
                        let (op, deps) = prog.op(id);
                        deps.iter().all(|&d| state[d] == OpState::Done)
                            && match op {
                                StreamOp::Kernel { .. } => kernel.is_none(),
                                _ => ags.iter().any(|a| a.is_none()),
                            }
                    }
                });
                let issuing = ags
                    .iter()
                    .flatten()
                    .any(|run| run.issue_from <= t && run.cursor < run.total);
                if !can_start && !issuing {
                    let mut horizon: Option<u64> = None;
                    let mut fold = |v: u64| horizon = Some(horizon.map_or(v, |h| h.min(v)));
                    if let Some(k) = &kernel {
                        fold(k.end_at); // > t: completion was checked above
                    }
                    for run in ags.iter().flatten() {
                        if run.issue_from > t && run.cursor < run.total {
                            fold(run.issue_from);
                        }
                    }
                    if let Some(e) = node.next_event(now) {
                        fold(e.raw());
                    }
                    if let Some(h) = horizon {
                        if h > t + 1 {
                            let k = h - t - 1;
                            node.skip_cycles(now, k);
                            clock.skip_to(Cycle(h - 1));
                            skipped_cycles += k;
                        }
                    }
                }
            }
        }

        // Drain any in-flight write-backs so the machine is quiescent, then
        // materialize the coherent memory image.
        while !node.is_idle() {
            let now = clock.advance();
            node.tick(now);
            while node.pop_completion().is_some() {}
            if fast_forward {
                // No more injections: with intra-node threads the lanes can
                // free-run a whole epoch; otherwise (or when the epoch
                // cannot engage) fall back to the event-horizon skip.
                let adv = node.advance_epoch(now, u64::MAX);
                if adv > 0 {
                    clock.skip_to(Cycle(now.raw() + adv - 1));
                    skipped_cycles += adv - 1;
                } else if let Some(h) = node.next_event(now) {
                    if h > now + 1 {
                        let k = h.raw() - now.raw() - 1;
                        node.skip_cycles(now, k);
                        clock.skip_to(Cycle(h.raw() - 1));
                        skipped_cycles += k;
                    }
                }
            }
        }
        node.flush_to_store();

        let srf_capacity = self.cfg.compute.srf_bytes / sa_sim::WORD_BYTES;
        ExecReport {
            cycles: clock.now().raw(),
            spans,
            stats: node.stats(),
            program: ProgramCounters {
                flops: prog.total_flops(),
                mem_refs: prog.total_mem_refs(),
            },
            srf: SrfUsage {
                peak_words: peak_srf,
                overflow: peak_srf > srf_capacity,
            },
            req_trace: node.take_req_trace(),
            skipped_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::AccessPattern;
    use sa_sim::Addr;

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    fn node() -> NodeMemSys {
        NodeMemSys::new(cfg(), 0, false)
    }

    #[test]
    fn kernel_cycles_model() {
        let e = Executor::new(cfg());
        // 16 clusters, 8 ops/cycle/cluster: 1600 elements × 8 ops = 100
        // groups × 1 cycle + startup.
        let startup = u64::from(cfg().compute.kernel_startup_cycles);
        assert_eq!(e.kernel_cycles(1600, 8, 1), startup + 100);
        // Ops-bound: 16 ops/elem → 2 cycles per group.
        assert_eq!(e.kernel_cycles(1600, 16, 1), startup + 200);
        // SRF-bound: 12 words/elem at 4 words/cycle → 3 cycles per group.
        assert_eq!(e.kernel_cycles(1600, 1, 12), startup + 300);
        // Minimum one cycle per group.
        assert_eq!(e.kernel_cycles(16, 0, 0), startup + 1);
    }

    #[test]
    fn gather_reads_preloaded_memory() {
        let mut n = node();
        n.store_mut().load_i64(Addr(0), &[7; 64]);
        let mut p = StreamProgram::new();
        p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: 64,
            }),
            &[],
        );
        let r = Executor::new(cfg()).run(&p, &mut n);
        assert_eq!(r.mem_refs(), 64);
        assert!(r.cycles > u64::from(cfg().ag.startup_cycles));
    }

    #[test]
    fn scatter_writes_memory() {
        let mut n = node();
        let mut p = StreamProgram::new();
        p.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: 100,
                    n: 8,
                },
                (1..=8u64).collect(),
            ),
            &[],
        );
        Executor::new(cfg()).run(&p, &mut n);
        assert_eq!(
            n.store().extract_i64(Addr::from_word_index(100), 8),
            (1..=8i64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scatter_add_accumulates() {
        let mut n = node();
        let mut p = StreamProgram::new();
        let idx = vec![0u64, 1, 0, 1, 0];
        p.add(
            StreamOp::scatter_add_i64(
                AccessPattern::Indexed {
                    base_word: 0,
                    indices: idx,
                },
                &[1, 1, 1, 1, 1],
            ),
            &[],
        );
        Executor::new(cfg()).run(&p, &mut n);
        assert_eq!(n.store().extract_i64(Addr(0), 2), vec![3, 2]);
    }

    #[test]
    fn dependencies_serialize() {
        // load → kernel → store: spans must not overlap.
        let mut n = node();
        let mut p = StreamProgram::new();
        let g = p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: 256,
            }),
            &[],
        );
        let k = p.add(StreamOp::kernel("f", 256, 2, 2, 2), &[g]);
        p.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: 1000,
                    n: 256,
                },
                vec![0; 256],
            ),
            &[k],
        );
        let r = Executor::new(cfg()).run(&p, &mut n);
        assert!(r.spans[0].end <= r.spans[1].start);
        assert!(r.spans[1].end <= r.spans[2].start);
    }

    #[test]
    fn independent_ops_overlap() {
        // Two independent cache-resident gathers use both AGs concurrently;
        // a dependent chain of the same work takes roughly twice as long.
        // (Cold gathers would both be DRAM-bandwidth-bound and look alike,
        // so warm the cache first.)
        let run = |chained: bool| {
            let mut n = node();
            let mut p = StreamProgram::new();
            let warm_a = p.add(
                StreamOp::gather(AccessPattern::Sequential {
                    base_word: 0,
                    n: 4096,
                }),
                &[],
            );
            let warm_b = p.add(
                StreamOp::gather(AccessPattern::Sequential {
                    base_word: 4096,
                    n: 4096,
                }),
                &[warm_a],
            );
            let a = p.add(
                StreamOp::gather(AccessPattern::Sequential {
                    base_word: 0,
                    n: 4096,
                }),
                &[warm_b],
            );
            let deps: Vec<OpId> = if chained {
                vec![warm_b, a]
            } else {
                vec![warm_b]
            };
            let b = p.add(
                StreamOp::gather(AccessPattern::Sequential {
                    base_word: 4096,
                    n: 4096,
                }),
                &deps,
            );
            let r = Executor::new(cfg()).run(&p, &mut n);
            r.spans[b].end - r.spans[a].start
        };
        let parallel = run(false);
        let serial = run(true);
        assert!(
            serial as f64 > parallel as f64 * 1.5,
            "serial {serial} vs parallel {parallel}"
        );
    }

    #[test]
    fn kernel_overlaps_independent_memory_op() {
        let mut n = node();
        let mut p = StreamProgram::new();
        p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: 2048,
            }),
            &[],
        );
        p.add(StreamOp::kernel("busy", 2048, 8, 8, 1), &[]);
        let r = Executor::new(cfg()).run(&p, &mut n);
        let g = r.spans[0];
        let k = r.spans[1];
        assert!(
            g.start < k.end && k.start < g.end,
            "gather {g:?} and kernel {k:?} should overlap"
        );
    }

    #[test]
    fn report_metrics_match_program() {
        let mut n = node();
        let mut p = StreamProgram::new();
        let g = p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: 128,
            }),
            &[],
        );
        p.add(StreamOp::kernel("k", 128, 4, 4, 2), &[g]);
        let r = Executor::new(cfg()).run(&p, &mut n);
        assert_eq!(r.flops(), 512);
        assert_eq!(r.mem_refs(), 128);
        assert!((r.micros() - r.cycles as f64 / 1e3).abs() < 1e-12);
    }

    #[test]
    fn srf_footprint_is_tracked() {
        let mut n = node();
        let mut p = StreamProgram::new();
        // Two overlapping 4096-word gathers: peak footprint 8192 words.
        p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: 4096,
            }),
            &[],
        );
        p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 8192,
                n: 4096,
            }),
            &[],
        );
        let r = Executor::new(cfg()).run(&p, &mut n);
        assert_eq!(r.peak_srf_words(), 8192);
        assert!(!r.srf_overflow(), "8192 words fit the 128K-word SRF");
    }

    #[test]
    fn srf_overflow_is_flagged() {
        let mut n = node();
        let mut p = StreamProgram::new();
        // A single 200K-word gather exceeds the 1 MB (128K-word) SRF.
        p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: 200_000,
            }),
            &[],
        );
        let r = Executor::new(cfg()).run(&p, &mut n);
        assert!(r.srf_overflow(), "oversized stage must be flagged");
        assert_eq!(r.peak_srf_words(), 200_000);
    }

    #[test]
    fn fast_forward_is_byte_identical() {
        // The same gather → kernel → scatter-add program must produce
        // identical cycles, spans, and machine stats with event-horizon
        // skipping on or off; only wall-clock accounting may differ.
        let run = |ff: bool| {
            let mut n = node();
            n.set_fast_forward(ff);
            n.store_mut().load_i64(Addr(0), &[3; 1024]);
            let mut p = StreamProgram::new();
            let g = p.add(
                StreamOp::gather(AccessPattern::Sequential {
                    base_word: 0,
                    n: 1024,
                }),
                &[],
            );
            let k = p.add(StreamOp::kernel("f", 1024, 8, 2, 2), &[g]);
            let idx: Vec<u64> = (0..1024u64).map(|i| i % 64).collect();
            p.add(
                StreamOp::scatter_add_i64(
                    AccessPattern::Indexed {
                        base_word: 4096,
                        indices: idx,
                    },
                    &[1; 1024],
                ),
                &[k],
            );
            let r = Executor::new(cfg()).run(&p, &mut n);
            let image = n.store().extract_i64(Addr::from_word_index(4096), 64);
            (r, image)
        };
        let (on, img_on) = run(true);
        let (off, img_off) = run(false);
        assert!(on.skipped_cycles > 0, "expected some fast-forwarded cycles");
        assert_eq!(off.skipped_cycles, 0);
        assert_eq!(on.cycles, off.cycles);
        assert_eq!(on.spans, off.spans);
        assert_eq!(on.stats, off.stats);
        assert_eq!(img_on, img_off);
    }

    #[test]
    fn empty_program_finishes_immediately() {
        let mut n = node();
        let p = StreamProgram::new();
        let r = Executor::new(cfg()).run(&p, &mut n);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn empty_stream_op_completes() {
        let mut n = node();
        let mut p = StreamProgram::new();
        p.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: 0,
                indices: vec![],
            }),
            &[],
        );
        let r = Executor::new(cfg()).run(&p, &mut n);
        assert!(r.cycles < 10);
    }
}
