//! Stream programs: a DAG of stream memory operations and kernels.

use sa_sim::{Addr, ScalarKind, ScatterOp};

/// Identifies an operation within a [`StreamProgram`].
pub type OpId = usize;

/// The memory footprint of a stream memory operation.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessPattern {
    /// `n` consecutive words starting at `base_word` (a strided stream with
    /// unit stride — the common case for loading packed streams).
    Sequential {
        /// First word index.
        base_word: u64,
        /// Number of words.
        n: u64,
    },
    /// Arbitrary word offsets relative to `base_word` (an indexed gather or
    /// scatter).
    Indexed {
        /// Base word index added to every element of `indices`.
        base_word: u64,
        /// Word offsets.
        indices: Vec<u64>,
    },
}

impl AccessPattern {
    /// Number of word accesses this pattern performs.
    pub fn len(&self) -> u64 {
        match self {
            AccessPattern::Sequential { n, .. } => *n,
            AccessPattern::Indexed { indices, .. } => indices.len() as u64,
        }
    }

    /// Whether the pattern touches no words.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The address of the `i`-th access.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn addr(&self, i: u64) -> Addr {
        match self {
            AccessPattern::Sequential { base_word, n } => {
                assert!(i < *n, "pattern index out of range");
                Addr::from_word_index(base_word + i)
            }
            AccessPattern::Indexed { base_word, indices } => {
                Addr::from_word_index(base_word + indices[i as usize])
            }
        }
    }
}

/// One operation of a stream program.
#[derive(Clone, Debug, PartialEq)]
pub enum StreamOp {
    /// Load a stream from memory into the SRF.
    Gather {
        /// Words to fetch.
        pattern: AccessPattern,
    },
    /// Store a stream from the SRF to memory (plain writes; bypasses the
    /// scatter-add units).
    Scatter {
        /// Words to write.
        pattern: AccessPattern,
        /// Value bits per access (same length as the pattern).
        values: Vec<u64>,
    },
    /// Scatter-add a stream: each value is atomically combined into its
    /// target word by the hardware scatter-add units.
    ScatterAdd {
        /// Words to combine into.
        pattern: AccessPattern,
        /// Value bits per access (same length as the pattern).
        values: Vec<u64>,
        /// Word interpretation.
        kind: ScalarKind,
        /// Reduction (the paper's operation is `Add`).
        op: ScatterOp,
    },
    /// A computational kernel over `elements` stream elements.
    Kernel {
        /// Human-readable name (for reports).
        name: String,
        /// Number of stream elements processed.
        elements: u64,
        /// Floating-point operations per element — the "FP Operations"
        /// metric of Figures 9 and 10.
        flops_per_element: u64,
        /// Total ALU operations per element (flops + integer/compare ops);
        /// determines execution time.
        ops_per_element: u64,
        /// SRF words read+written per element; kernels can also be
        /// bandwidth-bound (Table 1: 512 GB/s SRF).
        srf_words_per_element: u64,
    },
}

impl StreamOp {
    /// Convenience constructor for a gather.
    pub fn gather(pattern: AccessPattern) -> StreamOp {
        StreamOp::Gather { pattern }
    }

    /// Convenience constructor for a plain scatter (store).
    ///
    /// # Panics
    ///
    /// Panics if `values` length differs from the pattern length.
    pub fn scatter(pattern: AccessPattern, values: Vec<u64>) -> StreamOp {
        assert_eq!(
            pattern.len(),
            values.len() as u64,
            "scatter value count must match pattern"
        );
        StreamOp::Scatter { pattern, values }
    }

    /// Convenience constructor for a floating-point scatter-add.
    ///
    /// # Panics
    ///
    /// Panics if `values` length differs from the pattern length.
    pub fn scatter_add_f64(pattern: AccessPattern, values: &[f64]) -> StreamOp {
        assert_eq!(
            pattern.len(),
            values.len() as u64,
            "scatter-add value count must match pattern"
        );
        StreamOp::ScatterAdd {
            pattern,
            values: values.iter().map(|v| v.to_bits()).collect(),
            kind: ScalarKind::F64,
            op: ScatterOp::Add,
        }
    }

    /// Convenience constructor for an integer scatter-add.
    ///
    /// # Panics
    ///
    /// Panics if `values` length differs from the pattern length.
    pub fn scatter_add_i64(pattern: AccessPattern, values: &[i64]) -> StreamOp {
        assert_eq!(
            pattern.len(),
            values.len() as u64,
            "scatter-add value count must match pattern"
        );
        StreamOp::ScatterAdd {
            pattern,
            values: values.iter().map(|&v| v as u64).collect(),
            kind: ScalarKind::I64,
            op: ScatterOp::Add,
        }
    }

    /// Convenience constructor for a kernel.
    pub fn kernel(
        name: &str,
        elements: u64,
        flops_per_element: u64,
        ops_per_element: u64,
        srf_words_per_element: u64,
    ) -> StreamOp {
        StreamOp::Kernel {
            name: name.to_owned(),
            elements,
            flops_per_element,
            ops_per_element,
            srf_words_per_element,
        }
    }

    /// Memory words this op accesses (0 for kernels).
    pub fn mem_refs(&self) -> u64 {
        match self {
            StreamOp::Gather { pattern } => pattern.len(),
            StreamOp::Scatter { pattern, .. } => pattern.len(),
            StreamOp::ScatterAdd { pattern, .. } => pattern.len(),
            StreamOp::Kernel { .. } => 0,
        }
    }

    /// Floating-point operations this op performs (0 for memory ops — the
    /// additions done by the scatter-add units happen in the memory system,
    /// not the clusters, matching how Figures 9/10 account FP operations).
    pub fn flops(&self) -> u64 {
        match self {
            StreamOp::Kernel {
                elements,
                flops_per_element,
                ..
            } => elements * flops_per_element,
            _ => 0,
        }
    }
}

/// A DAG of stream operations with explicit dependencies.
///
/// Operations with no path between them may execute concurrently (subject to
/// resource limits), modeling the software-pipelined overlap of stream loads
/// with kernel execution.
#[derive(Clone, Debug, Default)]
pub struct StreamProgram {
    ops: Vec<(StreamOp, Vec<OpId>)>,
}

impl StreamProgram {
    /// An empty program.
    pub fn new() -> StreamProgram {
        StreamProgram::default()
    }

    /// Append `op`, which may start once every op in `deps` has finished.
    ///
    /// # Panics
    ///
    /// Panics if any dependency refers to a not-yet-added op (cycles are
    /// therefore impossible by construction).
    pub fn add(&mut self, op: StreamOp, deps: &[OpId]) -> OpId {
        let id = self.ops.len();
        for &d in deps {
            assert!(d < id, "dependency {d} not yet defined");
        }
        self.ops.push((op, deps.to_vec()));
        id
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation and dependency list at `id`.
    pub fn op(&self, id: OpId) -> (&StreamOp, &[OpId]) {
        let (op, deps) = &self.ops[id];
        (op, deps)
    }

    /// Iterate over `(id, op, deps)`.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &StreamOp, &[OpId])> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, (op, deps))| (i, op, deps.as_slice()))
    }

    /// Total memory words accessed — the "Mem References" metric.
    pub fn total_mem_refs(&self) -> u64 {
        self.ops.iter().map(|(op, _)| op.mem_refs()).sum()
    }

    /// Total floating-point operations — the "FP Operations" metric.
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|(op, _)| op.flops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_lengths_and_addresses() {
        let s = AccessPattern::Sequential {
            base_word: 10,
            n: 4,
        };
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.addr(0), Addr::from_word_index(10));
        assert_eq!(s.addr(3), Addr::from_word_index(13));
        let i = AccessPattern::Indexed {
            base_word: 100,
            indices: vec![5, 0, 5],
        };
        assert_eq!(i.len(), 3);
        assert_eq!(i.addr(2), Addr::from_word_index(105));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sequential_addr_bounds_checked() {
        let s = AccessPattern::Sequential { base_word: 0, n: 2 };
        let _ = s.addr(2);
    }

    #[test]
    fn metrics_sum_over_ops() {
        let mut p = StreamProgram::new();
        let g = p.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: 0,
                n: 100,
            }),
            &[],
        );
        let k = p.add(StreamOp::kernel("k", 100, 3, 5, 2), &[g]);
        p.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: 200,
                    n: 100,
                },
                vec![0; 100],
            ),
            &[k],
        );
        assert_eq!(p.total_mem_refs(), 200);
        assert_eq!(p.total_flops(), 300);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_dependency_rejected() {
        let mut p = StreamProgram::new();
        p.add(StreamOp::kernel("k", 1, 1, 1, 1), &[3]);
    }

    #[test]
    #[should_panic(expected = "value count must match")]
    fn scatter_length_mismatch_rejected() {
        let _ = StreamOp::scatter(AccessPattern::Sequential { base_word: 0, n: 3 }, vec![1, 2]);
    }

    #[test]
    fn scatter_add_constructors() {
        let f = StreamOp::scatter_add_f64(
            AccessPattern::Indexed {
                base_word: 0,
                indices: vec![1, 2],
            },
            &[1.5, 2.5],
        );
        match f {
            StreamOp::ScatterAdd {
                kind, op, values, ..
            } => {
                assert_eq!(kind, ScalarKind::F64);
                assert_eq!(op, ScatterOp::Add);
                assert_eq!(f64::from_bits(values[1]), 2.5);
            }
            _ => panic!("wrong variant"),
        }
        let i =
            StreamOp::scatter_add_i64(AccessPattern::Sequential { base_word: 0, n: 2 }, &[-1, 7]);
        assert_eq!(i.mem_refs(), 2);
        assert_eq!(
            i.flops(),
            0,
            "scatter-add FP work happens in the memory system"
        );
    }
}
