//! The stream-processor model: programs of gathers, kernels and scatters,
//! executed with compute/memory overlap on the simulated machine.
//!
//! §3.1 of the paper describes the canonical execution model of a SIMD data
//! parallel architecture — *gather*, *compute*, *scatter* — with memory
//! operations expressed as whole streams so the memory system can pipeline
//! them. This crate models exactly that level of abstraction:
//!
//! * a [`StreamProgram`] is a DAG of [`StreamOp`]s (stream loads/stores/
//!   scatter-adds and kernels characterized by their per-element operation
//!   counts);
//! * the [`Executor`] runs a program against a
//!   [`NodeMemSys`](sa_core::NodeMemSys): memory ops occupy one of the
//!   machine's address generators and issue word requests at AG bandwidth,
//!   kernels occupy the cluster array, and independent ops overlap.
//!
//! Kernels are modeled by *rate*, not by instruction: a kernel over `n`
//! elements at `ops_per_element` ALU operations retires
//! `ceil(n / clusters)` element groups at the per-cluster issue rate. This
//! preserves the compute/memory balance the paper's experiments probe
//! without reimplementing the Merrimac ISA (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use sa_proc::{AccessPattern, Executor, StreamOp, StreamProgram};
//! use sa_core::NodeMemSys;
//! use sa_sim::MachineConfig;
//!
//! let cfg = MachineConfig::merrimac();
//! let mut prog = StreamProgram::new();
//! let load = prog.add(
//!     StreamOp::gather(AccessPattern::Sequential { base_word: 0, n: 1024 }),
//!     &[],
//! );
//! let k = prog.add(StreamOp::kernel("square", 1024, 1, 2, 1), &[load]);
//! prog.add(
//!     StreamOp::scatter(
//!         AccessPattern::Sequential { base_word: 4096, n: 1024 },
//!         vec![0u64; 1024],
//!     ),
//!     &[k],
//! );
//! let mut node = NodeMemSys::new(cfg, 0, false);
//! let report = Executor::new(cfg).run(&prog, &mut node);
//! assert!(report.cycles > 0);
//! assert_eq!(report.mem_refs(), 2048);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod program;

pub use exec::{ExecReport, Executor, OpSpan};
pub use program::{AccessPattern, OpId, StreamOp, StreamProgram};
