//! Scan primitives (Chatterjee, Blelloch & Zagha — cited by the paper as the
//! standard software machinery for computing per-address sums after a sort).

use sa_sim::{combine, ScalarKind, ScatterOp};

/// Inclusive scan with the `+` of the given kind: `out[i] = Σ_{j≤i} x[j]`.
pub fn inclusive_scan_add(xs: &[u64], kind: ScalarKind) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc: Option<u64> = None;
    for &x in xs {
        let next = match acc {
            None => x,
            Some(a) => combine(a, x, kind, ScatterOp::Add),
        };
        out.push(next);
        acc = Some(next);
    }
    out
}

/// Exclusive scan: `out[i] = Σ_{j<i} x[j]`, with `out[0]` the additive
/// identity.
pub fn exclusive_scan_add(xs: &[u64], kind: ScalarKind) -> Vec<u64> {
    let id = sa_sim::identity_bits(kind, ScatterOp::Add);
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = id;
    for &x in xs {
        out.push(acc);
        acc = combine(acc, x, kind, ScatterOp::Add);
    }
    out
}

/// Segment head flags of a sorted key array: `heads[i]` is true where a new
/// key begins.
pub fn segment_heads(sorted_keys: &[u64]) -> Vec<bool> {
    sorted_keys
        .iter()
        .enumerate()
        .map(|(i, &k)| i == 0 || sorted_keys[i - 1] != k)
        .collect()
}

/// Segmented inclusive scan: within each segment (delimited by `heads`),
/// `out[i]` is the running sum from the segment start.
///
/// The last element of each segment is the segment's total — exactly what
/// the sort-based software scatter-add needs per unique address.
///
/// # Panics
///
/// Panics if lengths differ or `heads[0]` is false for a non-empty input.
pub fn segmented_scan_add(xs: &[u64], heads: &[bool], kind: ScalarKind) -> Vec<u64> {
    assert_eq!(xs.len(), heads.len(), "length mismatch");
    if !xs.is_empty() {
        assert!(heads[0], "first element must start a segment");
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = sa_sim::identity_bits(kind, ScatterOp::Add);
    for (i, &x) in xs.iter().enumerate() {
        acc = if heads[i] {
            x
        } else {
            combine(acc, x, kind, ScatterOp::Add)
        };
        out.push(acc);
    }
    out
}

/// Per-segment totals of a sorted (key, value) sequence: one `(key, total)`
/// per unique key, in ascending key order. This is the compaction step after
/// the segmented scan.
pub fn segment_totals(sorted_keys: &[u64], vals: &[u64], kind: ScalarKind) -> Vec<(u64, u64)> {
    assert_eq!(sorted_keys.len(), vals.len(), "length mismatch");
    let heads = segment_heads(sorted_keys);
    let scanned = segmented_scan_add(vals, &heads, kind);
    let mut out = Vec::new();
    for i in 0..sorted_keys.len() {
        let last_of_segment = i + 1 == sorted_keys.len() || heads[i + 1];
        if last_of_segment {
            out.push((sorted_keys[i], scanned[i]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i64s(xs: &[i64]) -> Vec<u64> {
        xs.iter().map(|&x| x as u64).collect()
    }

    #[test]
    fn inclusive_scan_basic() {
        let out = inclusive_scan_add(&i64s(&[1, 2, 3, 4]), ScalarKind::I64);
        assert_eq!(out, i64s(&[1, 3, 6, 10]));
        assert!(inclusive_scan_add(&[], ScalarKind::I64).is_empty());
    }

    #[test]
    fn exclusive_scan_basic() {
        let out = exclusive_scan_add(&i64s(&[1, 2, 3, 4]), ScalarKind::I64);
        assert_eq!(out, i64s(&[0, 1, 3, 6]));
    }

    #[test]
    fn scans_relate() {
        let xs = i64s(&[5, -2, 7, 0, 3]);
        let inc = inclusive_scan_add(&xs, ScalarKind::I64);
        let exc = exclusive_scan_add(&xs, ScalarKind::I64);
        for i in 0..xs.len() {
            assert_eq!(
                inc[i] as i64,
                exc[i] as i64 + xs[i] as i64,
                "inclusive = exclusive + x at {i}"
            );
        }
    }

    #[test]
    fn heads_mark_key_changes() {
        let heads = segment_heads(&[1, 1, 2, 5, 5, 5]);
        assert_eq!(heads, vec![true, false, true, true, false, false]);
        assert!(segment_heads(&[]).is_empty());
    }

    #[test]
    fn segmented_scan_resets_at_heads() {
        let xs = i64s(&[1, 1, 1, 2, 2, 10]);
        let heads = vec![true, false, false, true, false, true];
        let out = segmented_scan_add(&xs, &heads, ScalarKind::I64);
        assert_eq!(out, i64s(&[1, 2, 3, 2, 4, 10]));
    }

    #[test]
    fn segment_totals_per_unique_key() {
        let keys = [3u64, 3, 3, 7, 9, 9];
        let vals = i64s(&[1, 1, 1, 5, 2, 2]);
        let totals = segment_totals(&keys, &vals, ScalarKind::I64);
        assert_eq!(totals, vec![(3, 3u64), (7, 5), (9, 4)]);
    }

    #[test]
    fn f64_segmented_scan() {
        let xs: Vec<u64> = [0.5f64, 0.25, 1.0].iter().map(|v| v.to_bits()).collect();
        let heads = vec![true, false, true];
        let out = segmented_scan_add(&xs, &heads, ScalarKind::F64);
        assert_eq!(f64::from_bits(out[1]), 0.75);
        assert_eq!(f64::from_bits(out[2]), 1.0);
    }

    #[test]
    #[should_panic(expected = "first element must start a segment")]
    fn bad_heads_rejected() {
        let _ = segmented_scan_add(&[1, 2], &[false, true], ScalarKind::I64);
    }
}
