//! The coloring software baseline (§2.1) — implemented as an extension.
//!
//! "The final software technique relies on coloring of the dataset, such
//! that each color only contains non-colliding elements. Then each iteration
//! updates the sums in memory for a single color and the total run-time
//! complexity is O(n). The problem is in finding a partition of the dataset
//! that satisfies the coloring constraint ... in the worst case a large
//! number of necessary colors will yield a serial schedule."
//!
//! The paper describes but does not evaluate coloring; we implement it both
//! to test against and to use in ablation benches.

use sa_core::ScatterKernel;
use sa_proc::{AccessPattern, OpId, StreamOp, StreamProgram};
use sa_sim::{combine, ScatterOp};

use std::collections::HashMap;

/// Per-element kernel cost of a color's read-modify-write.
const RMW_OPS_PER_ELEMENT: u64 = 2;
const RMW_FLOPS_PER_ELEMENT: u64 = 1;
const RMW_SRF_WORDS_PER_ELEMENT: u64 = 3;

/// Greedy color assignment: element `i` gets color = number of earlier
/// occurrences of its index. Within a color every address is unique, and the
/// number of colors equals the maximum address multiplicity (optimal for
/// this constraint).
pub fn color_assignment(indices: &[u64]) -> Vec<usize> {
    let mut seen: HashMap<u64, usize> = HashMap::new();
    indices
        .iter()
        .map(|&idx| {
            let c = seen.entry(idx).or_insert(0);
            let color = *c;
            *c += 1;
            color
        })
        .collect()
}

/// Functional result of the coloring scatter-add.
pub fn coloring_result(kernel: &ScatterKernel, range: usize) -> Vec<u64> {
    let colors = color_assignment(&kernel.indices);
    let n_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
    let mut result = vec![0u64; range];
    for color in 0..n_colors {
        for (i, &idx) in kernel.indices.iter().enumerate() {
            if colors[i] == color {
                result[idx as usize] = combine(
                    result[idx as usize],
                    kernel.values[i],
                    kernel.kind,
                    ScatterOp::Add,
                );
            }
        }
    }
    result
}

/// Build the stream program: one collision-free gather → add → scatter round
/// per color, serialized across colors.
///
/// # Panics
///
/// Panics if the kernel's reduction is not `Add`.
pub fn build_coloring(kernel: &ScatterKernel, range: usize) -> StreamProgram {
    assert_eq!(
        kernel.op,
        ScatterOp::Add,
        "coloring baseline implements Add"
    );
    let colors = color_assignment(&kernel.indices);
    let n_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
    let mut running = vec![0u64; range];
    let mut prog = StreamProgram::new();
    let mut prev_scatter: Option<OpId> = None;

    for color in 0..n_colors {
        let members: Vec<usize> = (0..kernel.indices.len())
            .filter(|&i| colors[i] == color)
            .collect();
        let idxs: Vec<u64> = members.iter().map(|&i| kernel.indices[i]).collect();
        let u = idxs.len() as u64;
        let deps: Vec<OpId> = prev_scatter.into_iter().collect();
        let gather = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: kernel.base_word,
                indices: idxs.clone(),
            }),
            &deps,
        );
        let add = prog.add(
            StreamOp::kernel(
                "color-rmw",
                u,
                RMW_FLOPS_PER_ELEMENT,
                RMW_OPS_PER_ELEMENT,
                RMW_SRF_WORDS_PER_ELEMENT,
            ),
            &[gather],
        );
        let values: Vec<u64> = members
            .iter()
            .map(|&i| {
                let idx = kernel.indices[i] as usize;
                running[idx] = combine(running[idx], kernel.values[i], kernel.kind, ScatterOp::Add);
                running[idx]
            })
            .collect();
        let scatter = prog.add(
            StreamOp::scatter(
                AccessPattern::Indexed {
                    base_word: kernel.base_word,
                    indices: idxs,
                },
                values,
            ),
            &[add],
        );
        prev_scatter = Some(scatter);
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter_add_reference;
    use sa_core::NodeMemSys;
    use sa_proc::Executor;
    use sa_sim::{Addr, MachineConfig, Rng64};

    #[test]
    fn colors_are_collision_free() {
        let indices = vec![3u64, 1, 3, 3, 1, 0];
        let colors = color_assignment(&indices);
        assert_eq!(colors, vec![0, 0, 1, 2, 1, 0]);
        // Within each color, indices are unique.
        let n_colors = colors.iter().max().unwrap() + 1;
        for c in 0..n_colors {
            let mut seen = std::collections::HashSet::new();
            for (i, &col) in colors.iter().enumerate() {
                if col == c {
                    assert!(seen.insert(indices[i]), "collision in color {c}");
                }
            }
        }
        assert_eq!(n_colors, 3, "max multiplicity of 3 needs 3 colors");
    }

    #[test]
    fn functional_result_matches_reference() {
        let mut rng = Rng64::new(21);
        let k = ScatterKernel::histogram(0, (0..400).map(|_| rng.below(32)).collect());
        assert_eq!(coloring_result(&k, 32), scatter_add_reference(&k, 32));
    }

    #[test]
    fn executed_program_leaves_correct_memory() {
        let cfg = MachineConfig::merrimac();
        let mut rng = Rng64::new(22);
        let k = ScatterKernel::histogram(0, (0..200).map(|_| rng.below(16)).collect());
        let prog = build_coloring(&k, 16);
        let mut node = NodeMemSys::new(cfg, 0, false);
        Executor::new(cfg).run(&prog, &mut node);
        let expect: Vec<i64> = scatter_add_reference(&k, 16)
            .iter()
            .map(|&b| b as i64)
            .collect();
        assert_eq!(node.store().extract_i64(Addr(0), 16), expect);
    }

    #[test]
    fn skewed_data_serializes() {
        // All elements to one bin → n colors → a serial schedule (the
        // worst case the paper warns about).
        let k = ScatterKernel::histogram(0, vec![0; 50]);
        let prog = build_coloring(&k, 1);
        assert_eq!(prog.len(), 50 * 3, "one round per element");
    }

    #[test]
    fn empty_input_yields_empty_program() {
        let k = ScatterKernel::histogram(0, vec![]);
        assert!(build_coloring(&k, 4).is_empty());
        assert_eq!(coloring_result(&k, 4), vec![0; 4]);
    }
}
