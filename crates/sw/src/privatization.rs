//! The privatization software baseline (§2.1, Figure 8).
//!
//! "The data is iterated over multiple times where each iteration computes
//! the sum for a particular target address. Since the addresses are treated
//! individually and the sums stored in registers, or other named state,
//! memory collisions are avoided. This technique is useful when the range of
//! target addresses is small, and its complexity is O(mn)."
//!
//! We privatize a *tile* of bins per pass (the registers each cluster can
//! afford), so the pass count is `ceil(range / tile)` and every pass re-reads
//! the entire dataset — the O(m·n) behaviour Figure 8 shows.

use sa_core::ScatterKernel;
use sa_proc::{AccessPattern, OpId, StreamOp, StreamProgram};
use sa_sim::{combine, ScatterOp};

/// Bins privatized per pass: what fits in cluster registers alongside the
/// kernel's working state on a Merrimac-class machine.
pub const DEFAULT_TILE: usize = 32;

/// Per-element kernel cost of one privatization pass: compute the bin,
/// range-test it against the tile, and conditionally accumulate.
const PASS_OPS_PER_ELEMENT: u64 = 4;
const PASS_FLOPS_PER_ELEMENT: u64 = 1;
const PASS_SRF_WORDS_PER_ELEMENT: u64 = 2;

/// Functional result of privatization (no timing): final contents of
/// `a[0..range]` as raw bits.
///
/// # Panics
///
/// Panics if `tile` is zero or an index falls outside `0..range`.
pub fn privatization_result(kernel: &ScatterKernel, range: usize, tile: usize) -> Vec<u64> {
    assert!(tile > 0, "tile must be positive");
    let mut result = vec![0u64; range];
    let mut lo = 0usize;
    while lo < range {
        let hi = (lo + tile).min(range);
        for (i, &idx) in kernel.indices.iter().enumerate() {
            let idx = idx as usize;
            assert!(idx < range, "index {idx} out of range {range}");
            if (lo..hi).contains(&idx) {
                result[idx] = combine(result[idx], kernel.values[i], kernel.kind, ScatterOp::Add);
            }
        }
        lo = hi;
    }
    result
}

/// Build the stream program for privatization: one full pass over the data
/// per tile of `range` bins.
///
/// # Panics
///
/// Panics if `tile` is zero or the kernel's reduction is not `Add`.
pub fn build_privatization(
    kernel: &ScatterKernel,
    idx_base: u64,
    range: usize,
    tile: usize,
) -> StreamProgram {
    assert!(tile > 0, "tile must be positive");
    assert_eq!(
        kernel.op,
        ScatterOp::Add,
        "privatization baseline implements Add"
    );
    let n = kernel.indices.len() as u64;
    let mut prog = StreamProgram::new();
    let mut prev_gather: Option<OpId> = None;

    let mut lo = 0usize;
    while lo < range {
        let hi = (lo + tile).min(range);
        let deps: Vec<OpId> = prev_gather.into_iter().collect();
        let gather = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: idx_base,
                n,
            }),
            &deps,
        );
        prev_gather = Some(gather);
        let k = prog.add(
            StreamOp::kernel(
                "privatized-accumulate",
                n,
                PASS_FLOPS_PER_ELEMENT,
                PASS_OPS_PER_ELEMENT,
                PASS_SRF_WORDS_PER_ELEMENT,
            ),
            &[gather],
        );
        // Write this tile's finished bins.
        let tile_values: Vec<u64> = (lo..hi)
            .map(|bin| {
                let mut acc = 0u64;
                for (i, &idx) in kernel.indices.iter().enumerate() {
                    if idx as usize == bin {
                        acc = combine(acc, kernel.values[i], kernel.kind, ScatterOp::Add);
                    }
                }
                acc
            })
            .collect();
        prog.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: kernel.base_word + lo as u64,
                    n: (hi - lo) as u64,
                },
                tile_values,
            ),
            &[k],
        );
        lo = hi;
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter_add_reference;
    use sa_core::NodeMemSys;
    use sa_proc::Executor;
    use sa_sim::{Addr, MachineConfig, Rng64};

    fn random_kernel(n: usize, range: u64, seed: u64) -> ScatterKernel {
        let mut rng = Rng64::new(seed);
        ScatterKernel::histogram(0, (0..n).map(|_| rng.below(range)).collect())
    }

    #[test]
    fn functional_result_matches_reference() {
        for (n, range, tile) in [(100usize, 16usize, 4usize), (500, 128, 32), (64, 7, 3)] {
            let k = random_kernel(n, range as u64, (n + range) as u64);
            assert_eq!(
                privatization_result(&k, range, tile),
                scatter_add_reference(&k, range),
                "n={n} range={range} tile={tile}"
            );
        }
    }

    #[test]
    fn executed_program_leaves_correct_memory() {
        let cfg = MachineConfig::merrimac();
        let k = random_kernel(256, 64, 11);
        let prog = build_privatization(&k, 1 << 14, 64, DEFAULT_TILE);
        let mut node = NodeMemSys::new(cfg, 0, false);
        Executor::new(cfg).run(&prog, &mut node);
        let expect: Vec<i64> = scatter_add_reference(&k, 64)
            .iter()
            .map(|&b| b as i64)
            .collect();
        assert_eq!(node.store().extract_i64(Addr(0), 64), expect);
    }

    #[test]
    fn mem_refs_scale_with_range() {
        // The O(m·n) signature: doubling the range doubles the gathers.
        let k = random_kernel(512, 256, 12);
        let small = build_privatization(&k, 1 << 14, 128, 32);
        let large = build_privatization(&k, 1 << 14, 256, 32);
        assert!(large.total_mem_refs() > small.total_mem_refs() * 3 / 2);
        // Per pass: n index gathers + tile writes.
        assert_eq!(large.total_mem_refs(), (256 / 32) * (512 + 32));
    }

    #[test]
    fn partial_final_tile_handled() {
        let k = random_kernel(50, 10, 13);
        // range 10, tile 4 → tiles of 4, 4, 2.
        assert_eq!(
            privatization_result(&k, 10, 4),
            scatter_add_reference(&k, 10)
        );
        let prog = build_privatization(&k, 1 << 14, 10, 4);
        assert_eq!(prog.len(), 3 * 3);
    }

    #[test]
    #[should_panic(expected = "tile must be positive")]
    fn zero_tile_rejected() {
        let k = random_kernel(4, 4, 14);
        let _ = privatization_result(&k, 4, 0);
    }
}
