//! The paper's primary software baseline: batched sort + segmented scan.
//!
//! "It is not necessary to sort the entire stream that is to be
//! scatter-added, and ... the scatter-add can be performed in batches. This
//! reduces the run-time significantly, and on our simulated architecture a
//! batch size of 256 elements achieved the highest performance." (§4.1)
//!
//! Each batch is bitonic-sorted by target address; a segmented scan produces
//! one total per *unique* address; those unique addresses are then gathered,
//! added, and scattered back — collision-free because uniqueness was just
//! established. Batches are serialized on the read-modify-write step (two
//! batches may share addresses) but their gathers and kernels pipeline.

use std::collections::HashMap;

use sa_core::ScatterKernel;
use sa_proc::{AccessPattern, OpId, StreamOp, StreamProgram};
use sa_sim::{combine, ScatterOp};

use crate::scan::segment_totals;
use crate::sort::sort_pairs_by_key;

/// The batch size the paper found optimal (§4.1).
pub const DEFAULT_BATCH: usize = 256;

/// Where the software implementation finds its inputs in simulated memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SortScanLayout {
    /// Word index of the index array `b` (gathered once per batch).
    pub idx_base: u64,
    /// Word index of the value array `c`; `None` models a scalar constant
    /// (e.g. the histogram's `+1`), which needs no gather.
    pub val_base: Option<u64>,
}

/// ALU ops charged per compare-exchange of the bitonic network
/// (compare + two conditional selects for key and value).
const OPS_PER_COMPARE_EXCHANGE: u64 = 4;
/// SRF words per element per bitonic pass (key and value, read and write).
const SORT_SRF_WORDS_PER_PASS: u64 = 4;
/// Segmented-scan kernel costs per element (flag compute + add + select).
const SCAN_OPS_PER_ELEMENT: u64 = 6;
const SCAN_FLOPS_PER_ELEMENT: u64 = 1;
const SCAN_SRF_WORDS_PER_ELEMENT: u64 = 6;
/// Final read-modify-write kernel costs per unique address.
const RMW_OPS_PER_ELEMENT: u64 = 2;
const RMW_FLOPS_PER_ELEMENT: u64 = 1;
const RMW_SRF_WORDS_PER_ELEMENT: u64 = 3;

/// Functional result of the sort+scan scatter-add (no timing): the final
/// contents of `a[0..result_len]` as raw bits.
///
/// # Panics
///
/// Panics if any index is out of `0..result_len` or `batch == 0`.
pub fn sort_scan_result(kernel: &ScatterKernel, result_len: usize, batch: usize) -> Vec<u64> {
    assert!(batch > 0, "batch size must be positive");
    let mut result = vec![0u64; result_len];
    for (chunk_i, chunk_v) in kernel
        .indices
        .chunks(batch)
        .zip(kernel.values.chunks(batch))
    {
        let (keys, vals, _) = sort_pairs_by_key(chunk_i, chunk_v);
        for (key, total) in segment_totals(&keys, &vals, kernel.kind) {
            let slot = &mut result[key as usize];
            *slot = combine(*slot, total, kernel.kind, ScatterOp::Add);
        }
    }
    result
}

/// Build the stream program that performs `kernel` by batched sort +
/// segmented scan, ready to run on the simulated machine. The program's
/// scatters carry the functionally-correct running totals, so executing it
/// leaves the right result in memory.
///
/// # Panics
///
/// Panics if `batch` is zero, or if the kernel uses a non-`Add` reduction
/// (segmented *scan* composes with any associative op, but the paper's
/// baseline — and this builder — implement addition).
pub fn build_sort_scan(
    kernel: &ScatterKernel,
    layout: &SortScanLayout,
    batch: usize,
) -> StreamProgram {
    assert!(batch > 0, "batch size must be positive");
    assert_eq!(
        kernel.op,
        ScatterOp::Add,
        "sort&scan baseline implements Add"
    );
    let mut prog = StreamProgram::new();
    let mut running: HashMap<u64, u64> = HashMap::new();
    let mut prev_gather: Option<OpId> = None;
    let mut prev_scatter: Option<OpId> = None;

    let n = kernel.indices.len();
    let mut start = 0usize;
    while start < n {
        let end = (start + batch).min(n);
        let b = end - start;
        let chunk_i = &kernel.indices[start..end];
        let chunk_v = &kernel.values[start..end];

        // Gather the index (and value) batch; consecutive gathers chain so
        // they stream in order but overlap downstream compute.
        let gather_deps: Vec<OpId> = prev_gather.into_iter().collect();
        let g_idx = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout.idx_base + start as u64,
                n: b as u64,
            }),
            &gather_deps,
        );
        let mut batch_inputs = vec![g_idx];
        if let Some(vb) = layout.val_base {
            let g_val = prog.add(
                StreamOp::gather(AccessPattern::Sequential {
                    base_word: vb + start as u64,
                    n: b as u64,
                }),
                &gather_deps,
            );
            batch_inputs.push(g_val);
        }
        prev_gather = Some(g_idx);

        // Sort the batch by target address (bitonic network).
        let (keys, vals, sort_stats) = sort_pairs_by_key(chunk_i, chunk_v);
        let padded = b.next_power_of_two() as u64;
        let sort = prog.add(
            StreamOp::kernel(
                "bitonic-sort",
                padded,
                0,
                OPS_PER_COMPARE_EXCHANGE * sort_stats.passes / 2,
                SORT_SRF_WORDS_PER_PASS * sort_stats.passes,
            ),
            &batch_inputs,
        );

        // Segmented scan → per-unique-address totals.
        let scan = prog.add(
            StreamOp::kernel(
                "segmented-scan",
                b as u64,
                SCAN_FLOPS_PER_ELEMENT,
                SCAN_OPS_PER_ELEMENT,
                SCAN_SRF_WORDS_PER_ELEMENT,
            ),
            &[sort],
        );

        let totals = segment_totals(&keys, &vals, kernel.kind);
        let unique: Vec<u64> = totals.iter().map(|&(k, _)| k).collect();
        let u = unique.len() as u64;

        // Read-modify-write each unique address once; must order behind the
        // previous batch's scatter (addresses may repeat across batches).
        let mut rmw_deps = vec![scan];
        rmw_deps.extend(prev_scatter);
        let g_cur = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: kernel.base_word,
                indices: unique.clone(),
            }),
            &rmw_deps,
        );
        let add = prog.add(
            StreamOp::kernel(
                "rmw-add",
                u,
                RMW_FLOPS_PER_ELEMENT,
                RMW_OPS_PER_ELEMENT,
                RMW_SRF_WORDS_PER_ELEMENT,
            ),
            &[g_cur],
        );
        let new_values: Vec<u64> = totals
            .iter()
            .map(|&(k, total)| {
                let slot = running.entry(k).or_insert(0);
                *slot = combine(*slot, total, kernel.kind, ScatterOp::Add);
                *slot
            })
            .collect();
        let scatter = prog.add(
            StreamOp::scatter(
                AccessPattern::Indexed {
                    base_word: kernel.base_word,
                    indices: unique,
                },
                new_values,
            ),
            &[add],
        );
        prev_scatter = Some(scatter);
        start = end;
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter_add_reference;
    use sa_core::NodeMemSys;
    use sa_proc::Executor;
    use sa_sim::{Addr, MachineConfig, Rng64};

    fn random_kernel(n: usize, range: u64, seed: u64) -> ScatterKernel {
        let mut rng = Rng64::new(seed);
        ScatterKernel::histogram(0, (0..n).map(|_| rng.below(range)).collect())
    }

    #[test]
    fn functional_result_matches_reference() {
        for (n, range, batch) in [
            (100, 16, 32),
            (1000, 512, 256),
            (777, 100, 256),
            (5, 4, 256),
        ] {
            let k = random_kernel(n, range, n as u64);
            assert_eq!(
                sort_scan_result(&k, range as usize, batch),
                scatter_add_reference(&k, range as usize),
                "n={n} range={range} batch={batch}"
            );
        }
    }

    #[test]
    fn f64_result_matches_reference_exactly_for_dyadic_values() {
        // Dyadic rationals add exactly in any order, so even f64 agrees
        // bit-for-bit with the sequential reference.
        let mut rng = Rng64::new(9);
        let n = 400;
        let indices: Vec<u64> = (0..n).map(|_| rng.below(32)).collect();
        let values: Vec<f64> = (0..n).map(|_| (rng.below(8) as f64) * 0.25).collect();
        let k = ScatterKernel::superposition(0, indices, &values);
        assert_eq!(sort_scan_result(&k, 32, 256), scatter_add_reference(&k, 32));
    }

    #[test]
    fn executed_program_leaves_correct_memory() {
        let cfg = MachineConfig::merrimac();
        let k = random_kernel(600, 64, 3);
        let layout = SortScanLayout {
            idx_base: 1 << 14,
            val_base: None,
        };
        let prog = build_sort_scan(&k, &layout, DEFAULT_BATCH);
        let mut node = NodeMemSys::new(cfg, 0, false);
        // Preload the index array (as data for the gathers).
        let idx_i64: Vec<i64> = k.indices.iter().map(|&i| i as i64).collect();
        node.store_mut()
            .load_i64(Addr::from_word_index(layout.idx_base), &idx_i64);
        let report = Executor::new(cfg).run(&prog, &mut node);
        let expect: Vec<i64> = scatter_add_reference(&k, 64)
            .iter()
            .map(|&b| b as i64)
            .collect();
        assert_eq!(node.store().extract_i64(Addr(0), 64), expect);
        assert!(report.cycles > 0);
        assert!(report.flops() > 0, "scan/rmw kernels do FP work");
    }

    #[test]
    fn program_shape_scales_with_batches() {
        let k = random_kernel(1024, 128, 4);
        let layout = SortScanLayout {
            idx_base: 1 << 14,
            val_base: None,
        };
        let p256 = build_sort_scan(&k, &layout, 256);
        let p128 = build_sort_scan(&k, &layout, 128);
        // 6 ops per batch without a value gather: gather, sort, scan,
        // gather-current, add, scatter.
        assert_eq!(p256.len(), (1024 / 256) * 6);
        assert_eq!(p128.len(), (1024 / 128) * 6);
    }

    #[test]
    fn value_gather_included_when_values_in_memory() {
        let mut rng = Rng64::new(5);
        let n = 300;
        let indices: Vec<u64> = (0..n).map(|_| rng.below(64)).collect();
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let k = ScatterKernel::superposition(0, indices, &values);
        let layout = SortScanLayout {
            idx_base: 1 << 14,
            val_base: Some(1 << 15),
        };
        let prog = build_sort_scan(&k, &layout, 256);
        // 7 ops per batch with the value gather; 300 elements → 2 batches.
        assert_eq!(prog.len(), 14);
        // Mem refs: idx + val gathers (2n) plus RMW traffic (2 × unique).
        assert!(prog.total_mem_refs() >= 2 * n as u64);
    }

    #[test]
    fn more_mem_refs_than_hardware_version() {
        // The software baseline's defining cost: it re-reads the data and
        // read-modify-writes unique addresses, where hardware scatter-add
        // sends each element exactly once.
        let k = random_kernel(1000, 64, 6);
        let layout = SortScanLayout {
            idx_base: 1 << 14,
            val_base: None,
        };
        let prog = build_sort_scan(&k, &layout, 256);
        let hw_refs = 1000; // one scatter-add request per element
        assert!(prog.total_mem_refs() > hw_refs);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let k = random_kernel(10, 4, 7);
        let _ = sort_scan_result(&k, 4, 0);
    }
}
