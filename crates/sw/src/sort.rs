//! Data-parallel sorting of (key, value) pairs.
//!
//! The paper's software scatter-add sorts each batch by target address
//! "using a combination of a bitonic and merge sorting phases" (§4.1). Both
//! phases are implemented here with explicit operation counting so the
//! stream-program builders can charge the clusters for the work.

/// Work counters of a sort.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Compare-exchange operations performed.
    pub compare_exchanges: u64,
    /// Data-parallel passes over the array (each pass is one kernel
    /// invocation worth of work on a stream machine).
    pub passes: u64,
}

/// Bitonic sort of `keys` (with `vals` permuted alongside), ascending.
///
/// The bitonic network is the canonical data-parallel sort: every pass
/// performs `n/2` independent compare-exchanges, which a SIMD machine
/// executes at full width. `log2(n)·(log2(n)+1)/2` passes are required.
///
/// # Panics
///
/// Panics unless `keys.len()` is a power of two (pad with `u64::MAX` keys to
/// sort arbitrary sizes) or if `keys` and `vals` lengths differ.
pub fn bitonic_sort_pairs(keys: &mut [u64], vals: &mut [u64]) -> SortStats {
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let n = keys.len();
    assert!(
        n.is_power_of_two(),
        "bitonic sort needs a power-of-two size"
    );
    let mut stats = SortStats::default();
    if n < 2 {
        return stats;
    }
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            stats.passes += 1;
            for i in 0..n {
                let partner = i ^ j;
                if partner > i {
                    let ascending = (i & k) == 0;
                    stats.compare_exchanges += 1;
                    if (keys[i] > keys[partner]) == ascending {
                        keys.swap(i, partner);
                        vals.swap(i, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    stats
}

/// Merge `runs` of already-sorted (key, value) pairs into one sorted vector
/// — the merge phase used when a batch is assembled from bitonic-sorted
/// sub-blocks.
///
/// # Panics
///
/// Panics if any run is not sorted by key.
pub fn merge_sorted_runs(runs: &[Vec<(u64, u64)>]) -> (Vec<(u64, u64)>, SortStats) {
    for r in runs {
        assert!(
            r.windows(2).all(|w| w[0].0 <= w[1].0),
            "merge input run not sorted"
        );
    }
    let mut stats = SortStats::default();
    let mut current: Vec<Vec<(u64, u64)>> = runs.to_vec();
    while current.len() > 1 {
        stats.passes += 1;
        let mut next = Vec::with_capacity(current.len().div_ceil(2));
        let mut iter = current.chunks(2);
        for pair in &mut iter {
            match pair {
                [a, b] => {
                    let mut out = Vec::with_capacity(a.len() + b.len());
                    let (mut i, mut j) = (0, 0);
                    while i < a.len() && j < b.len() {
                        stats.compare_exchanges += 1;
                        if a[i].0 <= b[j].0 {
                            out.push(a[i]);
                            i += 1;
                        } else {
                            out.push(b[j]);
                            j += 1;
                        }
                    }
                    out.extend_from_slice(&a[i..]);
                    out.extend_from_slice(&b[j..]);
                    next.push(out);
                }
                [a] => next.push(a.clone()),
                _ => unreachable!("chunks(2)"),
            }
        }
        current = next;
    }
    (current.pop().unwrap_or_default(), stats)
}

/// Sort arbitrary-length (key, value) pairs: bitonic on the padded
/// power-of-two size — the form the batched software scatter-add uses.
pub fn sort_pairs_by_key(keys: &[u64], vals: &[u64]) -> (Vec<u64>, Vec<u64>, SortStats) {
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let n = keys.len();
    let padded = n.next_power_of_two().max(1);
    let mut k: Vec<u64> = keys.to_vec();
    let mut v: Vec<u64> = vals.to_vec();
    k.resize(padded, u64::MAX);
    v.resize(padded, 0);
    let stats = bitonic_sort_pairs(&mut k, &mut v);
    k.truncate(n);
    v.truncate(n);
    (k, v, stats)
}

/// Whether `keys` is non-decreasing.
pub fn is_sorted_by_key(keys: &[u64]) -> bool {
    keys.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::Rng64;

    #[test]
    fn bitonic_sorts_random_input() {
        let mut rng = Rng64::new(1);
        for size in [1usize, 2, 4, 16, 64, 256] {
            let mut keys: Vec<u64> = (0..size).map(|_| rng.below(50)).collect();
            let mut vals: Vec<u64> = (0..size as u64).collect();
            let orig: Vec<(u64, u64)> = keys.iter().copied().zip(vals.iter().copied()).collect();
            bitonic_sort_pairs(&mut keys, &mut vals);
            assert!(is_sorted_by_key(&keys), "size {size} not sorted");
            // Permutation check: the multiset of pairs is preserved.
            let mut got: Vec<(u64, u64)> = keys.into_iter().zip(vals).collect();
            let mut want = orig;
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn bitonic_pass_count_matches_theory() {
        let n = 256usize;
        let mut keys: Vec<u64> = (0..n as u64).rev().collect();
        let mut vals = vec![0u64; n];
        let stats = bitonic_sort_pairs(&mut keys, &mut vals);
        let log = n.trailing_zeros() as u64; // 8
        assert_eq!(stats.passes, log * (log + 1) / 2);
        assert_eq!(stats.compare_exchanges, stats.passes * (n as u64 / 2));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bitonic_rejects_non_power_of_two() {
        let mut k = vec![3, 1, 2];
        let mut v = vec![0, 0, 0];
        bitonic_sort_pairs(&mut k, &mut v);
    }

    #[test]
    fn sort_pairs_handles_any_length() {
        let mut rng = Rng64::new(2);
        for size in [0usize, 1, 3, 100, 257] {
            let keys: Vec<u64> = (0..size).map(|_| rng.below(1000)).collect();
            let vals: Vec<u64> = (0..size as u64).map(|i| i * 10).collect();
            let (k, v, _) = sort_pairs_by_key(&keys, &vals);
            assert_eq!(k.len(), size);
            assert!(is_sorted_by_key(&k));
            let mut got: Vec<(u64, u64)> = k.into_iter().zip(v).collect();
            let mut want: Vec<(u64, u64)> = keys.into_iter().zip(vals).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn merge_combines_runs() {
        let runs = vec![
            vec![(1u64, 10u64), (4, 40)],
            vec![(2, 20), (3, 30)],
            vec![(0, 0), (5, 50)],
        ];
        let (merged, stats) = merge_sorted_runs(&runs);
        let keys: Vec<u64> = merged.iter().map(|p| p.0).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 5]);
        assert!(stats.passes >= 2, "three runs need two merge passes");
    }

    #[test]
    fn merge_empty_and_single() {
        let (m, _) = merge_sorted_runs(&[]);
        assert!(m.is_empty());
        let (m, s) = merge_sorted_runs(&[vec![(1, 1)]]);
        assert_eq!(m, vec![(1, 1)]);
        assert_eq!(s.passes, 0);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn merge_rejects_unsorted_run() {
        let _ = merge_sorted_runs(&[vec![(2, 0), (1, 0)]]);
    }
}
