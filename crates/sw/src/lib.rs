//! Software scatter-add for data-parallel machines — the baselines the
//! paper's hardware mechanism is compared against (§2.1, §4.1).
//!
//! Three techniques are implemented, each in two layers:
//!
//! * a **functional** layer (real sorts, scans, and sums, unit- and
//!   property-tested against scalar references), and
//! * a **stream program builder** that emits the gathers, kernels, and
//!   scatters a stream compiler would generate, so the same computation can
//!   be *timed* on the simulated machine by `sa-proc`'s executor.
//!
//! The techniques:
//!
//! 1. [`build_sort_scan`] — the paper's primary software baseline: process
//!    the input in constant-size batches (256 elements performed best on
//!    the paper's machine, §4.1); bitonic-sort each batch by target address,
//!    compute per-address sums with a segmented scan, then read-modify-write
//!    each *unique* address once (collision-free by construction).
//! 2. [`build_privatization`] — iterate over the dataset once per register
//!    tile of output bins (complexity `O(m·n)`, §2.1); only sensible for
//!    small index ranges (Figure 8).
//! 3. [`build_coloring`] — partition the dataset into *colors* with no
//!    repeated address inside a color, then update one color at a time
//!    (§2.1; evaluated here as an extension — the paper describes but does
//!    not measure it).
//!
//! # Example
//!
//! ```
//! use sa_core::ScatterKernel;
//! use sa_sw::{scatter_add_reference, sort_scan_result};
//!
//! let kernel = ScatterKernel::histogram(0, vec![2, 0, 2, 1, 2]);
//! let sw = sort_scan_result(&kernel, 4, 256);
//! assert_eq!(sw, scatter_add_reference(&kernel, 4));
//! assert_eq!(sw, vec![1, 1, 3, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batched;
mod coloring;
mod privatization;
mod scan;
mod sort;

pub use batched::{build_sort_scan, sort_scan_result, SortScanLayout, DEFAULT_BATCH};
pub use coloring::{build_coloring, color_assignment, coloring_result};
pub use privatization::{build_privatization, privatization_result, DEFAULT_TILE};
pub use scan::{
    exclusive_scan_add, inclusive_scan_add, segment_heads, segment_totals, segmented_scan_add,
};
pub use sort::{
    bitonic_sort_pairs, is_sorted_by_key, merge_sorted_runs, sort_pairs_by_key, SortStats,
};

use sa_core::ScatterKernel;

/// Scalar reference semantics: what a sequential loop computes, as raw bits.
///
/// All software implementations and the hardware unit must agree with this
/// for integer kinds, and agree up to floating-point reassociation for
/// [`ScalarKind::F64`](sa_sim::ScalarKind).
pub fn scatter_add_reference(kernel: &ScatterKernel, result_len: usize) -> Vec<u64> {
    sa_core::scatter_reference(kernel, result_len)
}
