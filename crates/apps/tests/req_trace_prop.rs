//! Property test over the request-lifecycle tracer: across the histogram,
//! SpMV (EBE) and MD scatter traces, in both scatter-add modes (plain and
//! fetching), every sampled request id that is issued retires exactly once
//! and its stage stamps are monotonically non-decreasing in time.

use proptest::prelude::*;
use sa_apps::md::WaterSystem;
use sa_apps::mesh::Mesh;
use sa_apps::spmv::Ebe;
use sa_core::{drive_scatter_with, NodeMemSys, ScatterKernel};
use sa_sim::{MachineConfig, Rng64};
use sa_telemetry::{NullTrace, ReqStage};

#[derive(Clone, Copy, Debug)]
enum Workload {
    Histogram,
    Spmv,
    Md,
}

fn trace_of(workload: Workload, seed: u64) -> Vec<u64> {
    match workload {
        Workload::Histogram => {
            let mut rng = Rng64::new(seed);
            (0..1024).map(|_| rng.below(256)).collect()
        }
        Workload::Spmv => Ebe::new(&Mesh::generate(40, 8, 160, seed)).scatter_trace(),
        Workload::Md => WaterSystem::generate(24, seed).scatter_trace(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_issued_request_retires_once_with_monotone_stamps(
        workload in prop::sample::select(vec![Workload::Histogram, Workload::Spmv, Workload::Md]),
        fetch in any::<bool>(),
        sample in prop::sample::select(vec![1u64, 2, 4]),
        seed in 1u64..64,
    ) {
        let mut cfg = MachineConfig::merrimac();
        cfg.req_sample = sample;
        let kernel = ScatterKernel::histogram(0, trace_of(workload, seed));
        let node = NodeMemSys::with_tracer(cfg, 0, false, NullTrace);
        let run = drive_scatter_with(node, &kernel, fetch);
        let tracer = run.node.req_tracer();

        prop_assert!(tracer.issued_len() > 0, "sampling 1-in-{sample} sees requests");
        prop_assert_eq!(tracer.live_len(), 0, "every sampled request retired");
        prop_assert_eq!(tracer.issued_len(), tracer.retired_len());
        for rec in tracer.retired_records() {
            prop_assert_eq!(rec.id % sample, 0, "only sampled ids are recorded");
            prop_assert!(rec.is_retired());
            prop_assert_eq!(
                rec.stamps.first().map(|&(s, _)| s),
                Some(ReqStage::Issued),
                "record {} starts at issue", rec.id
            );
            prop_assert_eq!(
                rec.stamps.last().map(|&(s, _)| s),
                Some(ReqStage::Retired),
                "record {} ends at retire", rec.id
            );
            prop_assert!(
                rec.stamps.windows(2).all(|w| w[0].1 <= w[1].1),
                "record {} has non-monotone stamps: {:?}", rec.id, rec.stamps
            );
        }
    }
}
