//! Scatter-trace analytics: the locality statistics that explain the
//! multi-node results of §4.5.
//!
//! The paper attributes each Figure 13 curve to properties of its reference
//! trace — "the high locality makes both the combining within the
//! scatter-add unit itself and in the cache very effective" (narrow),
//! "the large range of addresses accessed ... lead\[s\] to an extremely low
//! cache hit rate" (wide), "the locality in the neighbor lists is high"
//! (GROMACS). This module computes those properties: footprint, skew,
//! short-range combining opportunity, and cache-line working sets.

use std::collections::HashMap;

/// Locality statistics of a scatter-add reference trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Total references.
    pub len: usize,
    /// Distinct word indices touched.
    pub unique_words: usize,
    /// Distinct cache lines touched (at `line_words` words per line).
    pub unique_lines: usize,
    /// References to the most popular word (the hot-spot degree).
    pub max_multiplicity: usize,
    /// Mean references per touched word (`len / unique_words`).
    pub mean_multiplicity: f64,
    /// Fraction of references whose word reappears within the next
    /// `window` references — the chance the combining store can merge them
    /// (the window models its capacity).
    pub window_reuse: f64,
    /// The window used for `window_reuse`.
    pub window: usize,
}

impl TraceStats {
    /// Analyze a trace of word indices with the given cache-line width and
    /// combining window.
    ///
    /// # Panics
    ///
    /// Panics if `line_words` or `window` is zero.
    pub fn analyze(trace: &[u64], line_words: u64, window: usize) -> TraceStats {
        assert!(line_words > 0, "line width must be positive");
        assert!(window > 0, "window must be positive");
        let mut word_counts: HashMap<u64, usize> = HashMap::new();
        let mut line_set: HashMap<u64, ()> = HashMap::new();
        for &w in trace {
            *word_counts.entry(w).or_insert(0) += 1;
            line_set.insert(w / line_words, ());
        }
        // Window reuse: a reference counts if the same word occurs again
        // within the next `window` references.
        let mut reuses = 0usize;
        for (i, &w) in trace.iter().enumerate() {
            let end = (i + 1 + window).min(trace.len());
            if trace[i + 1..end].contains(&w) {
                reuses += 1;
            }
        }
        let unique_words = word_counts.len();
        TraceStats {
            len: trace.len(),
            unique_words,
            unique_lines: line_set.len(),
            max_multiplicity: word_counts.values().copied().max().unwrap_or(0),
            mean_multiplicity: if unique_words == 0 {
                0.0
            } else {
                trace.len() as f64 / unique_words as f64
            },
            window_reuse: if trace.is_empty() {
                0.0
            } else {
                reuses as f64 / trace.len() as f64
            },
            window,
        }
    }

    /// Bytes of result data the trace touches (`unique_words × 8`).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_words as u64 * 8
    }

    /// Whether the footprint fits a cache of `bytes` (the Figure 13
    /// narrow-vs-wide distinction).
    pub fn fits_cache(&self, bytes: u64) -> bool {
        (self.unique_lines as u64) * 32 <= bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::Rng64;

    #[test]
    fn counts_are_exact_on_a_known_trace() {
        let trace = [0u64, 1, 0, 2, 0, 1, 8];
        let s = TraceStats::analyze(&trace, 4, 4);
        assert_eq!(s.len, 7);
        assert_eq!(s.unique_words, 4);
        assert_eq!(
            s.unique_lines, 2,
            "words 0,1,2 share line 0; word 8 is line 2"
        );
        assert_eq!(s.max_multiplicity, 3);
        assert!((s.mean_multiplicity - 7.0 / 4.0).abs() < 1e-12);
        assert_eq!(s.footprint_bytes(), 32);
    }

    #[test]
    fn window_reuse_distinguishes_narrow_from_wide() {
        let mut rng = Rng64::new(1);
        let narrow: Vec<u64> = (0..4000).map(|_| rng.below(64)).collect();
        let wide: Vec<u64> = (0..4000).map(|_| rng.below(1 << 20)).collect();
        let sn = TraceStats::analyze(&narrow, 4, 64);
        let sw = TraceStats::analyze(&wide, 4, 64);
        assert!(
            sn.window_reuse > 0.5,
            "narrow trace combines heavily: {}",
            sn.window_reuse
        );
        assert!(
            sw.window_reuse < 0.01,
            "wide trace barely combines: {}",
            sw.window_reuse
        );
        // The narrow footprint fits even a small cache; the wide one (about
        // 4000 distinct lines = 128 KB) overflows a 64 KB cache.
        assert!(sn.fits_cache(64 << 10));
        assert!(!sw.fits_cache(64 << 10));
    }

    #[test]
    fn application_traces_have_the_locality_the_paper_describes() {
        // GROMACS-like: high neighbor-list locality over ~8K force words.
        let sys = crate::md::WaterSystem::generate(120, 2);
        let trace = sys.scatter_trace();
        let s = TraceStats::analyze(&trace, 4, 64);
        assert!(
            s.window_reuse > 0.3,
            "MD trace locality: {}",
            s.window_reuse
        );
        assert_eq!(s.unique_words, sys.sites() * 3);

        // SPAS-like: element-sharing gives moderate short-range reuse.
        let mesh = crate::mesh::Mesh::generate(120, 20, 640, 3);
        let ebe = crate::spmv::Ebe::new(&mesh);
        let s = TraceStats::analyze(&ebe.scatter_trace(), 4, 64);
        assert!(
            s.mean_multiplicity > 2.0,
            "DOF sharing: {}",
            s.mean_multiplicity
        );
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::analyze(&[], 4, 8);
        assert_eq!(s.len, 0);
        assert_eq!(s.window_reuse, 0.0);
        assert_eq!(s.mean_multiplicity, 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = TraceStats::analyze(&[1], 4, 0);
    }
}
