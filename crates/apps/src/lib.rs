//! The paper's evaluation applications (§4.1), each in every variant the
//! paper measures.
//!
//! | Application | Variants | Paper figures |
//! |---|---|---|
//! | [`histogram`] | hardware scatter-add, sort+segmented-scan, privatization | 6, 7, 8 |
//! | [`spmv`] (with [`mesh`]) | CSR (gather-based), EBE with software scatter-add, EBE with hardware scatter-add | 9 |
//! | [`md`] | no scatter-add (duplicated compute), software scatter-add, hardware scatter-add | 10 |
//! | [`image`] | histogram equalization (the §1 image-processing motivation), composing scatter-add with the §5 hardware scan | extension |
//! | [`pic`] | 1-D electrostatic particle-in-cell plasma step (the §1 superposition citation): scatter-add deposit, scan field solve, gather push | extension |
//!
//! Every variant is built as a [`StreamProgram`](sa_proc::StreamProgram) and
//! executed on the simulated machine, producing both a *functional* result
//! (checked against a scalar reference in the tests) and the three metrics
//! the paper reports: execution cycles, FP operations, and memory
//! references.
//!
//! The paper's datasets are proprietary (a FEM model, a GROMACS water box);
//! [`mesh`] and [`md`] generate synthetic datasets matched to every
//! statistic the evaluation depends on — see DESIGN.md's substitution table.
//!
//! Applications also expose their raw scatter-add reference traces
//! ([`md::WaterSystem::scatter_trace`], [`spmv::Ebe::scatter_trace`]) for
//! the multi-node experiments of §4.5, which replay exactly these traces
//! ("GROMACS uses the first 590K references which span 8,192 unique indices,
//! and SPAS uses the full set of 38K references over 10,240 indices of the
//! EBE method").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod image;
pub mod md;
pub mod mesh;
pub mod pic;
pub mod spmv;
pub mod traces;

/// Memory layout helpers shared by the applications: fixed, non-overlapping
/// word regions of the simulated address space.
pub mod layout {
    /// Result arrays (histogram bins, SpMV `y`, MD forces) start at word 0.
    pub const RESULT_BASE: u64 = 0;
    /// Primary input arrays (histogram data, matrix values, positions).
    pub const INPUT_BASE: u64 = 1 << 21;
    /// Secondary input arrays (column indices, neighbor lists).
    pub const INPUT2_BASE: u64 = 1 << 23;
    /// Tertiary input arrays (row pointers, DOF maps).
    pub const INPUT3_BASE: u64 = 1 << 24;
    /// Scratch buffers (software scatter-add contribution streams).
    pub const SCRATCH_BASE: u64 = 1 << 25;
    /// Second scratch region (value streams).
    pub const SCRATCH2_BASE: u64 = 1 << 26;
}
