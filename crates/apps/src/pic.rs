//! Particle-in-cell plasma simulation — the superposition use case the
//! paper's introduction cites ("particle-in-cell methods to solve for
//! plasma behavior within the self-consistent electromagnetic field",
//! Williams \[42\]).
//!
//! A 1-D electrostatic PIC code with periodic boundaries:
//!
//! 1. **deposit** — every particle scatters its charge to its two nearest
//!    grid points (cloud-in-cell weighting): a floating-point scatter-add
//!    with heavy collisions — the paper's mechanism;
//! 2. **field solve** — the periodic electric field is the cumulative
//!    integral of the net charge density: a prefix sum, run on the §5
//!    hardware scan engine;
//! 3. **push** — gather the field at each particle (the same CIC weights)
//!    and advance velocities and positions: a gather + kernel.
//!
//! The functional layer advances real plasma state (a two-stream setup);
//! tests check charge conservation, periodic wrapping, agreement between
//! the machine-executed deposit and the scalar reference, and determinism.

use sa_core::{drive_scan, NodeMemSys};
use sa_proc::{AccessPattern, Executor, OpId, StreamOp, StreamProgram};
use sa_sim::{Addr, MachineConfig, Rng64, ScalarKind};

use crate::layout;

/// Particles per pipelined stage of the deposit and push programs.
const PIC_STAGE: usize = 2048;

/// Per-particle kernel costs: weight computation for deposit, field
/// interpolation + leapfrog update for push.
const DEPOSIT_OPS: u64 = 8;
const DEPOSIT_FLOPS: u64 = 6;
const PUSH_OPS: u64 = 12;
const PUSH_FLOPS: u64 = 10;

/// A 1-D electrostatic particle-in-cell system.
#[derive(Clone, Debug)]
pub struct PicSystem {
    /// Particle positions in `[0, box_len)`.
    pub positions: Vec<f64>,
    /// Particle velocities.
    pub velocities: Vec<f64>,
    /// Grid cells.
    pub grid: usize,
    /// Domain length.
    pub box_len: f64,
    /// Time step.
    pub dt: f64,
    /// Charge per particle (all equal; a neutralizing background is
    /// implied by subtracting the mean density in the field solve).
    pub charge: f64,
}

impl PicSystem {
    /// A two-stream instability setup: two counter-streaming beams with a
    /// small sinusoidal seed perturbation.
    ///
    /// # Panics
    ///
    /// Panics if `particles` or `grid` is zero.
    pub fn two_stream(particles: usize, grid: usize, seed: u64) -> PicSystem {
        assert!(particles > 0 && grid > 0, "empty system");
        let box_len = grid as f64;
        let mut rng = Rng64::new(seed);
        let mut positions = Vec::with_capacity(particles);
        let mut velocities = Vec::with_capacity(particles);
        for i in 0..particles {
            let x0 = (i as f64 + 0.5) * box_len / particles as f64;
            let perturb = 0.05 * (2.0 * std::f64::consts::PI * x0 / box_len).sin();
            positions.push((x0 + perturb + rng.range_f64(-0.01, 0.01)).rem_euclid(box_len));
            velocities.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        PicSystem {
            positions,
            velocities,
            grid,
            box_len,
            dt: 0.1,
            charge: box_len / particles as f64, // unit mean density
        }
    }

    /// Number of particles.
    pub fn particles(&self) -> usize {
        self.positions.len()
    }

    /// Cell width.
    pub fn dx(&self) -> f64 {
        self.box_len / self.grid as f64
    }

    /// The CIC deposit of one particle: `(left cell, right cell, left
    /// weight, right weight)`, periodic.
    fn cic(&self, x: f64) -> (usize, usize, f64, f64) {
        let xi = x / self.dx();
        let left = xi.floor() as usize % self.grid;
        let frac = xi - xi.floor();
        ((left) % self.grid, (left + 1) % self.grid, 1.0 - frac, frac)
    }

    /// Scalar reference charge deposition.
    pub fn deposit_reference(&self) -> Vec<f64> {
        let mut rho = vec![0.0; self.grid];
        for &x in &self.positions {
            let (l, r, wl, wr) = self.cic(x);
            rho[l] += self.charge * wl;
            rho[r] += self.charge * wr;
        }
        rho
    }

    /// Periodic field solve: `E[i] = Σ_{j≤i} (ρ[j] − ρ̄)·dx`, gauge-fixed
    /// to zero mean.
    pub fn solve_field(&self, rho: &[f64]) -> Vec<f64> {
        let mean = rho.iter().sum::<f64>() / self.grid as f64;
        let mut e = Vec::with_capacity(self.grid);
        let mut acc = 0.0;
        for &r in rho {
            acc += (r - mean) * self.dx();
            e.push(acc);
        }
        let e_mean = e.iter().sum::<f64>() / self.grid as f64;
        for v in &mut e {
            *v -= e_mean;
        }
        e
    }

    /// CIC interpolation of the field at a particle.
    fn field_at(&self, e: &[f64], x: f64) -> f64 {
        let (l, r, wl, wr) = self.cic(x);
        e[l] * wl + e[r] * wr
    }

    /// Advance one leapfrog step functionally (reference dynamics).
    pub fn step_reference(&mut self) {
        let rho = self.deposit_reference();
        let e = self.solve_field(&rho);
        for i in 0..self.positions.len() {
            let f = self.field_at(&e, self.positions[i]);
            self.velocities[i] -= f * self.dt; // negative charge species
            self.positions[i] =
                (self.positions[i] + self.velocities[i] * self.dt).rem_euclid(self.box_len);
        }
    }

    /// The scatter-add stream of the deposit: `(cell indices, weighted
    /// charges)`, two entries per particle.
    pub fn deposit_stream(&self) -> (Vec<u64>, Vec<f64>) {
        let mut idx = Vec::with_capacity(2 * self.particles());
        let mut val = Vec::with_capacity(2 * self.particles());
        for &x in &self.positions {
            let (l, r, wl, wr) = self.cic(x);
            idx.push(l as u64);
            val.push(self.charge * wl);
            idx.push(r as u64);
            val.push(self.charge * wr);
        }
        (idx, val)
    }

    /// Total charge (conserved by every deposit implementation).
    pub fn total_charge(&self) -> f64 {
        self.charge * self.particles() as f64
    }
}

/// Timing breakdown of one machine-executed PIC step.
#[derive(Debug)]
pub struct PicStepRun {
    /// Total cycles for the step.
    pub cycles: u64,
    /// Deposit (scatter-add) phase cycles.
    pub deposit_cycles: u64,
    /// Field-solve (scan) phase cycles.
    pub field_cycles: u64,
    /// Gather/push phase cycles.
    pub push_cycles: u64,
    /// The charge density the machine computed.
    pub rho: Vec<f64>,
    /// The field the machine computed.
    pub field: Vec<f64>,
}

impl PicStepRun {
    /// Execution time in microseconds at 1 GHz.
    pub fn micros(&self) -> f64 {
        self.cycles as f64 / 1e3
    }
}

/// Execute one PIC step's three phases on the simulated machine with
/// hardware scatter-add and the hardware scan engine.
pub fn run_step_hw(cfg: &MachineConfig, sys: &PicSystem) -> PicStepRun {
    // Phase 1: deposit (gather positions, weight kernel, scatter-add rho).
    let (idx, val) = sys.deposit_stream();
    let n = sys.particles();
    let mut prog = StreamProgram::new();
    let mut prev: Option<OpId> = None;
    let mut start = 0usize;
    while start < n {
        let end = (start + PIC_STAGE).min(n);
        let p = (end - start) as u64;
        let deps: Vec<OpId> = prev.into_iter().collect();
        let g = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT_BASE + start as u64,
                n: p,
            }),
            &deps,
        );
        prev = Some(g);
        let k = prog.add(
            StreamOp::kernel("cic-weights", p, DEPOSIT_FLOPS, DEPOSIT_OPS, 4),
            &[g],
        );
        prog.add(
            StreamOp::scatter_add_f64(
                AccessPattern::Indexed {
                    base_word: layout::RESULT_BASE,
                    indices: idx[2 * start..2 * end].to_vec(),
                },
                &val[2 * start..2 * end],
            ),
            &[k],
        );
        start = end;
    }
    let mut node = NodeMemSys::new(*cfg, 0, false);
    node.store_mut()
        .load_f64(Addr::from_word_index(layout::INPUT_BASE), &sys.positions);
    let dep = Executor::new(*cfg).run(&prog, &mut node);
    let rho = node
        .store()
        .extract_f64(Addr::from_word_index(layout::RESULT_BASE), sys.grid);

    // Phase 2: field solve — scan of (rho - mean)·dx on the scan engine,
    // then the (scalar, 2-word) gauge fix.
    let mean = rho.iter().sum::<f64>() / sys.grid as f64;
    let integrand: Vec<u64> = rho
        .iter()
        .map(|&r| ((r - mean) * sys.dx()).to_bits())
        .collect();
    let scan = drive_scan(cfg, &integrand, ScalarKind::F64);
    let mut field = scan.prefix_f64();
    let e_mean = field.iter().sum::<f64>() / sys.grid as f64;
    for v in &mut field {
        *v -= e_mean;
    }

    // Phase 3: push — gather both field samples per particle + kernel +
    // store new positions/velocities.
    let mut prog = StreamProgram::new();
    let mut prev: Option<OpId> = None;
    let mut field_idx = Vec::with_capacity(2 * n);
    for &x in &sys.positions {
        let (l, r, _, _) = sys.cic(x);
        field_idx.push(l as u64);
        field_idx.push(r as u64);
    }
    let mut start = 0usize;
    while start < n {
        let end = (start + PIC_STAGE).min(n);
        let p = (end - start) as u64;
        let deps: Vec<OpId> = prev.into_iter().collect();
        let g_pos = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT_BASE + start as u64,
                n: p,
            }),
            &deps,
        );
        prev = Some(g_pos);
        let g_field = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: layout::INPUT2_BASE,
                indices: field_idx[2 * start..2 * end].to_vec(),
            }),
            &[g_pos],
        );
        let k = prog.add(
            StreamOp::kernel("leapfrog", p, PUSH_FLOPS, PUSH_OPS, 6),
            &[g_field],
        );
        // New positions and velocities stream back out.
        prog.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: layout::SCRATCH_BASE + 2 * start as u64,
                    n: 2 * p,
                },
                vec![0u64; 2 * (end - start)],
            ),
            &[k],
        );
        start = end;
    }
    let mut node = NodeMemSys::new(*cfg, 0, false);
    node.store_mut()
        .load_f64(Addr::from_word_index(layout::INPUT_BASE), &sys.positions);
    node.store_mut()
        .load_f64(Addr::from_word_index(layout::INPUT2_BASE), &field);
    let push = Executor::new(*cfg).run(&prog, &mut node);

    PicStepRun {
        cycles: dep.cycles + scan.cycles + push.cycles,
        deposit_cycles: dep.cycles,
        field_cycles: scan.cycles,
        push_cycles: push.cycles,
        rho,
        field,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn deposit_conserves_charge() {
        let sys = PicSystem::two_stream(5000, 64, 1);
        let rho = sys.deposit_reference();
        let total: f64 = rho.iter().sum();
        assert!(
            (total - sys.total_charge()).abs() < 1e-9 * sys.total_charge(),
            "CIC deposit must conserve charge: {total} vs {}",
            sys.total_charge()
        );
    }

    #[test]
    fn field_is_periodic_and_gauge_fixed() {
        let sys = PicSystem::two_stream(2000, 32, 2);
        let rho = sys.deposit_reference();
        let e = sys.solve_field(&rho);
        // Net charge is zero after background subtraction, so the field
        // closes around the ring and has zero mean.
        let mean: f64 = e.iter().sum::<f64>() / e.len() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn machine_deposit_matches_reference() {
        let sys = PicSystem::two_stream(3000, 128, 3);
        let run = run_step_hw(&cfg(), &sys);
        let reference = sys.deposit_reference();
        for (i, (a, b)) in run.rho.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "rho[{i}] = {a}, expected {b}"
            );
        }
    }

    #[test]
    fn machine_field_matches_reference() {
        let sys = PicSystem::two_stream(3000, 128, 4);
        let run = run_step_hw(&cfg(), &sys);
        let reference = sys.solve_field(&sys.deposit_reference());
        for (i, (a, b)) in run.field.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                "E[{i}] = {a}, expected {b}"
            );
        }
    }

    #[test]
    fn reference_dynamics_stay_in_the_box() {
        let mut sys = PicSystem::two_stream(1000, 64, 5);
        for _ in 0..20 {
            sys.step_reference();
        }
        assert!(sys
            .positions
            .iter()
            .all(|&x| (0.0..sys.box_len).contains(&x)));
        // Charge is still conserved after the particles move.
        let total: f64 = sys.deposit_reference().iter().sum();
        assert!((total - sys.total_charge()).abs() < 1e-9 * sys.total_charge());
    }

    #[test]
    fn two_stream_instability_grows() {
        // The physics sanity check: counter-streaming beams feed energy
        // into the field; after some steps the field energy must exceed
        // its seed value.
        let mut sys = PicSystem::two_stream(4000, 64, 6);
        let energy = |s: &PicSystem| -> f64 {
            let e = s.solve_field(&s.deposit_reference());
            e.iter().map(|v| v * v).sum()
        };
        let start = energy(&sys);
        for _ in 0..60 {
            sys.step_reference();
        }
        let end = energy(&sys);
        assert!(
            end > 2.0 * start,
            "two-stream field energy should grow: {start:.3e} → {end:.3e}"
        );
    }

    #[test]
    fn step_timing_breakdown_adds_up() {
        let sys = PicSystem::two_stream(2000, 64, 7);
        let run = run_step_hw(&cfg(), &sys);
        assert_eq!(
            run.cycles,
            run.deposit_cycles + run.field_cycles + run.push_cycles
        );
        assert!(run.micros() > 0.0);
    }
}
