//! Molecular dynamics: the non-bonded force kernel on water (§4.1,
//! Figure 10).
//!
//! "We use the non-bonded force calculation kernel of GROMACS. This kernel
//! calculates the interaction forces of water, and our simulation was
//! performed on a sample of 903 water molecules for a single time-step."
//!
//! The paper's GROMACS input is not available; [`WaterSystem::generate`]
//! builds an equivalent box: 903 SPC/E-like water molecules (2,709 sites) at
//! liquid density with periodic boundaries, a cell-list neighbor search, and
//! a cutoff calibrated so the scatter-add reference trace has the length the
//! paper reports for the multi-node experiments ("GROMACS uses the first
//! 590K references which span 8,192 unique indices" — 2,709 sites × 3 force
//! components = 8,127 unique force words).
//!
//! Three program variants match Figure 10:
//!
//! * **no scatter-add** — "doubling the amount of computation, and not
//!   taking advantage of the fact that the force exerted by one atom on a
//!   second atom is equal [and opposite]": each molecule accumulates its own
//!   force over its full neighbor list, privately, then stores it;
//! * **software scatter-add** — forces computed once per pair, contributions
//!   buffered, then summed by the batched sort + segmented scan baseline;
//! * **hardware scatter-add** — forces computed once per pair and
//!   scatter-added directly into the force array.

use sa_core::NodeMemSys;
use sa_proc::{AccessPattern, ExecReport, Executor, OpId, StreamOp, StreamProgram};
use sa_sim::{Addr, MachineConfig, Rng64};
use sa_sw::{build_sort_scan, SortScanLayout, DEFAULT_BATCH};

use crate::layout;

/// Molecule count of the paper's sample.
pub const PAPER_MOLECULES: usize = 903;
/// Sites per water molecule (O, H, H).
pub const SITES: usize = 3;

/// SPC/E-like parameters (kJ/mol, nm, elementary charges).
const LJ_EPSILON: f64 = 0.650;
const LJ_SIGMA: f64 = 0.3166;
const Q_O: f64 = -0.8476;
const Q_H: f64 = 0.4238;
/// Coulomb constant in kJ·mol⁻¹·nm·e⁻².
const KE: f64 = 138.935_485;
/// O–H bond length (nm).
const R_OH: f64 = 0.1;

/// FP cost of one site-site interaction: minimum-image wrap, distance,
/// Newton-iterated inverse square root, Lennard-Jones + Coulomb with the
/// usual shift/switch corrections, and the force vector update. Calibrated
/// so the paper-scale run performs ≈30M FP operations, matching Figure 10's
/// hardware-scatter-add bar.
const FLOPS_PER_SITE_PAIR: u64 = 100;
/// Kernel cost per molecule pair: nine site-site interactions plus the
/// accumulation into six site-force vectors (54 adds).
const FLOPS_PER_PAIR: u64 = 9 * FLOPS_PER_SITE_PAIR + 54;
const OPS_PER_PAIR: u64 = FLOPS_PER_PAIR + 40;
const SRF_WORDS_PER_PAIR: u64 = 2 + 18 + 18;
/// The duplicated-compute variant recomputes all nine interactions per
/// *directed* pair but only accumulates its own molecule's three site
/// forces (27 adds) — "doubling the amount of computation" overall.
const FLOPS_PER_VISIT: u64 = 9 * FLOPS_PER_SITE_PAIR + 27;
const OPS_PER_VISIT: u64 = FLOPS_PER_VISIT + 40;

/// Molecule pairs per pipelined stage.
pub const PAIR_STAGE: usize = 512;

/// A box of water molecules with a built neighbor list.
#[derive(Clone, Debug)]
pub struct WaterSystem {
    /// Site positions, `molecules × SITES` entries of `[x, y, z]` (nm).
    pub positions: Vec<[f64; 3]>,
    /// Site charges.
    pub charges: Vec<f64>,
    /// Cubic box edge (nm); periodic boundaries.
    pub box_len: f64,
    /// Neighbor-list cutoff on O–O distance (nm).
    pub cutoff: f64,
    /// Molecule pairs within the cutoff (each pair once, `a < b`).
    pub pairs: Vec<(u32, u32)>,
}

impl WaterSystem {
    /// Generate the paper-scale box (903 molecules).
    pub fn paper_scale(seed: u64) -> WaterSystem {
        WaterSystem::generate(PAPER_MOLECULES, seed)
    }

    /// Generate `n_molecules` of water at liquid density (≈33.3 nm⁻³) with
    /// a cutoff chosen to give roughly 36 neighbors per molecule — which at
    /// paper scale yields the ≈590 K-reference scatter trace of §4.5.
    ///
    /// # Panics
    ///
    /// Panics if `n_molecules` is zero.
    pub fn generate(n_molecules: usize, seed: u64) -> WaterSystem {
        assert!(n_molecules > 0, "empty system");
        let mut rng = Rng64::new(seed);
        let density = 33.3; // molecules per nm³ (liquid water)
        let box_len = (n_molecules as f64 / density).cbrt();
        // Place O sites on a jittered grid, H sites on random orientations.
        let grid = (n_molecules as f64).cbrt().ceil() as usize;
        let a = box_len / grid as f64;
        let mut positions = Vec::with_capacity(n_molecules * SITES);
        let mut charges = Vec::with_capacity(n_molecules * SITES);
        let mut placed = 0;
        'outer: for ix in 0..grid {
            for iy in 0..grid {
                for iz in 0..grid {
                    if placed == n_molecules {
                        break 'outer;
                    }
                    let jitter = 0.2 * a;
                    let o = [
                        (ix as f64 + 0.5) * a + rng.range_f64(-jitter, jitter),
                        (iy as f64 + 0.5) * a + rng.range_f64(-jitter, jitter),
                        (iz as f64 + 0.5) * a + rng.range_f64(-jitter, jitter),
                    ];
                    positions.push(o);
                    charges.push(Q_O);
                    for _ in 0..2 {
                        let dir = random_unit(&mut rng);
                        positions.push([
                            o[0] + R_OH * dir[0],
                            o[1] + R_OH * dir[1],
                            o[2] + R_OH * dir[2],
                        ]);
                        charges.push(Q_H);
                    }
                    placed += 1;
                }
            }
        }
        // Cutoff for ~36 neighbors/molecule: (4/3)π r³ ρ = 72 pairs·2/n.
        let target_neighbors = 72.0;
        let cutoff = (target_neighbors / (density * 4.0 / 3.0 * std::f64::consts::PI)).cbrt();
        let mut sys = WaterSystem {
            positions,
            charges,
            box_len,
            cutoff,
            pairs: Vec::new(),
        };
        sys.pairs = sys.build_pairs_cell_list();
        sys
    }

    /// Number of molecules.
    pub fn molecules(&self) -> usize {
        self.positions.len() / SITES
    }

    /// Number of interaction sites.
    pub fn sites(&self) -> usize {
        self.positions.len()
    }

    /// Minimum-image displacement from site `i` to site `j`.
    fn min_image(&self, i: usize, j: usize) -> [f64; 3] {
        let mut d = [0.0; 3];
        for (c, out) in d.iter_mut().enumerate() {
            let mut x = self.positions[j][c] - self.positions[i][c];
            x -= self.box_len * (x / self.box_len).round();
            *out = x;
        }
        d
    }

    /// Build the molecule-pair list by brute force (reference for tests).
    pub fn build_pairs_brute(&self) -> Vec<(u32, u32)> {
        let n = self.molecules();
        let c2 = self.cutoff * self.cutoff;
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let d = self.min_image(a * SITES, b * SITES);
                if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < c2 {
                    pairs.push((a as u32, b as u32));
                }
            }
        }
        pairs
    }

    /// Build the molecule-pair list with a periodic cell list (O(n)).
    pub fn build_pairs_cell_list(&self) -> Vec<(u32, u32)> {
        let n = self.molecules();
        let cells_per_dim = ((self.box_len / self.cutoff).floor() as usize).max(1);
        let cell_len = self.box_len / cells_per_dim as f64;
        let cell_of = |p: [f64; 3]| -> [usize; 3] {
            let mut c = [0usize; 3];
            for k in 0..3 {
                let mut x = p[k] % self.box_len;
                if x < 0.0 {
                    x += self.box_len;
                }
                c[k] = ((x / cell_len) as usize).min(cells_per_dim - 1);
            }
            c
        };
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); cells_per_dim.pow(3)];
        let flat = |c: [usize; 3]| (c[0] * cells_per_dim + c[1]) * cells_per_dim + c[2];
        for m in 0..n {
            cells[flat(cell_of(self.positions[m * SITES]))].push(m as u32);
        }
        let c2 = self.cutoff * self.cutoff;
        let mut pairs = Vec::new();
        let offsets: Vec<i64> = if cells_per_dim >= 3 {
            vec![-1, 0, 1]
        } else {
            // Tiny boxes: every cell is a neighbor of every other.
            (0..cells_per_dim as i64).collect()
        };
        for cx in 0..cells_per_dim {
            for cy in 0..cells_per_dim {
                for cz in 0..cells_per_dim {
                    let home = flat([cx, cy, cz]);
                    for &dx in &offsets {
                        for &dy in &offsets {
                            for &dz in &offsets {
                                let nx = (cx as i64 + dx).rem_euclid(cells_per_dim as i64) as usize;
                                let ny = (cy as i64 + dy).rem_euclid(cells_per_dim as i64) as usize;
                                let nz = (cz as i64 + dz).rem_euclid(cells_per_dim as i64) as usize;
                                let other = flat([nx, ny, nz]);
                                if other < home {
                                    continue;
                                }
                                for &a in &cells[home] {
                                    for &b in &cells[other] {
                                        if home == other && b <= a {
                                            continue;
                                        }
                                        let d =
                                            self.min_image(a as usize * SITES, b as usize * SITES);
                                        if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < c2 {
                                            pairs.push((a.min(b), a.max(b)));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// The six per-site force contributions of one molecule pair
    /// (3 sites of `a` then 3 sites of `b`), each a 3-vector.
    fn pair_forces(&self, a: u32, b: u32) -> [[f64; 3]; 6] {
        let mut out = [[0.0; 3]; 6];
        for i in 0..SITES {
            let si = a as usize * SITES + i;
            for j in 0..SITES {
                let sj = b as usize * SITES + j;
                let d = self.min_image(si, sj); // from si to sj
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                let inv_r2 = 1.0 / r2;
                // Coulomb: f = ke·qi·qj / r³ · d (repulsive for like signs).
                let mut scalar = -KE * self.charges[si] * self.charges[sj] * inv_r2 * inv_r2.sqrt();
                // Lennard-Jones on the O–O pair only.
                if i == 0 && j == 0 {
                    let sr2 = LJ_SIGMA * LJ_SIGMA * inv_r2;
                    let sr6 = sr2 * sr2 * sr2;
                    // f(r)/r = 24ε(2·sr¹² − sr⁶)/r².
                    scalar -= 24.0 * LJ_EPSILON * (2.0 * sr6 * sr6 - sr6) * inv_r2;
                }
                // scalar · d is the force on sj; −scalar · d on si.
                for c in 0..3 {
                    out[SITES + j][c] += scalar * d[c];
                    out[i][c] -= scalar * d[c];
                }
            }
        }
        out
    }

    /// Reference forces: one pass over the pair list, Newton's third law.
    pub fn reference_forces(&self) -> Vec<[f64; 3]> {
        let mut f = vec![[0.0; 3]; self.sites()];
        for &(a, b) in &self.pairs {
            let pf = self.pair_forces(a, b);
            for s in 0..SITES {
                for c in 0..3 {
                    f[a as usize * SITES + s][c] += pf[s][c];
                    f[b as usize * SITES + s][c] += pf[SITES + s][c];
                }
            }
        }
        f
    }

    /// The scatter-add reference trace: for each pair, the 18 force-word
    /// indices it updates (site × 3 + component). At paper scale this is the
    /// ≈590 K-reference trace over 8,127 unique indices of §4.5.
    pub fn scatter_trace(&self) -> Vec<u64> {
        let mut trace = Vec::with_capacity(self.pairs.len() * 18);
        for &(a, b) in &self.pairs {
            for s in 0..SITES {
                for c in 0..3 {
                    trace.push((a as u64 * SITES as u64 + s as u64) * 3 + c as u64);
                }
            }
            for s in 0..SITES {
                for c in 0..3 {
                    trace.push((b as u64 * SITES as u64 + s as u64) * 3 + c as u64);
                }
            }
        }
        trace
    }

    /// The force contributions matching [`WaterSystem::scatter_trace`].
    pub fn contributions(&self) -> Vec<f64> {
        let mut vals = Vec::with_capacity(self.pairs.len() * 18);
        for &(a, b) in &self.pairs {
            let pf = self.pair_forces(a, b);
            for sf in pf {
                vals.extend_from_slice(&sf);
            }
        }
        vals
    }
}

fn random_unit(rng: &mut Rng64) -> [f64; 3] {
    loop {
        let v = [
            rng.range_f64(-1.0, 1.0),
            rng.range_f64(-1.0, 1.0),
            rng.range_f64(-1.0, 1.0),
        ];
        let n2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        if n2 > 1e-4 && n2 <= 1.0 {
            let n = n2.sqrt();
            return [v[0] / n, v[1] / n, v[2] / n];
        }
    }
}

/// A timed MD run.
#[derive(Debug)]
pub struct MdRun {
    /// Executor report (cycles, FP ops, memory references).
    pub report: ExecReport,
    /// Forces extracted from simulated memory, one 3-vector per site.
    pub forces: Vec<[f64; 3]>,
}

fn extract_forces(node: &NodeMemSys, sites: usize) -> Vec<[f64; 3]> {
    let flat = node
        .store()
        .extract_f64(Addr::from_word_index(layout::RESULT_BASE), sites * 3);
    flat.chunks(3).map(|c| [c[0], c[1], c[2]]).collect()
}

/// Shared compute pipeline over molecule pairs; `sink` emits each stage's
/// output op (scatter-add, buffer write, or nothing for no-SA which uses
/// its own builder).
fn build_pair_stages<F>(sys: &WaterSystem, mut sink: F) -> StreamProgram
where
    F: FnMut(&mut StreamProgram, OpId, usize, usize),
{
    let mut prog = StreamProgram::new();
    let mut prev_gather: Option<OpId> = None;
    let n_pairs = sys.pairs.len();
    let mut start = 0usize;
    while start < n_pairs {
        let end = (start + PAIR_STAGE).min(n_pairs);
        let p = (end - start) as u64;
        let deps: Vec<OpId> = prev_gather.into_iter().collect();
        // Pair list: 2 words per pair.
        let g_list = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT2_BASE + 2 * start as u64,
                n: 2 * p,
            }),
            &deps,
        );
        prev_gather = Some(g_list);
        // Positions of both molecules: 18 words per pair (indexed).
        let mut pos_idx = Vec::with_capacity((end - start) * 18);
        for &(a, b) in &sys.pairs[start..end] {
            for m in [a, b] {
                for s in 0..SITES {
                    for c in 0..3 {
                        pos_idx.push((m as u64 * SITES as u64 + s as u64) * 3 + c as u64);
                    }
                }
            }
        }
        let g_pos = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: layout::INPUT_BASE,
                indices: pos_idx,
            }),
            &[g_list],
        );
        let kern = prog.add(
            StreamOp::kernel(
                "water-nonbonded",
                p,
                FLOPS_PER_PAIR,
                OPS_PER_PAIR,
                SRF_WORDS_PER_PAIR,
            ),
            &[g_pos],
        );
        sink(&mut prog, kern, start, end);
        start = end;
    }
    prog
}

fn fresh_node(cfg: &MachineConfig, sys: &WaterSystem) -> NodeMemSys {
    let mut node = NodeMemSys::new(*cfg, 0, false);
    let flat: Vec<f64> = sys.positions.iter().flatten().copied().collect();
    node.store_mut()
        .load_f64(Addr::from_word_index(layout::INPUT_BASE), &flat);
    let pair_words: Vec<i64> = sys
        .pairs
        .iter()
        .flat_map(|&(a, b)| [a as i64, b as i64])
        .collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::INPUT2_BASE), &pair_words);
    node
}

/// Run the hardware scatter-add variant: compute each pair once and
/// scatter-add its 18 force contributions.
pub fn run_hw(cfg: &MachineConfig, sys: &WaterSystem) -> MdRun {
    let trace = sys.scatter_trace();
    let contrib = sys.contributions();
    let prog = build_pair_stages(sys, |prog, kern, start, end| {
        let lo = start * 18;
        let hi = end * 18;
        prog.add(
            StreamOp::scatter_add_f64(
                AccessPattern::Indexed {
                    base_word: layout::RESULT_BASE,
                    indices: trace[lo..hi].to_vec(),
                },
                &contrib[lo..hi],
            ),
            &[kern],
        );
    });
    let mut node = fresh_node(cfg, sys);
    let report = Executor::new(*cfg).run(&prog, &mut node);
    let forces = extract_forces(&node, sys.sites());
    MdRun { report, forces }
}

/// Run the software scatter-add variant: contributions buffered, then
/// summed by batched sort + segmented scan.
pub fn run_sw(cfg: &MachineConfig, sys: &WaterSystem, batch: usize) -> MdRun {
    let trace = sys.scatter_trace();
    let contrib = sys.contributions();
    let mut last_write: Option<OpId> = None;
    let mut prog = build_pair_stages(sys, |prog, kern, start, end| {
        let lo = start * 18;
        let hi = end * 18;
        let w = prog.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: layout::SCRATCH2_BASE + lo as u64,
                    n: (hi - lo) as u64,
                },
                contrib[lo..hi].iter().map(|v| v.to_bits()).collect(),
            ),
            &[kern],
        );
        last_write = Some(w);
    });
    let kernel =
        sa_core::ScatterKernel::superposition(layout::RESULT_BASE, trace.clone(), &contrib);
    let sw = build_sort_scan(
        &kernel,
        &SortScanLayout {
            idx_base: layout::SCRATCH_BASE,
            val_base: Some(layout::SCRATCH2_BASE),
        },
        batch,
    );
    let offset = prog.len();
    let barrier = last_write.expect("system has pairs");
    for (_, op, deps) in sw.iter() {
        let mut new_deps: Vec<OpId> = deps.iter().map(|d| d + offset).collect();
        if deps.is_empty() {
            new_deps.push(barrier);
        }
        prog.add(op.clone(), &new_deps);
    }
    let mut node = fresh_node(cfg, sys);
    let trace_i64: Vec<i64> = trace.iter().map(|&t| t as i64).collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::SCRATCH_BASE), &trace_i64);
    let report = Executor::new(*cfg).run(&prog, &mut node);
    let forces = extract_forces(&node, sys.sites());
    MdRun { report, forces }
}

/// Run the software variant at the default batch size.
pub fn run_sw_default(cfg: &MachineConfig, sys: &WaterSystem) -> MdRun {
    run_sw(cfg, sys, DEFAULT_BATCH)
}

/// Run the no-scatter-add variant: each molecule processes its *entire*
/// neighbor list (both directions — "doubling the amount of computation"),
/// accumulates its own force privately, and stores it with a plain write.
pub fn run_no_sa(cfg: &MachineConfig, sys: &WaterSystem) -> MdRun {
    // Directed pair list grouped by owning molecule.
    let n_mols = sys.molecules();
    let mut directed: Vec<Vec<u32>> = vec![Vec::new(); n_mols];
    for &(a, b) in &sys.pairs {
        directed[a as usize].push(b);
        directed[b as usize].push(a);
    }
    let dir_pairs: Vec<(u32, u32)> = (0..n_mols as u32)
        .flat_map(|m| directed[m as usize].iter().map(move |&o| (m, o)))
        .collect();

    let mut prog = StreamProgram::new();
    let mut prev_gather: Option<OpId> = None;
    let mut kernels = Vec::new();
    let mut start = 0usize;
    while start < dir_pairs.len() {
        let end = (start + PAIR_STAGE).min(dir_pairs.len());
        let p = (end - start) as u64;
        let deps: Vec<OpId> = prev_gather.into_iter().collect();
        let g_list = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT3_BASE + start as u64,
                n: p,
            }),
            &deps,
        );
        prev_gather = Some(g_list);
        let mut pos_idx = Vec::with_capacity((end - start) * 18);
        for &(m, o) in &dir_pairs[start..end] {
            for mol in [m, o] {
                for s in 0..SITES {
                    for c in 0..3 {
                        pos_idx.push((mol as u64 * SITES as u64 + s as u64) * 3 + c as u64);
                    }
                }
            }
        }
        let g_pos = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: layout::INPUT_BASE,
                indices: pos_idx,
            }),
            &[g_list],
        );
        let kern = prog.add(
            StreamOp::kernel(
                "water-nonbonded-dup",
                p,
                FLOPS_PER_VISIT,
                OPS_PER_VISIT,
                SRF_WORDS_PER_PAIR / 2,
            ),
            &[g_pos],
        );
        kernels.push(kern);
        start = end;
    }
    // One plain store of the finished force array.
    let forces = sys.reference_forces();
    let flat: Vec<u64> = forces.iter().flatten().map(|v| v.to_bits()).collect();
    prog.add(
        StreamOp::scatter(
            AccessPattern::Sequential {
                base_word: layout::RESULT_BASE,
                n: flat.len() as u64,
            },
            flat,
        ),
        &kernels,
    );

    let mut node = fresh_node(cfg, sys);
    let dir_words: Vec<i64> = dir_pairs.iter().map(|&(_, o)| o as i64).collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::INPUT3_BASE), &dir_words);
    let report = Executor::new(*cfg).run(&prog, &mut node);
    let forces = extract_forces(&node, sys.sites());
    MdRun { report, forces }
}

/// Maximum absolute force-component deviation between two force sets.
///
/// # Panics
///
/// Panics if the two sets have different lengths.
pub fn max_force_deviation(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
    assert_eq!(a.len(), b.len(), "site count mismatch");
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| (0..3).map(move |c| (x[c] - y[c]).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WaterSystem {
        WaterSystem::generate(60, 1)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn cell_list_matches_brute_force() {
        let sys = small();
        let brute = sys.build_pairs_brute();
        assert_eq!(
            sys.pairs, brute,
            "cell list must find exactly the cutoff pairs"
        );
        assert!(!sys.pairs.is_empty());
    }

    #[test]
    fn paper_scale_trace_statistics() {
        let sys = WaterSystem::paper_scale(2);
        assert_eq!(sys.molecules(), 903);
        assert_eq!(sys.sites(), 2709);
        let trace = sys.scatter_trace();
        // §4.5: ~590K references over ~8,192 unique indices.
        assert!(
            (450_000..750_000).contains(&trace.len()),
            "trace length {} should be near 590K",
            trace.len()
        );
        let unique: std::collections::HashSet<u64> = trace.iter().copied().collect();
        assert_eq!(unique.len(), 2709 * 3, "every force word is touched");
    }

    #[test]
    fn forces_sum_to_zero() {
        // Newton's third law: internal forces cancel.
        let sys = small();
        let f = sys.reference_forces();
        for c in 0..3 {
            let total: f64 = f.iter().map(|v| v[c]).sum();
            let scale: f64 = f.iter().map(|v| v[c].abs()).sum();
            assert!(
                total.abs() < 1e-9 * scale.max(1.0),
                "component {c} does not cancel: {total}"
            );
        }
    }

    #[test]
    fn hw_forces_match_reference() {
        let sys = small();
        let run = run_hw(&cfg(), &sys);
        let dev = max_force_deviation(&run.forces, &sys.reference_forces());
        assert!(dev < 1e-6, "max deviation {dev}");
    }

    #[test]
    fn sw_forces_match_reference() {
        let sys = small();
        let run = run_sw_default(&cfg(), &sys);
        let dev = max_force_deviation(&run.forces, &sys.reference_forces());
        assert!(dev < 1e-6, "max deviation {dev}");
    }

    #[test]
    fn no_sa_forces_match_reference() {
        let sys = small();
        let run = run_no_sa(&cfg(), &sys);
        let dev = max_force_deviation(&run.forces, &sys.reference_forces());
        assert!(dev < 1e-12, "no-SA stores the exact reference: {dev}");
    }

    #[test]
    fn figure10_ordering() {
        // SW ≫ no-SA > HW in cycles; no-SA does ~2× the FP work of HW.
        let sys = WaterSystem::generate(120, 3);
        let hw = run_hw(&cfg(), &sys);
        let sw = run_sw_default(&cfg(), &sys);
        let no = run_no_sa(&cfg(), &sys);
        assert!(
            sw.report.cycles > no.report.cycles,
            "SW {} should be the slowest (no-SA {})",
            sw.report.cycles,
            no.report.cycles
        );
        assert!(
            no.report.cycles > hw.report.cycles,
            "no-SA {} should be slower than HW {}",
            no.report.cycles,
            hw.report.cycles
        );
        let flop_ratio = no.report.flops() as f64 / hw.report.flops() as f64;
        assert!(
            (1.5..2.5).contains(&flop_ratio),
            "duplicated compute should double FP work: {flop_ratio:.2}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WaterSystem::generate(50, 9);
        let b = WaterSystem::generate(50, 9);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.positions[0], b.positions[0]);
    }
}
