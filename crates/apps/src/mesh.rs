//! Synthetic finite-element dataset generator.
//!
//! The paper's SpMV dataset "was extracted from cubic element discretization
//! with 20 degrees of freedom ... of a 1916 tetrahedra finite-element model.
//! The matrix size is 9,978 × 9,978 and it contains an average of 44.26
//! non-zeros per row" (§4.1). That model is not available, so this module
//! generates a synthetic mesh matched on every statistic the evaluation
//! depends on:
//!
//! * element count (1916) and DOFs per element (20) — these set the EBE
//!   compute volume (1916 × 20 × 20 dense MACs) and the scatter-add trace
//!   length (1916 × 20 = 38,320 references, the paper's "38K references
//!   over 10,240 indices" for the SPAS multi-node trace);
//! * unknown count (9,978) and average row population (~44 non-zeros) —
//!   these set the CSR compute and memory volume.
//!
//! Elements select their DOFs from overlapping windows of the DOF space
//! (spatial locality: adjacent elements share unknowns, as face-sharing
//! tetrahedra do), which produces the target row population.

use sa_sim::Rng64;

/// Default parameters matching §4.1.
pub const PAPER_ELEMENTS: usize = 1916;
/// Degrees of freedom per element (§4.1: cubic elements with 20 DOF).
pub const PAPER_DOFS_PER_ELEMENT: usize = 20;
/// Number of unknowns (§4.1: 9,978 × 9,978 matrix).
pub const PAPER_UNKNOWNS: usize = 9978;

/// A synthetic finite-element mesh: element → DOF connectivity plus one
/// dense symmetric element matrix per element.
#[derive(Clone, Debug)]
pub struct Mesh {
    /// Number of global unknowns (matrix dimension).
    pub n_dofs: usize,
    /// Per-element global DOF indices (`elements × dofs_per_element`).
    pub connectivity: Vec<Vec<u32>>,
    /// Per-element dense matrices, row-major `dofs_per_element²` each.
    pub element_matrices: Vec<Vec<f64>>,
}

impl Mesh {
    /// Generate a mesh with the paper's statistics (1916 elements, 20 DOFs
    /// each, 9,978 unknowns).
    pub fn paper_scale(seed: u64) -> Mesh {
        Mesh::generate(PAPER_ELEMENTS, PAPER_DOFS_PER_ELEMENT, PAPER_UNKNOWNS, seed)
    }

    /// Generate `elements` elements of `dofs_per_element` DOFs over
    /// `n_dofs` unknowns.
    ///
    /// Each element draws its DOFs from a window of the DOF space centred
    /// on its position in a linear element ordering; window width is chosen
    /// so neighbouring elements share roughly half their DOFs.
    ///
    /// # Panics
    ///
    /// Panics if `n_dofs < dofs_per_element` or any count is zero.
    pub fn generate(elements: usize, dofs_per_element: usize, n_dofs: usize, seed: u64) -> Mesh {
        assert!(elements > 0 && dofs_per_element > 0, "empty mesh");
        assert!(
            n_dofs >= dofs_per_element,
            "need at least {dofs_per_element} unknowns"
        );
        let mut rng = Rng64::new(seed);
        // Window width ≈ 1.5 × DOFs/element gives face-sharing-like overlap.
        let window = (dofs_per_element * 3 / 2).min(n_dofs);
        let stride = if elements > 1 {
            (n_dofs - window) as f64 / (elements - 1) as f64
        } else {
            0.0
        };
        let mut connectivity = Vec::with_capacity(elements);
        let mut element_matrices = Vec::with_capacity(elements);
        for e in 0..elements {
            let lo = (e as f64 * stride) as usize;
            // Choose dofs_per_element distinct DOFs from [lo, lo + window).
            let mut pool: Vec<u32> = (lo..lo + window).map(|d| d as u32).collect();
            rng.shuffle(&mut pool);
            let mut dofs: Vec<u32> = pool[..dofs_per_element].to_vec();
            dofs.sort_unstable();
            connectivity.push(dofs);
            // Symmetric, diagonally-dominant element matrix (as a stiffness
            // matrix would be), with deterministic random off-diagonals.
            let k = dofs_per_element;
            let mut m = vec![0.0f64; k * k];
            for i in 0..k {
                for j in i..k {
                    let v = if i == j {
                        4.0 + rng.next_f64()
                    } else {
                        rng.range_f64(-0.5, 0.5)
                    };
                    m[i * k + j] = v;
                    m[j * k + i] = v;
                }
            }
            element_matrices.push(m);
        }
        Mesh {
            n_dofs,
            connectivity,
            element_matrices,
        }
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.connectivity.len()
    }

    /// DOFs per element.
    pub fn dofs_per_element(&self) -> usize {
        self.connectivity.first().map_or(0, Vec::len)
    }

    /// Total element-DOF incidences — the length of the EBE scatter-add
    /// trace (38,320 at paper scale).
    pub fn incidences(&self) -> usize {
        self.connectivity.iter().map(Vec::len).sum()
    }

    /// A deterministic test vector for multiplications.
    pub fn test_vector(&self, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::new(seed);
        (0..self.n_dofs).map(|_| rng.range_f64(-1.0, 1.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_scale_statistics() {
        let mesh = Mesh::paper_scale(1);
        assert_eq!(mesh.elements(), 1916);
        assert_eq!(mesh.dofs_per_element(), 20);
        assert_eq!(mesh.n_dofs, 9978);
        assert_eq!(mesh.incidences(), 38_320, "the SPAS trace length");
    }

    #[test]
    fn dofs_are_distinct_and_in_range() {
        let mesh = Mesh::generate(100, 20, 600, 2);
        for dofs in &mesh.connectivity {
            let set: HashSet<u32> = dofs.iter().copied().collect();
            assert_eq!(set.len(), 20, "duplicate DOF within an element");
            for &d in dofs {
                assert!((d as usize) < 600);
            }
        }
    }

    #[test]
    fn neighbouring_elements_share_dofs() {
        let mesh = Mesh::paper_scale(3);
        let mut total_shared = 0usize;
        for e in 1..mesh.elements() {
            let a: HashSet<u32> = mesh.connectivity[e - 1].iter().copied().collect();
            let shared = mesh.connectivity[e]
                .iter()
                .filter(|d| a.contains(d))
                .count();
            total_shared += shared;
        }
        let avg = total_shared as f64 / (mesh.elements() - 1) as f64;
        assert!(
            (5.0..19.0).contains(&avg),
            "adjacent elements should share a good fraction of DOFs: {avg:.1}"
        );
    }

    #[test]
    fn element_matrices_are_symmetric() {
        let mesh = Mesh::generate(10, 8, 100, 4);
        for m in &mesh.element_matrices {
            for i in 0..8 {
                for j in 0..8 {
                    assert_eq!(m[i * 8 + j], m[j * 8 + i]);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Mesh::paper_scale(7);
        let b = Mesh::paper_scale(7);
        assert_eq!(a.connectivity, b.connectivity);
        assert_eq!(a.element_matrices[0], b.element_matrices[0]);
    }

    #[test]
    #[should_panic(expected = "unknowns")]
    fn too_few_dofs_rejected() {
        let _ = Mesh::generate(5, 20, 10, 1);
    }
}
