//! Sparse matrix–vector multiply (§4.1, Figure 9): compressed sparse row
//! versus element-by-element, the latter with software or hardware
//! scatter-add.
//!
//! "The two algorithms provide different trade-offs between amount of
//! computation and memory accesses required, where EBE performs more
//! operations at reduced memory demand ... in the EBE algorithm instead of
//! performing the multiplication on one large sparse-matrix, the calculation
//! is performed by computing many small dense matrix multiplications where
//! each dense matrix corresponds to an element."

use std::collections::BTreeMap;

use sa_core::NodeMemSys;
use sa_proc::{AccessPattern, ExecReport, Executor, OpId, StreamOp, StreamProgram};
use sa_sim::{Addr, MachineConfig};
use sa_sw::{build_sort_scan, SortScanLayout, DEFAULT_BATCH};

use crate::layout;
use crate::mesh::Mesh;

/// Elements per pipelined stage of the EBE programs.
pub const EBE_STAGE: usize = 128;
/// Non-zeros per pipelined stage of the CSR program.
pub const CSR_STAGE: usize = 8192;

/// CSR kernel cost per non-zero: multiply-add plus row-segment handling.
const CSR_FLOPS_PER_NNZ: u64 = 2;
const CSR_OPS_PER_NNZ: u64 = 4;
const CSR_SRF_WORDS_PER_NNZ: u64 = 5;

/// A compressed-sparse-row matrix.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Dimension (square).
    pub n: usize,
    /// Row start offsets (`n + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column index per non-zero.
    pub cols: Vec<u32>,
    /// Value per non-zero.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Assemble the global matrix `A = Σ_e P_eᵀ A_e P_e` from a mesh.
    pub fn from_mesh(mesh: &Mesh) -> Csr {
        let mut rows: Vec<BTreeMap<u32, f64>> = vec![BTreeMap::new(); mesh.n_dofs];
        let k = mesh.dofs_per_element();
        for (dofs, m) in mesh.connectivity.iter().zip(&mesh.element_matrices) {
            for i in 0..k {
                let r = dofs[i] as usize;
                for j in 0..k {
                    *rows[r].entry(dofs[j]).or_insert(0.0) += m[i * k + j];
                }
            }
        }
        let mut row_ptr = Vec::with_capacity(mesh.n_dofs + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for row in rows {
            for (c, v) in row {
                cols.push(c);
                vals.push(v);
            }
            row_ptr.push(cols.len());
        }
        Csr {
            n: mesh.n_dofs,
            row_ptr,
            cols,
            vals,
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Average non-zeros per row (the paper's 44.26 at paper scale).
    pub fn avg_row_nnz(&self) -> f64 {
        self.nnz() as f64 / self.n as f64
    }

    /// Reference multiply: `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[i] * x[self.cols[i] as usize];
            }
            *out = acc;
        }
        y
    }
}

/// The element-by-element form of the mesh's operator.
#[derive(Clone, Debug)]
pub struct Ebe<'a> {
    mesh: &'a Mesh,
}

impl<'a> Ebe<'a> {
    /// Wrap a mesh for element-by-element multiplication.
    pub fn new(mesh: &'a Mesh) -> Ebe<'a> {
        Ebe { mesh }
    }

    /// Per-element contributions `c_e = A_e · x_e`, flattened in element
    /// order — the values of the scatter-add stream.
    pub fn contributions(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mesh.n_dofs, "dimension mismatch");
        let k = self.mesh.dofs_per_element();
        let mut out = Vec::with_capacity(self.mesh.incidences());
        for (dofs, m) in self
            .mesh
            .connectivity
            .iter()
            .zip(&self.mesh.element_matrices)
        {
            for i in 0..k {
                let mut acc = 0.0;
                for j in 0..k {
                    acc += m[i * k + j] * x[dofs[j] as usize];
                }
                out.push(acc);
            }
        }
        out
    }

    /// The scatter-add index trace: for every element, its global DOFs in
    /// order (38,320 references over the mesh's unknowns at paper scale —
    /// the SPAS trace of §4.5).
    pub fn scatter_trace(&self) -> Vec<u64> {
        self.mesh
            .connectivity
            .iter()
            .flat_map(|dofs| dofs.iter().map(|&d| u64::from(d)))
            .collect()
    }

    /// Reference multiply via element superposition.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.mesh.n_dofs];
        let contributions = self.contributions(x);
        for (idx, c) in self.scatter_trace().iter().zip(contributions) {
            y[*idx as usize] += c;
        }
        y
    }
}

/// A timed SpMV run.
#[derive(Debug)]
pub struct SpmvRun {
    /// Executor report (cycles, FP ops, memory references).
    pub report: ExecReport,
    /// `y = A·x` extracted from simulated memory.
    pub y: Vec<f64>,
}

fn load_x(node: &mut NodeMemSys, x: &[f64]) {
    node.store_mut()
        .load_f64(Addr::from_word_index(layout::SCRATCH_BASE), x);
}

fn extract_y(node: &NodeMemSys, n: usize) -> Vec<f64> {
    node.store()
        .extract_f64(Addr::from_word_index(layout::RESULT_BASE), n)
}

/// Run the gather-based CSR multiply ("CSR ... is gather based and does not
/// use the scatter-add functionality").
///
/// Streams per stage: values, column indices, `x[col]` (indexed), and row
/// flags; a multiply/row-reduce kernel; a sequential store of `y`.
pub fn run_csr(cfg: &MachineConfig, csr: &Csr, x: &[f64]) -> SpmvRun {
    let y_ref = csr.multiply(x);
    let mut prog = StreamProgram::new();
    let nnz = csr.nnz();
    // Stages chain on their *gathers* (stream order on the AGs), not on the
    // kernels: the next stage's loads start while this stage computes.
    let mut prev_gather: Option<OpId> = None;
    let mut last_kernel: Option<OpId> = None;
    let mut start = 0usize;
    while start < nnz {
        let end = (start + CSR_STAGE).min(nnz);
        let b = (end - start) as u64;
        let deps: Vec<OpId> = prev_gather.into_iter().collect();
        let g_vals = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT_BASE + start as u64,
                n: b,
            }),
            &deps,
        );
        let g_cols = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT2_BASE + start as u64,
                n: b,
            }),
            &deps,
        );
        let g_x = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: layout::SCRATCH_BASE,
                indices: csr.cols[start..end].iter().map(|&c| u64::from(c)).collect(),
            }),
            &[g_cols],
        );
        let g_flags = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT3_BASE + start as u64,
                n: b,
            }),
            &deps,
        );
        let k = prog.add(
            StreamOp::kernel(
                "csr-madd-reduce",
                b,
                CSR_FLOPS_PER_NNZ,
                CSR_OPS_PER_NNZ,
                CSR_SRF_WORDS_PER_NNZ,
            ),
            &[g_vals, g_x, g_flags],
        );
        prev_gather = Some(g_vals);
        last_kernel = Some(k);
        start = end;
    }
    // Store y once all row sums are complete.
    let deps: Vec<OpId> = last_kernel.into_iter().collect();
    prog.add(
        StreamOp::scatter(
            AccessPattern::Sequential {
                base_word: layout::RESULT_BASE,
                n: csr.n as u64,
            },
            y_ref.iter().map(|v| v.to_bits()).collect(),
        ),
        &deps,
    );

    let mut node = NodeMemSys::new(*cfg, 0, false);
    load_x(&mut node, x);
    let report = Executor::new(*cfg).run(&prog, &mut node);
    let y = extract_y(&node, csr.n);
    SpmvRun { report, y }
}

/// Shared EBE compute pipeline: gathers (DOF map, `x` values, element
/// matrix) and the dense per-element matrix-vector kernel. The `sink`
/// closure appends each stage's output operation (hardware scatter-add or a
/// buffer write for the software variant).
fn build_ebe<F>(mesh: &Mesh, x: &[f64], mut sink: F) -> StreamProgram
where
    F: FnMut(&mut StreamProgram, OpId, usize, usize, &[u64], &[f64]),
{
    let ebe = Ebe::new(mesh);
    let contributions = ebe.contributions(x);
    let trace = ebe.scatter_trace();
    let k = mesh.dofs_per_element() as u64;
    let mat_words = k * k;
    let mut prog = StreamProgram::new();
    let mut prev_gather: Option<OpId> = None;
    let n_elems = mesh.elements();
    let mut start = 0usize;
    while start < n_elems {
        let end = (start + EBE_STAGE).min(n_elems);
        let e = (end - start) as u64;
        let lo = start * mesh.dofs_per_element();
        let hi = end * mesh.dofs_per_element();
        let deps: Vec<OpId> = prev_gather.into_iter().collect();
        // DOF map (element connectivity).
        let g_dofs = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT3_BASE + lo as u64,
                n: e * k,
            }),
            &deps,
        );
        prev_gather = Some(g_dofs);
        // x values at those DOFs.
        let g_x = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: layout::SCRATCH_BASE,
                indices: trace[lo..hi].to_vec(),
            }),
            &[g_dofs],
        );
        // Element matrices (dense, sequential).
        let g_mat = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT_BASE + (start as u64) * mat_words,
                n: e * mat_words,
            }),
            &deps,
        );
        // Dense k×k mat-vec per element: 2k² flops.
        let kern = prog.add(
            StreamOp::kernel(
                "ebe-dense-matvec",
                e,
                2 * k * k,
                2 * k * k,
                mat_words + 2 * k,
            ),
            &[g_x, g_mat],
        );
        sink(
            &mut prog,
            kern,
            lo,
            hi,
            &trace[lo..hi],
            &contributions[lo..hi],
        );
        start = end;
    }
    prog
}

/// Run EBE with hardware scatter-add: each element's contribution stream is
/// scatter-added straight into `y`.
pub fn run_ebe_hw(cfg: &MachineConfig, mesh: &Mesh, x: &[f64]) -> SpmvRun {
    let prog = build_ebe(mesh, x, |prog, kern, _lo, _hi, trace, contrib| {
        prog.add(
            StreamOp::scatter_add_f64(
                AccessPattern::Indexed {
                    base_word: layout::RESULT_BASE,
                    indices: trace.to_vec(),
                },
                contrib,
            ),
            &[kern],
        );
    });
    let mut node = NodeMemSys::new(*cfg, 0, false);
    load_x(&mut node, x);
    let report = Executor::new(*cfg).run(&prog, &mut node);
    let y = extract_y(&node, mesh.n_dofs);
    SpmvRun { report, y }
}

/// Run EBE with the software scatter-add: contributions are written to a
/// scratch buffer, then summed into `y` by the batched sort + segmented
/// scan baseline.
pub fn run_ebe_sw(cfg: &MachineConfig, mesh: &Mesh, x: &[f64], batch: usize) -> SpmvRun {
    let mut last_write: Option<OpId> = None;
    let mut prog = build_ebe(mesh, x, |prog, kern, lo, _hi, _trace, contrib| {
        let w = prog.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: layout::SCRATCH2_BASE + lo as u64,
                    n: contrib.len() as u64,
                },
                contrib.iter().map(|v| v.to_bits()).collect(),
            ),
            &[kern],
        );
        last_write = Some(w);
    });
    // The software scatter-add consumes the buffered contributions.
    let ebe = Ebe::new(mesh);
    let kernel = sa_core::ScatterKernel::superposition(
        layout::RESULT_BASE,
        ebe.scatter_trace(),
        &ebe.contributions(x),
    );
    let sw = build_sort_scan(
        &kernel,
        &SortScanLayout {
            idx_base: layout::INPUT2_BASE, // trace preloaded here
            val_base: Some(layout::SCRATCH2_BASE),
        },
        batch,
    );
    // Append the software phase behind the compute phase.
    let offset = prog.len();
    let barrier = last_write.expect("mesh has elements");
    for (_, op, deps) in sw.iter() {
        let mut new_deps: Vec<OpId> = deps.iter().map(|d| d + offset).collect();
        if deps.is_empty() {
            new_deps.push(barrier);
        }
        prog.add(op.clone(), &new_deps);
    }

    let mut node = NodeMemSys::new(*cfg, 0, false);
    load_x(&mut node, x);
    // Preload the index trace for the software phase's gathers.
    let trace_i64: Vec<i64> = ebe.scatter_trace().iter().map(|&t| t as i64).collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::INPUT2_BASE), &trace_i64);
    let report = Executor::new(*cfg).run(&prog, &mut node);
    let y = extract_y(&node, mesh.n_dofs);
    SpmvRun { report, y }
}

/// Run EBE-SW with the paper's optimal batch size.
pub fn run_ebe_sw_default(cfg: &MachineConfig, mesh: &Mesh, x: &[f64]) -> SpmvRun {
    run_ebe_sw(cfg, mesh, x, DEFAULT_BATCH)
}

#[cfg(test)]
fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "mismatch at {i}: {x} vs {y}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mesh() -> Mesh {
        Mesh::generate(40, 8, 160, 1)
    }

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn assembly_matches_ebe_multiply() {
        let mesh = small_mesh();
        let x = mesh.test_vector(2);
        let csr = Csr::from_mesh(&mesh);
        let y_csr = csr.multiply(&x);
        let y_ebe = Ebe::new(&mesh).multiply(&x);
        assert_close(&y_csr, &y_ebe, 1e-9);
    }

    #[test]
    fn paper_scale_row_population() {
        let mesh = Mesh::paper_scale(1);
        let csr = Csr::from_mesh(&mesh);
        let avg = csr.avg_row_nnz();
        assert!(
            (25.0..60.0).contains(&avg),
            "row population should approximate the paper's 44.26, got {avg:.2}"
        );
    }

    #[test]
    fn csr_run_is_correct_and_counts_refs() {
        let mesh = small_mesh();
        let x = mesh.test_vector(3);
        let csr = Csr::from_mesh(&mesh);
        let run = run_csr(&cfg(), &csr, &x);
        assert_close(&run.y, &csr.multiply(&x), 1e-9);
        // 4 streams of nnz plus the y store.
        assert_eq!(run.report.mem_refs(), 4 * csr.nnz() as u64 + csr.n as u64);
        assert_eq!(run.report.flops(), CSR_FLOPS_PER_NNZ * csr.nnz() as u64);
    }

    #[test]
    fn ebe_hw_run_is_correct() {
        let mesh = small_mesh();
        let x = mesh.test_vector(4);
        let run = run_ebe_hw(&cfg(), &mesh, &x);
        assert_close(&run.y, &Ebe::new(&mesh).multiply(&x), 1e-9);
        // Per element: k DOF words + k x words + k² matrix words + k adds.
        let k = mesh.dofs_per_element() as u64;
        let e = mesh.elements() as u64;
        assert_eq!(run.report.mem_refs(), e * (3 * k + k * k));
        assert_eq!(run.report.flops(), e * 2 * k * k);
    }

    #[test]
    fn ebe_sw_run_is_correct() {
        let mesh = small_mesh();
        let x = mesh.test_vector(5);
        let run = run_ebe_sw_default(&cfg(), &mesh, &x);
        assert_close(&run.y, &Ebe::new(&mesh).multiply(&x), 1e-9);
    }

    #[test]
    fn ebe_sw_costs_more_than_hw() {
        // Figure 9: EBE-SW has more cycles, more FP ops, and more memory
        // references than EBE-HW.
        let mesh = Mesh::generate(200, 12, 800, 6);
        let x = mesh.test_vector(7);
        let hw = run_ebe_hw(&cfg(), &mesh, &x);
        let sw = run_ebe_sw_default(&cfg(), &mesh, &x);
        assert!(sw.report.cycles > hw.report.cycles);
        assert!(sw.report.flops() > hw.report.flops());
        assert!(sw.report.mem_refs() > hw.report.mem_refs());
    }

    #[test]
    fn scatter_trace_matches_incidences() {
        let mesh = small_mesh();
        let trace = Ebe::new(&mesh).scatter_trace();
        assert_eq!(trace.len(), mesh.incidences());
        assert!(trace.iter().all(|&t| (t as usize) < mesh.n_dofs));
    }
}
