//! Histogram equalization — the signal/image-processing motivation of the
//! paper's introduction ("histograms are commonly used in signal and image
//! processing applications to perform equalization and active
//! thresholding").
//!
//! The classic pipeline, each stage on the simulated machine:
//!
//! 1. **histogram** of the pixel levels — a scatter-add (§1's example);
//! 2. **cumulative distribution** over the 256 bins — a prefix sum, run on
//!    the hardware scan engine of [`sa_core::scan`] (the §5 extension) or
//!    as a software kernel;
//! 3. **remap** — build the equalization lookup table and gather-map every
//!    pixel through it.
//!
//! Both an all-hardware and an all-software variant are provided, checked
//! against a scalar reference.

use sa_core::{drive_scan, NodeMemSys};
use sa_proc::{AccessPattern, ExecReport, Executor, StreamOp, StreamProgram};
use sa_sim::{Addr, MachineConfig, Rng64, ScalarKind};
use sa_sw::{build_sort_scan, SortScanLayout, DEFAULT_BATCH};

use crate::histogram::HW_STAGE;
use crate::layout;

/// Grey levels.
pub const LEVELS: usize = 256;

/// A synthetic low-contrast greyscale image.
#[derive(Clone, Debug)]
pub struct GreyImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel levels in `0..LEVELS`.
    pub pixels: Vec<u8>,
}

impl GreyImage {
    /// Generate a low-contrast image (levels concentrated in a narrow band,
    /// so equalization visibly stretches the range): a smooth gradient plus
    /// film-grain noise.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> GreyImage {
        assert!(width > 0 && height > 0, "empty image");
        let mut rng = Rng64::new(seed);
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                // Gradient across the diagonal, squeezed into [96, 160).
                let g = (x + y) as f64 / (width + height) as f64;
                let noise = rng.range_f64(-8.0, 8.0);
                let level = (96.0 + g * 64.0 + noise).clamp(0.0, 255.0);
                pixels.push(level as u8);
            }
        }
        GreyImage {
            width,
            height,
            pixels,
        }
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Whether the image has no pixels.
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Histogram of the grey levels.
    pub fn histogram(&self) -> Vec<i64> {
        let mut h = vec![0i64; LEVELS];
        for &p in &self.pixels {
            h[p as usize] += 1;
        }
        h
    }

    /// The level range actually used (min, max).
    pub fn dynamic_range(&self) -> (u8, u8) {
        let min = self.pixels.iter().copied().min().unwrap_or(0);
        let max = self.pixels.iter().copied().max().unwrap_or(0);
        (min, max)
    }
}

/// Scalar reference equalization (the textbook formula).
pub fn equalize_reference(img: &GreyImage) -> Vec<u8> {
    let hist = img.histogram();
    let mut cdf = vec![0i64; LEVELS];
    let mut acc = 0i64;
    for (i, &h) in hist.iter().enumerate() {
        acc += h;
        cdf[i] = acc;
    }
    let cdf_min = cdf.iter().copied().find(|&c| c > 0).unwrap_or(0);
    let n = img.len() as i64;
    let lut: Vec<u8> = cdf
        .iter()
        .map(|&c| {
            if n == cdf_min {
                0
            } else {
                (((c - cdf_min) as f64 / (n - cdf_min) as f64) * 255.0).round() as u8
            }
        })
        .collect();
    img.pixels.iter().map(|&p| lut[p as usize]).collect()
}

/// A timed equalization run.
#[derive(Debug)]
pub struct EqualizeRun {
    /// Total cycles across the three phases.
    pub cycles: u64,
    /// Cycles of the histogram phase.
    pub histogram_cycles: u64,
    /// Cycles of the CDF (scan) phase.
    pub scan_cycles: u64,
    /// Cycles of the remap phase.
    pub remap_cycles: u64,
    /// The equalized image.
    pub output: Vec<u8>,
}

impl EqualizeRun {
    /// Execution time in microseconds at 1 GHz.
    pub fn micros(&self) -> f64 {
        self.cycles as f64 / 1e3
    }
}

fn remap_phase(cfg: &MachineConfig, img: &GreyImage, lut: &[u8]) -> (ExecReport, Vec<u8>) {
    // Gather pixels, gather LUT entries (indexed by pixel), store output.
    let output: Vec<u8> = img.pixels.iter().map(|&p| lut[p as usize]).collect();
    let n = img.len();
    let mut prog = StreamProgram::new();
    let mut prev = None;
    let mut start = 0usize;
    while start < n {
        let end = (start + HW_STAGE).min(n);
        let b = (end - start) as u64;
        let deps: Vec<usize> = prev.into_iter().collect();
        let g_pix = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT_BASE + start as u64,
                n: b,
            }),
            &deps,
        );
        prev = Some(g_pix);
        let g_lut = prog.add(
            StreamOp::gather(AccessPattern::Indexed {
                base_word: layout::INPUT3_BASE,
                indices: img.pixels[start..end]
                    .iter()
                    .map(|&p| u64::from(p))
                    .collect(),
            }),
            &[g_pix],
        );
        let k = prog.add(StreamOp::kernel("remap", b, 0, 2, 2), &[g_lut]);
        prog.add(
            StreamOp::scatter(
                AccessPattern::Sequential {
                    base_word: layout::SCRATCH_BASE + start as u64,
                    n: b,
                },
                output[start..end].iter().map(|&p| u64::from(p)).collect(),
            ),
            &[k],
        );
        start = end;
    }
    let mut node = NodeMemSys::new(*cfg, 0, false);
    let pix: Vec<i64> = img.pixels.iter().map(|&p| i64::from(p)).collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::INPUT_BASE), &pix);
    let lut_words: Vec<i64> = lut.iter().map(|&l| i64::from(l)).collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::INPUT3_BASE), &lut_words);
    let report = Executor::new(*cfg).run(&prog, &mut node);
    (report, output)
}

fn lut_from_hist(img: &GreyImage, cdf: &[i64]) -> Vec<u8> {
    let cdf_min = cdf.iter().copied().find(|&c| c > 0).unwrap_or(0);
    let n = img.len() as i64;
    cdf.iter()
        .map(|&c| {
            if n == cdf_min {
                0
            } else {
                (((c - cdf_min) as f64 / (n - cdf_min) as f64) * 255.0).round() as u8
            }
        })
        .collect()
}

/// Equalize with hardware scatter-add (histogram) and the hardware scan
/// engine (CDF).
pub fn run_equalize_hw(cfg: &MachineConfig, img: &GreyImage) -> EqualizeRun {
    // Phase 1: histogram by scatter-add.
    let input = crate::histogram::HistogramInput {
        data: img.pixels.iter().map(|&p| u64::from(p)).collect(),
        range: LEVELS as u64,
    };
    let h = crate::histogram::run_hw(cfg, &input);
    let hist = h.bins.clone();

    // Phase 2: CDF on the hardware scan engine.
    let scan_in: Vec<u64> = hist.iter().map(|&c| c as u64).collect();
    let s = drive_scan(cfg, &scan_in, ScalarKind::I64);
    let cdf = s.prefix_i64();

    // Phase 3: build the LUT (scalar — 256 entries) and remap on-machine.
    let lut = lut_from_hist(img, &cdf);
    let (r, output) = remap_phase(cfg, img, &lut);

    EqualizeRun {
        cycles: h.report.cycles + s.cycles + r.cycles,
        histogram_cycles: h.report.cycles,
        scan_cycles: s.cycles,
        remap_cycles: r.cycles,
        output,
    }
}

/// Equalize with the software baselines: sort+scan histogram and a
/// multi-pass software scan kernel for the CDF.
pub fn run_equalize_sw(cfg: &MachineConfig, img: &GreyImage) -> EqualizeRun {
    // Phase 1: histogram by batched sort + segmented scan.
    let kernel = sa_core::ScatterKernel::histogram(
        layout::RESULT_BASE,
        img.pixels.iter().map(|&p| u64::from(p)).collect(),
    );
    let prog = build_sort_scan(
        &kernel,
        &SortScanLayout {
            idx_base: layout::INPUT_BASE,
            val_base: None,
        },
        DEFAULT_BATCH,
    );
    let mut node = NodeMemSys::new(*cfg, 0, false);
    let pix: Vec<i64> = img.pixels.iter().map(|&p| i64::from(p)).collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::INPUT_BASE), &pix);
    let h = Executor::new(*cfg).run(&prog, &mut node);
    let hist = node
        .store()
        .extract_i64(Addr::from_word_index(layout::RESULT_BASE), LEVELS);

    // Phase 2: software scan — gather bins, log₂(256) = 8 sweep passes on
    // the clusters, store back.
    let mut cdf = vec![0i64; LEVELS];
    let mut acc = 0;
    for (i, &h) in hist.iter().enumerate() {
        acc += h;
        cdf[i] = acc;
    }
    let mut sprog = StreamProgram::new();
    let g = sprog.add(
        StreamOp::gather(AccessPattern::Sequential {
            base_word: layout::RESULT_BASE,
            n: LEVELS as u64,
        }),
        &[],
    );
    let passes = (LEVELS as u64).ilog2() as u64; // Hillis–Steele sweeps
    let k = sprog.add(
        StreamOp::kernel("sw-scan", LEVELS as u64, passes, 2 * passes, 2 * passes),
        &[g],
    );
    sprog.add(
        StreamOp::scatter(
            AccessPattern::Sequential {
                base_word: layout::RESULT_BASE,
                n: LEVELS as u64,
            },
            cdf.iter().map(|&c| c as u64).collect(),
        ),
        &[k],
    );
    let mut snode = NodeMemSys::new(*cfg, 0, false);
    snode.store_mut().load_i64(Addr::from_word_index(0), &hist);
    let s = Executor::new(*cfg).run(&sprog, &mut snode);

    // Phase 3: identical remap.
    let lut = lut_from_hist(img, &cdf);
    let (r, output) = remap_phase(cfg, img, &lut);

    EqualizeRun {
        cycles: h.cycles + s.cycles + r.cycles,
        histogram_cycles: h.cycles,
        scan_cycles: s.cycles,
        remap_cycles: r.cycles,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn synthetic_image_is_low_contrast() {
        let img = GreyImage::synthetic(64, 64, 1);
        let (min, max) = img.dynamic_range();
        assert!(min >= 80, "low end clipped: {min}");
        assert!(max <= 176, "high end clipped: {max}");
        assert_eq!(img.len(), 4096);
    }

    #[test]
    fn reference_stretches_contrast() {
        let img = GreyImage::synthetic(64, 64, 2);
        let out = equalize_reference(&img);
        let min = *out.iter().min().unwrap();
        let max = *out.iter().max().unwrap();
        assert!(min <= 8, "equalized black point: {min}");
        assert!(max >= 247, "equalized white point: {max}");
    }

    #[test]
    fn hw_pipeline_matches_reference() {
        let img = GreyImage::synthetic(48, 48, 3);
        let run = run_equalize_hw(&cfg(), &img);
        assert_eq!(run.output, equalize_reference(&img));
        assert_eq!(
            run.cycles,
            run.histogram_cycles + run.scan_cycles + run.remap_cycles
        );
    }

    #[test]
    fn sw_pipeline_matches_reference() {
        let img = GreyImage::synthetic(48, 48, 4);
        let run = run_equalize_sw(&cfg(), &img);
        assert_eq!(run.output, equalize_reference(&img));
    }

    #[test]
    fn hardware_outruns_software() {
        let img = GreyImage::synthetic(96, 96, 5);
        let hw = run_equalize_hw(&cfg(), &img);
        let sw = run_equalize_sw(&cfg(), &img);
        assert!(
            sw.cycles > hw.cycles,
            "software {} should trail hardware {}",
            sw.cycles,
            hw.cycles
        );
        // The histogram phase is where scatter-add pays off.
        assert!(sw.histogram_cycles > 2 * hw.histogram_cycles);
    }

    #[test]
    #[should_panic(expected = "empty image")]
    fn empty_image_rejected() {
        let _ = GreyImage::synthetic(0, 4, 6);
    }
}
