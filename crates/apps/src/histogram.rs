//! The histogram application (§1, §4.1; Figures 6, 7, 8).
//!
//! "The input is a set of random integers chosen uniformly from a certain
//! range ... The output is an array of bins, where each bin holds the count
//! of the number of elements from the dataset that mapped into it. The
//! number of bins in our experiments matches the input range."

use sa_core::NodeMemSys;
use sa_core::ScatterKernel;
use sa_proc::{AccessPattern, ExecReport, Executor, OpId, StreamOp, StreamProgram};
use sa_sim::{Addr, MachineConfig, Rng64};
use sa_sw::{build_privatization, build_sort_scan, SortScanLayout, DEFAULT_BATCH, DEFAULT_TILE};

use crate::layout;

/// Elements processed per software-pipelined stage of the hardware version.
/// Scatter-adds are atomic, so stages need no cross-batch ordering; batching
/// exists purely to overlap the gather of stage `i+1` with the scatter-add
/// of stage `i`.
pub const HW_STAGE: usize = 2048;

/// The map kernel of the histogram (computing each element's bin): trivial
/// per-element work.
const MAP_OPS_PER_ELEMENT: u64 = 2;
const MAP_SRF_WORDS_PER_ELEMENT: u64 = 2;

/// A histogram problem instance.
#[derive(Clone, Debug)]
pub struct HistogramInput {
    /// The dataset: each element is already its bin index (the identity
    /// mapping of the paper's experiments).
    pub data: Vec<u64>,
    /// Number of bins (equal to the input range).
    pub range: u64,
}

impl HistogramInput {
    /// Uniform random dataset of `n` elements over `range` bins.
    ///
    /// # Panics
    ///
    /// Panics if `range` is zero.
    pub fn uniform(n: usize, range: u64, seed: u64) -> HistogramInput {
        assert!(range > 0, "need at least one bin");
        let mut rng = Rng64::new(seed);
        HistogramInput {
            data: (0..n).map(|_| rng.below(range)).collect(),
            range,
        }
    }

    /// Zipf-distributed dataset of `n` elements over `range` bins with
    /// exponent `s` — a skewed workload for studying the combining store
    /// and hot-bank behaviour between the uniform (Figure 7 mid-range) and
    /// single-bin (Figure 7 left edge) extremes. `s = 0` is uniform;
    /// `s ≈ 1` is classic Zipf; larger `s` concentrates harder.
    ///
    /// # Panics
    ///
    /// Panics if `range` is zero or `s` is negative/non-finite.
    pub fn zipf(n: usize, range: u64, s: f64, seed: u64) -> HistogramInput {
        assert!(range > 0, "need at least one bin");
        assert!(s.is_finite() && s >= 0.0, "invalid Zipf exponent");
        let mut rng = Rng64::new(seed);
        // Inverse-CDF sampling over the (finite) Zipf weights.
        let weights: Vec<f64> = (1..=range).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(range as usize);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let data = (0..n)
            .map(|_| {
                let u = rng.next_f64();
                cdf.partition_point(|&c| c < u).min(range as usize - 1) as u64
            })
            .collect();
        HistogramInput { data, range }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The scalar reference histogram.
    pub fn reference(&self) -> Vec<i64> {
        let mut bins = vec![0i64; self.range as usize];
        for &d in &self.data {
            bins[d as usize] += 1;
        }
        bins
    }

    /// The scatter kernel this histogram performs.
    pub fn kernel(&self) -> ScatterKernel {
        ScatterKernel::histogram(layout::RESULT_BASE, self.data.clone())
    }
}

/// A timed run of one histogram variant.
#[derive(Debug)]
pub struct HistogramRun {
    /// Executor report (cycles, FP ops, memory references).
    pub report: ExecReport,
    /// The computed bins, extracted from simulated memory.
    pub bins: Vec<i64>,
}

impl HistogramRun {
    /// Execution time in microseconds at 1 GHz (Figures 6–8 y-axis).
    pub fn micros(&self) -> f64 {
        self.report.micros()
    }
}

fn fresh_node(cfg: &MachineConfig, input: &HistogramInput) -> NodeMemSys {
    let mut node = NodeMemSys::new(*cfg, 0, false);
    let data_i64: Vec<i64> = input.data.iter().map(|&d| d as i64).collect();
    node.store_mut()
        .load_i64(Addr::from_word_index(layout::INPUT_BASE), &data_i64);
    node
}

fn finish(cfg: &MachineConfig, prog: &StreamProgram, input: &HistogramInput) -> HistogramRun {
    let mut node = fresh_node(cfg, input);
    let report = Executor::new(*cfg).run(prog, &mut node);
    let bins = node.store().extract_i64(
        Addr::from_word_index(layout::RESULT_BASE),
        input.range as usize,
    );
    HistogramRun { report, bins }
}

/// Build the hardware-scatter-add stream program:
/// `gather → map → scatterAdd(bins, data, 1)` in pipelined stages (§3.2's
/// histogram walk-through).
pub fn build_hw_program(input: &HistogramInput) -> StreamProgram {
    let mut prog = StreamProgram::new();
    let mut prev_gather: Option<OpId> = None;
    let n = input.data.len();
    let mut start = 0usize;
    while start < n {
        let end = (start + HW_STAGE).min(n);
        let b = (end - start) as u64;
        let deps: Vec<OpId> = prev_gather.into_iter().collect();
        let gather = prog.add(
            StreamOp::gather(AccessPattern::Sequential {
                base_word: layout::INPUT_BASE + start as u64,
                n: b,
            }),
            &deps,
        );
        prev_gather = Some(gather);
        let map = prog.add(
            StreamOp::kernel("map", b, 0, MAP_OPS_PER_ELEMENT, MAP_SRF_WORDS_PER_ELEMENT),
            &[gather],
        );
        prog.add(
            StreamOp::scatter_add_i64(
                AccessPattern::Indexed {
                    base_word: layout::RESULT_BASE,
                    indices: input.data[start..end].to_vec(),
                },
                &vec![1i64; end - start],
            ),
            &[map],
        );
        start = end;
    }
    prog
}

/// Run the hardware scatter-add histogram.
pub fn run_hw(cfg: &MachineConfig, input: &HistogramInput) -> HistogramRun {
    finish(cfg, &build_hw_program(input), input)
}

/// Run the sort + segmented-scan software histogram (the Figure 6/7
/// baseline) with the given batch size (the paper's optimum is
/// [`DEFAULT_BATCH`] = 256).
pub fn run_sort_scan(cfg: &MachineConfig, input: &HistogramInput, batch: usize) -> HistogramRun {
    let kernel = input.kernel();
    let prog = build_sort_scan(
        &kernel,
        &SortScanLayout {
            idx_base: layout::INPUT_BASE,
            val_base: None,
        },
        batch,
    );
    finish(cfg, &prog, input)
}

/// Run the sort + scan baseline at its default batch size.
pub fn run_sort_scan_default(cfg: &MachineConfig, input: &HistogramInput) -> HistogramRun {
    run_sort_scan(cfg, input, DEFAULT_BATCH)
}

/// Run the privatization software histogram (the Figure 8 baseline) with
/// the given register-tile size.
pub fn run_privatization(cfg: &MachineConfig, input: &HistogramInput, tile: usize) -> HistogramRun {
    let kernel = input.kernel();
    let prog = build_privatization(&kernel, layout::INPUT_BASE, input.range as usize, tile);
    finish(cfg, &prog, input)
}

/// Run privatization at its default tile size.
pub fn run_privatization_default(cfg: &MachineConfig, input: &HistogramInput) -> HistogramRun {
    run_privatization(cfg, input, DEFAULT_TILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn hw_histogram_is_exact() {
        let input = HistogramInput::uniform(2000, 512, 1);
        let run = run_hw(&cfg(), &input);
        assert_eq!(run.bins, input.reference());
        assert!(run.micros() > 0.0);
    }

    #[test]
    fn sort_scan_histogram_is_exact() {
        let input = HistogramInput::uniform(1000, 128, 2);
        let run = run_sort_scan_default(&cfg(), &input);
        assert_eq!(run.bins, input.reference());
    }

    #[test]
    fn privatization_histogram_is_exact() {
        let input = HistogramInput::uniform(500, 64, 3);
        let run = run_privatization_default(&cfg(), &input);
        assert_eq!(run.bins, input.reference());
    }

    #[test]
    fn hardware_beats_software_baselines() {
        // The headline of Figures 6 and 8.
        let input = HistogramInput::uniform(4096, 2048, 4);
        let hw = run_hw(&cfg(), &input);
        let sw = run_sort_scan_default(&cfg(), &input);
        let pv = run_privatization_default(&cfg(), &input);
        assert!(
            sw.report.cycles > 2 * hw.report.cycles,
            "sort&scan {} vs hw {}",
            sw.report.cycles,
            hw.report.cycles
        );
        assert!(
            pv.report.cycles > 5 * hw.report.cycles,
            "privatization {} vs hw {} at a large range",
            pv.report.cycles,
            hw.report.cycles
        );
    }

    #[test]
    fn hw_scaling_is_linear_in_n() {
        // Figure 6: O(n) scaling for both mechanisms. Sizes must be large
        // enough that fixed stream/kernel startup costs are amortized.
        let small = run_hw(&cfg(), &HistogramInput::uniform(4096, 2048, 5));
        let large = run_hw(&cfg(), &HistogramInput::uniform(16_384, 2048, 5));
        let ratio = large.report.cycles as f64 / small.report.cycles as f64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4× data should cost ~4× time, got {ratio:.2}"
        );
    }

    #[test]
    fn hw_program_has_no_cross_stage_scatter_dependencies() {
        // Atomicity means scatter-add stages never wait on each other —
        // only on their own map kernel.
        let input = HistogramInput::uniform(3 * HW_STAGE, 64, 6);
        let prog = build_hw_program(&input);
        for (id, op, deps) in prog.iter() {
            if matches!(op, StreamOp::ScatterAdd { .. }) {
                assert_eq!(deps.len(), 1, "scatter-add op {id} should have 1 dep");
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let uniform = HistogramInput::uniform(4000, 256, 7);
        let skewed = HistogramInput::zipf(4000, 256, 1.2, 7);
        let top = |h: &[i64]| {
            let mut s: Vec<i64> = h.to_vec();
            s.sort_unstable_by(|a, b| b.cmp(a));
            s[..8].iter().sum::<i64>()
        };
        let tu = top(&uniform.reference());
        let ts = top(&skewed.reference());
        assert!(
            ts > 3 * tu,
            "Zipf top-8 bins ({ts}) should dominate uniform ({tu})"
        );
        // All implementations stay exact on skewed data.
        let run = run_hw(&cfg(), &skewed);
        assert_eq!(run.bins, skewed.reference());
    }

    #[test]
    fn skew_slows_the_hardware_gracefully() {
        // More skew → longer same-address chains → slower, but bounded by
        // the single-bin worst case.
        let n = 4096;
        let uni = run_hw(&cfg(), &HistogramInput::uniform(n, 1024, 8));
        let zpf = run_hw(&cfg(), &HistogramInput::zipf(n, 1024, 1.5, 8));
        let hot = run_hw(&cfg(), &HistogramInput::uniform(n, 1, 8));
        assert!(zpf.report.cycles >= uni.report.cycles);
        assert!(zpf.report.cycles <= hot.report.cycles);
    }

    #[test]
    fn empty_input() {
        let input = HistogramInput {
            data: vec![],
            range: 8,
        };
        assert!(input.is_empty());
        let run = run_hw(&cfg(), &input);
        assert_eq!(run.bins, vec![0; 8]);
    }
}
