//! The hardware scatter-add mechanism of *"Scatter-Add in Data Parallel
//! Architectures"* (Ahn, Erez, Dally — HPCA 2005), plus the single-node
//! memory system it plugs into.
//!
//! The paper's contribution is a data-parallel, floating-point-capable
//! fetch-and-add placed in the memory system of a SIMD/vector/stream
//! processor. This crate implements it as described in §3.2:
//!
//! * [`ScatterAddUnit`] — the combining store (a CAM-searched buffer that
//!   both hides memory latency and merges concurrent additions to the same
//!   address), the pipelined integer/floating-point functional unit, and the
//!   request flow of Figure 5.
//! * [`NodeMemSys`] — one node's memory system: per-bank input queues feed
//!   a scatter-add unit in front of each stream-cache bank (Figure 4a),
//!   which talk to the DRAM channels of `sa-mem`.
//! * [`SensitivityRig`] — the §4.4 configuration: one scatter-add unit in
//!   front of a uniform-latency, fixed-throughput memory with no cache.
//! * [`area`] — the standard-cell area model behind the paper's "less than
//!   2% of a 10 mm × 10 mm chip in 90 nm technology" claim.
//! * [`scan`] and [`sync`] — the §5 future-work extensions: hardware
//!   parallel-prefix and fetch-and-add-based synchronization primitives.
//!
//! # Quick start
//!
//! ```
//! use sa_core::{drive_scatter, ScatterKernel};
//! use sa_sim::{MachineConfig, ScalarKind, ScatterOp};
//!
//! // Histogram: count how many elements fall into each of 8 bins.
//! let data = [3u64, 1, 3, 7, 3, 1, 0, 2];
//! let kernel = ScatterKernel {
//!     base_word: 0,
//!     indices: data.to_vec(),
//!     values: vec![1; data.len()],
//!     kind: ScalarKind::I64,
//!     op: ScatterOp::Add,
//! };
//! let run = drive_scatter(&MachineConfig::merrimac(), &kernel, false);
//! assert_eq!(run.result_i64(8), vec![1, 2, 1, 3, 0, 0, 0, 1]);
//! assert!(run.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod driver;
mod lane;
mod node;
mod rig;
pub mod scan;
pub mod sync;
mod unit;

pub use driver::{
    drive_scatter, drive_scatter_probed, drive_scatter_with, scatter_reference, RunResult,
    ScatterKernel, StallBreakdown,
};
pub use node::{NodeMemSys, NodeStats, DEFAULT_SAMPLE_INTERVAL};
pub use rig::{SensitivityResult, SensitivityRig};
pub use scan::{drive_scan, scan_reference, ScanResult};
pub use sync::{allocate_slots, simulate_barrier, BarrierResult, SlotAllocation};
pub use unit::{SaStats, ScatterAddUnit, ToMem};
