//! Intra-node parallel stepping: one *lane* per cache bank, a spin-barrier
//! worker pool that steps lanes concurrently, and the epoch free-run used by
//! [`NodeMemSys::advance_epoch`](crate::NodeMemSys::advance_epoch).
//!
//! # The crossbar serialization point
//!
//! Per cycle, a node's state splits into two phases:
//!
//! * a **front** phase (bank tick + DRAM command submission) that arbitrates
//!   for the shared DRAM channels — inherently serial, run by the
//!   coordinator in bank order so channel capacity is consumed exactly as in
//!   the classic single-threaded loop; and
//! * a **step** phase (scatter-add ingest, cache port arbitration, unit
//!   tick, response/ack routing) that touches only lane-local state — safe
//!   to run on worker threads, one lane at a time.
//!
//! The step phase of bank `i` never touches the DRAM channels, and the
//! front phase of bank `j > i` never reads state the step phase of bank `i`
//! writes (they are different banks), so hoisting all fronts before all
//! steps is byte-identical to the classic interleaved order. Completions
//! are buffered per lane in [`BankLane::out`] and merged in lane order
//! afterwards, which reproduces the serial push order exactly.
//!
//! # Epoch lookahead
//!
//! Between barriers a lane can run *many* cycles, not one, whenever the
//! node as a whole is provably closed: no undrained completions, idle DRAM
//! channels, and no in-flight DRAM commands. Each lane free-runs until it
//! would submit a DRAM command (the next crossbar arbitration — it parks
//! the cycle as a [`BankLane::half_tick`] without submitting), until its
//! own event horizon says it is drained, or until the epoch cap. The
//! coordinator then folds everything to the global horizon; see
//! [`free_run`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use sa_cache::{AccessKind, CacheAccess, CacheBank};
use sa_mem::DramChannel;
use sa_sim::{Addr, BoundedQueue, Cycle, DramConfig, MemOp, MemRequest, MemResponse, Origin};
use sa_telemetry::{NullTrace, ReqStage, ReqTracer, TraceSink};

use crate::unit::{ScatterAddUnit, ToMem};

/// The shared, lockable lane set a node and its worker pool step together.
pub(crate) type LaneSet = Arc<Vec<Mutex<BankLane>>>;

/// One cache bank's slice of the node: the bank, the scatter-add unit in
/// front of it (Figure 4a), the bank input queue, and the per-lane stepping
/// state that keeps parallel and epoch stepping byte-identical to serial.
#[derive(Debug)]
pub(crate) struct BankLane {
    /// This lane's bank index within the node.
    pub index: usize,
    /// The stream-cache bank.
    pub bank: CacheBank,
    /// The scatter-add unit in front of the bank.
    pub sa: ScatterAddUnit,
    /// Requests from the address generators (and the network interface).
    pub bank_in: BoundedQueue<MemRequest>,
    /// Round-robin state of the cache-port arbiter (unit vs bypass).
    pub rr_sa_first: bool,
    /// Completions produced by this lane, merged into the node's completion
    /// queue in lane order after every cycle (or epoch). Buffering here —
    /// in serial mode too — is what makes the merge order provably equal
    /// across all stepping modes.
    pub out: VecDeque<MemResponse>,
    /// Last cycle this lane fully simulated. Lanes may run *ahead* of the
    /// node clock after an epoch; the per-cycle step is skipped until the
    /// clock catches up.
    pub ran_until: u64,
    /// An epoch free-run parked mid-cycle: the bank tick for this cycle ran
    /// and surfaced a DRAM command, but the command was not submitted and
    /// the step phase did not run. Resumed by [`lane_front`] when the node
    /// clock reaches the cycle.
    pub half_tick: Option<u64>,
    /// Whether the last free-run ended because the lane drained completely
    /// (its event horizon is `None`).
    pub epoch_idle: bool,
}

/// The node-level parameters a lane step needs, copied out so worker
/// threads never touch the `NodeMemSys` itself.
#[derive(Copy, Clone, Debug)]
pub(crate) struct LaneParams {
    /// This node's index.
    pub node: usize,
    /// Whether cache-combining mode (§3.2) is on.
    pub combining: bool,
    /// Node count when part of a multi-node machine (`None` = standalone).
    pub n_nodes: Option<usize>,
    /// Cache line size, for line-interleaved address homing.
    pub line_bytes: u64,
    /// Whether a non-empty fault plan is installed (gates the watchdog).
    pub faults_active: bool,
    /// Watchdog threshold for fault-injected combining-store stalls.
    pub cs_timeout: u64,
}

impl LaneParams {
    /// Whether combining mode treats `addr` as remote (zero-allocate +
    /// sum-back). A home-owned line is never combined: applying it through
    /// the cache with a real fill is what lets arriving sum-backs terminate.
    pub fn combine_as_remote(&self, addr: Addr) -> bool {
        self.combining
            && match self.n_nodes {
                None => true,
                Some(n) => (addr.line_index(self.line_bytes) % n as u64) as usize != self.node,
            }
    }
}

/// Retire a traced request and stream its per-stage spans into the trace
/// sink (one Perfetto track per request, scoped by node id).
pub(crate) fn retire_req<S: TraceSink>(
    id: u64,
    now: Cycle,
    req_trace: &mut ReqTracer,
    tracer: &mut S,
) {
    if let Some(rec) = req_trace.retire(id, now.raw()) {
        sa_telemetry::emit_req_spans(rec, tracer);
    }
}

/// The front (crossbar) phase of one lane for cycle `now`: fold queue time,
/// tick the bank, and move one outgoing DRAM command toward its channel (a
/// single conditional pop: the head stays queued when its channel is busy).
/// Run serially by the coordinator, in bank order. A no-op for lanes that
/// already simulated this cycle during an epoch; resumes a parked
/// [`BankLane::half_tick`] instead of re-ticking the bank.
pub(crate) fn lane_front(
    lane: &mut BankLane,
    now: Cycle,
    channels: &mut [DramChannel],
    dram_cfg: DramConfig,
    line_bytes: u64,
    req_trace: &mut ReqTracer,
) {
    let t = now.raw();
    if t <= lane.ran_until {
        return;
    }
    match lane.half_tick.take() {
        Some(c) => debug_assert_eq!(c, t, "half-tick resumed at the wrong cycle"),
        None => {
            lane.bank_in.advance(t);
            lane.bank.tick(now);
        }
    }
    if let Some(cmd) = lane.bank.pop_mem_cmd_if(|cmd| {
        channels[dram_cfg.channel_of_line(cmd.base.line_index(line_bytes))].can_accept()
    }) {
        if let Some(rid) = cmd.req {
            req_trace.stamp(rid, ReqStage::Dram, t);
        }
        let ch = dram_cfg.channel_of_line(cmd.base.line_index(line_bytes));
        channels[ch].try_submit(cmd, now).expect("capacity checked");
    }
}

/// The lane-local step phase of one cycle (scatter-add ingest, cache port
/// arbitration, unit tick, response/ack routing) — steps 4–8 of the classic
/// per-bank loop. Never touches the DRAM channels, so lanes can run it
/// concurrently. Completions go to [`BankLane::out`].
pub(crate) fn step_lane<S: TraceSink>(
    lane: &mut BankLane,
    now: Cycle,
    p: &LaneParams,
    req_trace: &mut ReqTracer,
    tracer: &mut S,
) {
    let BankLane {
        index,
        bank,
        sa,
        bank_in,
        rr_sa_first,
        out,
        ..
    } = lane;
    let b = *index;

    // 4. Ingest a scatter request into the scatter-add unit (does not
    //    consume the cache port; Figure 4a places the unit in front of the
    //    bank). Single conditional pop: the head is consumed exactly when
    //    the unit accepts it.
    bank_in.pop_if(|req| req.op.is_scatter() && sa.try_submit_traced(*req, now, req_trace).is_ok());

    // 5. One cache access per bank per cycle, round-robin between the
    //    scatter-add unit's internal traffic and bypass traffic.
    let sa_first = *rr_sa_first;
    let mut served = false;
    for attempt in 0..2 {
        let serve_sa = sa_first ^ (attempt == 1);
        if serve_sa {
            if try_serve_sa(b, bank, sa, now, p, req_trace) {
                served = true;
                break;
            }
        } else if try_serve_bypass(bank, bank_in, out, now, req_trace, tracer) {
            served = true;
            break;
        }
    }
    if served {
        *rr_sa_first = !sa_first;
    }

    // 6. Advance the scatter-add unit; with faults installed, the watchdog
    //    first expires any stall that outlived its budget.
    if p.faults_active {
        sa.cancel_stalls_older_than(now, p.cs_timeout);
    }
    sa.tick_traced(now, req_trace);

    // 7. Route cache data responses.
    while let Some(r) = bank.pop_ready(now) {
        match r.origin {
            Origin::SaUnit { bank: ob, .. } => {
                debug_assert_eq!(ob, b);
                sa.on_value(r.addr, r.bits);
            }
            _ => {
                retire_req(r.id, now, req_trace, tracer);
                out.push_back(r);
            }
        }
    }

    // 8. Scatter acknowledgements complete their requests.
    while let Some(a) = sa.pop_ack() {
        retire_req(a.id, now, req_trace, tracer);
        out.push_back(a);
    }

    lane.ran_until = now.raw();
}

/// Serve one of the scatter-add unit's memory operations at the lane's
/// cache port. Returns whether the port was used (a single conditional pop:
/// the head op stays queued when the cache port rejects it).
fn try_serve_sa(
    b: usize,
    bank: &mut CacheBank,
    sa: &mut ScatterAddUnit,
    now: Cycle,
    p: &LaneParams,
    req_trace: &mut ReqTracer,
) -> bool {
    let node = p.node;
    sa.pop_to_mem_if(|op| {
        let origin = Origin::SaUnit { node, bank: b };
        let access = match *op {
            ToMem::Read { id, addr } => CacheAccess {
                id,
                addr,
                kind: AccessKind::Read {
                    zero_alloc: p.combine_as_remote(addr),
                },
                origin,
            },
            ToMem::Write { id, addr, bits } => CacheAccess {
                id,
                addr,
                kind: AccessKind::Write {
                    bits,
                    partial_sum: p.combine_as_remote(addr),
                },
                origin,
            },
        };
        bank.try_access_traced(access, now, req_trace).is_ok()
    })
    .is_some()
}

/// Serve one bypass (non-scatter) request at the lane's cache port.
/// Returns whether the port was used (a single conditional pop: the head
/// request stays queued when the cache port rejects it).
fn try_serve_bypass<S: TraceSink>(
    bank: &mut CacheBank,
    bank_in: &mut BoundedQueue<MemRequest>,
    out: &mut VecDeque<MemResponse>,
    now: Cycle,
    req_trace: &mut ReqTracer,
    tracer: &mut S,
) -> bool {
    let served = bank_in.pop_if(|req| {
        let access = match req.op {
            MemOp::Read => CacheAccess {
                id: req.id,
                addr: req.addr,
                kind: AccessKind::Read { zero_alloc: false },
                origin: req.origin,
            },
            MemOp::Write { bits } => CacheAccess {
                id: req.id,
                addr: req.addr,
                kind: AccessKind::Write {
                    bits,
                    partial_sum: false,
                },
                origin: req.origin,
            },
            MemOp::Scatter { .. } => return false,
        };
        bank.try_access_traced(access, now, req_trace).is_ok()
    });
    match served {
        Some(req) => {
            if matches!(req.op, MemOp::Write { .. }) {
                // Posted write: acknowledged on acceptance.
                retire_req(req.id, now, req_trace, tracer);
                out.push_back(MemResponse {
                    id: req.id,
                    addr: req.addr,
                    bits: 0,
                    origin: req.origin,
                    at: now,
                });
            }
            true
        }
        None => false,
    }
}

/// The lane's own event horizon at local time `t`: the earliest future
/// cycle at which the lane can change state with no external input. `None`
/// means the lane is drained forever (absent new injections or fills).
///
/// Mirrors the per-request-retry pinning of
/// [`NodeMemSys::next_event`](crate::NodeMemSys::next_event): queued bank
/// inputs and pending scatter-add memory ops are retried (and mutate stall
/// counters) every cycle, so either pins the horizon to `t + 1`. The
/// unit's acknowledgement queue needs no term: it is fully drained at the
/// end of every stepped cycle.
pub(crate) fn lane_horizon(lane: &BankLane, t: u64) -> Option<u64> {
    if !lane.bank_in.is_empty() || lane.sa.peek_to_mem().is_some() {
        return Some(t + 1);
    }
    let now = Cycle(t);
    let mut h: Option<u64> = None;
    let mut fold = |e: Option<Cycle>| {
        if let Some(e) = e {
            let e = e.raw();
            h = Some(h.map_or(e, |x| x.min(e)));
        }
    };
    fold(lane.sa.next_event(now));
    fold(lane.bank.next_event(now));
    h
}

/// Fold the idle window `(from, to]` into the lane's time-weighted
/// statistics — the per-lane analogue of the node-level fast-forward fold,
/// valid only when the lane's horizon is beyond `to`.
pub(crate) fn fold_lane_to(lane: &mut BankLane, from: u64, to: u64) {
    debug_assert!(to >= from);
    let k = to - from;
    if k > 0 {
        lane.sa.skip_cycles(Cycle(from), k, false);
        lane.bank.skip_cycles(Cycle(from), k);
        lane.bank_in.advance(to);
    }
    lane.ran_until = to;
}

/// Free-run one lane through an epoch starting after cycle `now` (which the
/// lane must have completed), up to at most cycle `cap` inclusive. The lane
/// stops in one of three states:
///
/// * **parked** — the bank tick of some cycle `c` surfaced a DRAM command
///   (the next crossbar arbitration). The command is *not* submitted and
///   the step phase of `c` does not run; `half_tick = Some(c)` and
///   `ran_until = c - 1`. [`lane_front`] resumes the cycle when the node
///   clock reaches `c`.
/// * **drained** — the lane's horizon is `None`; `epoch_idle` is set and
///   `ran_until` stays at the last simulated cycle (the coordinator folds
///   the lane forward to the epoch horizon).
/// * **capped** — the lane simulated through `cap`.
///
/// Provably-idle stretches inside the epoch are folded with
/// [`fold_lane_to`], exactly as node-level fast-forward folds them, so the
/// lane's time-weighted statistics stay byte-identical to per-cycle
/// stepping. Request tracing is off by construction in parallel mode, so
/// the local disabled tracer is equivalent to the node's.
pub(crate) fn free_run(lane: &mut BankLane, now: Cycle, cap: u64, p: &LaneParams) {
    debug_assert!(lane.half_tick.is_none(), "epoch from a parked lane");
    debug_assert_eq!(lane.ran_until, now.raw(), "epoch from a lagging lane");
    debug_assert!(!lane.bank.has_mem_cmd(), "epoch with an in-flight command");
    lane.epoch_idle = false;
    let mut req_trace = ReqTracer::off();
    let mut t = now.raw();
    loop {
        match lane_horizon(lane, t) {
            None => {
                lane.epoch_idle = true;
                return;
            }
            Some(h) if h > cap => {
                fold_lane_to(lane, t, cap);
                return;
            }
            Some(h) => {
                if h > t + 1 {
                    fold_lane_to(lane, t, h - 1);
                    t = h - 1;
                }
            }
        }
        t += 1;
        lane.bank_in.advance(t);
        lane.bank.tick(Cycle(t));
        if lane.bank.has_mem_cmd() {
            lane.half_tick = Some(t);
            // `ran_until` stays at t - 1: the step phase of t has not run.
            return;
        }
        step_lane(lane, Cycle(t), p, &mut req_trace, &mut NullTrace);
        if t >= cap {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Release-phase command: step every lane one cycle.
pub(crate) const MODE_STEP: u8 = 0;
/// Release-phase command: free-run every lane through an epoch.
pub(crate) const MODE_EPOCH: u8 = 1;
/// Release-phase command: exit the worker loop.
pub(crate) const MODE_EXIT: u8 = 2;

/// A sense-reversing barrier sized for a handful of threads syncing twice
/// per simulated cycle, with a spin phase tuned to the host: when the
/// machine has a core per pool thread, waiters spin on the generation
/// counter (kernel parking costs more than an entire simulated cycle);
/// when the pool is wider than the machine, spinning only steals the
/// running thread's timeslice, so waiters park on a condvar immediately.
#[derive(Debug)]
pub(crate) struct SpinBarrier {
    n: u32,
    /// Spin iterations before parking (0 = park immediately).
    spin: u32,
    count: AtomicU32,
    generation: AtomicU32,
    lock: Mutex<()>,
    parked: std::sync::Condvar,
}

impl SpinBarrier {
    /// A barrier for `n` threads.
    pub fn new(n: u32) -> SpinBarrier {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        SpinBarrier {
            n,
            spin: if cores >= n as usize { 20_000 } else { 0 },
            count: AtomicU32::new(0),
            generation: AtomicU32::new(0),
            lock: Mutex::new(()),
            parked: std::sync::Condvar::new(),
        }
    }

    /// Wait for all `n` threads. The last arriver resets the count and bumps
    /// the generation; everyone else spins on the generation, falling back
    /// to parking after the spin budget. The acquire/release pairing on the
    /// counter RMWs and the generation bump makes every write before any
    /// thread's `wait` visible to every thread after. The bump happens under
    /// the park lock so a waiter that re-checks the generation while holding
    /// it can never miss the wakeup.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            {
                let _guard = self.lock.lock().expect("barrier lock");
                self.generation.fetch_add(1, Ordering::AcqRel);
            }
            self.parked.notify_all();
            return;
        }
        let mut spins = 0u32;
        while spins < self.spin {
            if self.generation.load(Ordering::Acquire) != gen {
                return;
            }
            spins += 1;
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("barrier lock");
        while self.generation.load(Ordering::Acquire) == gen {
            guard = self.parked.wait(guard).expect("barrier lock");
        }
    }
}

/// State shared between the coordinator and the worker threads.
#[derive(Debug)]
pub(crate) struct PoolShared {
    /// The two-phase (release / join) barrier.
    pub barrier: SpinBarrier,
    /// What to do this release: [`MODE_STEP`], [`MODE_EPOCH`], [`MODE_EXIT`].
    pub mode: AtomicU8,
    /// The cycle being stepped (or the epoch base cycle).
    pub now: AtomicU64,
    /// The epoch cap (inclusive); unused for per-cycle steps.
    pub cap: AtomicU64,
    /// Node-level parameters, refreshed by the coordinator every release.
    pub params: Mutex<LaneParams>,
    /// Set by any worker whose stride panicked; the coordinator asserts it
    /// after the join barrier so a lane panic fails the run loudly instead
    /// of silently corrupting the simulation.
    pub panicked: AtomicBool,
}

/// The persistent intra-node worker pool: `threads - 1` spawned workers
/// plus the coordinator, striding the lane set together between a release
/// and a join barrier. Dropping the pool releases the workers with
/// [`MODE_EXIT`] and joins them.
#[derive(Debug)]
pub(crate) struct StepPool {
    /// Shared barrier/command block.
    pub shared: Arc<PoolShared>,
    /// Worker join handles.
    pub handles: Vec<std::thread::JoinHandle<()>>,
    /// Total stepping threads (workers + coordinator).
    pub threads: usize,
}

impl Drop for StepPool {
    fn drop(&mut self) {
        self.shared.mode.store(MODE_EXIT, Ordering::Release);
        self.shared.barrier.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One worker's lane stride for a release: every `total`-th lane starting
/// at `stride`, stepped ([`MODE_STEP`]) or free-run ([`MODE_EPOCH`]).
/// The per-cycle step is skipped for lanes that already simulated the cycle
/// during an epoch.
pub(crate) fn run_stride(
    lanes: &[Mutex<BankLane>],
    stride: usize,
    total: usize,
    mode: u8,
    now: Cycle,
    cap: u64,
    p: &LaneParams,
) {
    let mut i = stride;
    while i < lanes.len() {
        let mut lane = lanes[i].lock().expect("lane lock");
        match mode {
            MODE_STEP => {
                if now.raw() > lane.ran_until {
                    let mut req_trace = ReqTracer::off();
                    step_lane(&mut lane, now, p, &mut req_trace, &mut NullTrace);
                }
            }
            MODE_EPOCH => free_run(&mut lane, now, cap, p),
            _ => unreachable!("workers only run step or epoch strides"),
        }
        drop(lane);
        i += total;
    }
}

/// The worker thread body: wait for a release, run the stride (catching
/// panics so the coordinator can re-raise them), join.
pub(crate) fn worker_loop(shared: Arc<PoolShared>, lanes: LaneSet, stride: usize, total: usize) {
    loop {
        shared.barrier.wait();
        let mode = shared.mode.load(Ordering::Acquire);
        if mode == MODE_EXIT {
            return;
        }
        let now = Cycle(shared.now.load(Ordering::Acquire));
        let cap = shared.cap.load(Ordering::Acquire);
        let params = *shared.params.lock().expect("params lock");
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_stride(&lanes, stride, total, mode, now, cap, &params);
        }));
        if r.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.barrier.wait();
    }
}
