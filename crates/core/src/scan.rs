//! Hardware parallel-prefix (scan) support — the first §5 future-work item:
//! "we plan enhancements that will allow efficient computation of scans
//! (parallel prefix operations) in hardware".
//!
//! The paper does not give a design, so this module commits to a natural
//! one in the same spirit as the scatter-add unit: a *scan engine* at the
//! memory interface that streams a contiguous range through a running
//! accumulator and writes prefix sums back. Two micro-architectural points
//! make it credible:
//!
//! * the serial dependence of a prefix sum is hidden the standard way —
//!   interleaved partial accumulators (one per cache bank) plus a
//!   correction merge — so the engine consumes one element per bank per
//!   cycle regardless of adder latency;
//! * elements can return from the banked memory system out of order, so the
//!   engine owns a small reorder window ([`SCAN_ROB_ENTRIES`]) and consumes
//!   strictly in order; a full window back-pressures like the combining
//!   store does.
//!
//! The engine is exact: reordering never changes integer results, and f64
//! prefixes are computed in index order (unlike scatter-add, a scan's
//! *definition* fixes the order).

use std::collections::{HashMap, VecDeque};

use sa_sim::{Addr, Clock, MachineConfig, MemOp, MemRequest, Origin, ScalarKind};

use crate::node::{NodeMemSys, NodeStats};

/// Reorder-window entries of the scan engine (same silicon budget class as
/// a combining store).
pub const SCAN_ROB_ENTRIES: usize = 64;

/// Outcome of a hardware scan.
#[derive(Debug)]
pub struct ScanResult {
    /// Cycles until every prefix value was written back.
    pub cycles: u64,
    /// The prefix sums (inclusive), as raw bits.
    pub prefix: Vec<u64>,
    /// Machine statistics for the run.
    pub stats: NodeStats,
}

impl ScanResult {
    /// The prefix sums as `i64`.
    pub fn prefix_i64(&self) -> Vec<i64> {
        self.prefix.iter().map(|&b| b as i64).collect()
    }

    /// The prefix sums as `f64`.
    pub fn prefix_f64(&self) -> Vec<f64> {
        self.prefix.iter().map(|&b| f64::from_bits(b)).collect()
    }

    /// Execution time in microseconds at 1 GHz.
    pub fn micros(&self) -> f64 {
        self.cycles as f64 / 1e3
    }
}

/// Run an inclusive prefix sum over `n` words starting at `base_word`,
/// writing the results over the inputs — in hardware, on a fresh node
/// preloaded with `input`.
///
/// # Panics
///
/// Panics if `input` is empty or the simulation deadlocks.
pub fn drive_scan(cfg: &MachineConfig, input: &[u64], kind: ScalarKind) -> ScanResult {
    assert!(!input.is_empty(), "empty scan");
    let base_word = 0u64;
    let n = input.len();
    let mut node = NodeMemSys::new(*cfg, 0, false);
    match kind {
        ScalarKind::I64 => {
            let v: Vec<i64> = input.iter().map(|&b| b as i64).collect();
            node.store_mut()
                .load_i64(Addr::from_word_index(base_word), &v);
        }
        ScalarKind::F64 => {
            let v: Vec<f64> = input.iter().map(|&b| f64::from_bits(b)).collect();
            node.store_mut()
                .load_f64(Addr::from_word_index(base_word), &v);
        }
    }

    let issue_width = (cfg.ag.count as u32 * cfg.ag.width) as usize;
    let mut clock = Clock::with_limit(4_000_000_000);

    // Engine state.
    let mut next_read = 0usize; // next element whose read we may issue
    let mut rob: HashMap<u64, u64> = HashMap::new(); // element index -> bits
    let mut consume_at = 0usize; // next element the accumulator takes
    let mut acc = sa_sim::identity_bits(kind, sa_sim::ScatterOp::Add);
    let mut prefix = vec![0u64; n];
    let mut writes_pending: VecDeque<(usize, u64)> = VecDeque::new();
    let mut writes_acked = 0usize;
    let mut read_ids: HashMap<u64, usize> = HashMap::new();
    let mut next_id = 0u64;

    while writes_acked < n {
        let now = clock.advance();

        // Issue reads while the reorder window has room.
        let mut issued = 0;
        while issued < issue_width && next_read < n && (next_read - consume_at) < SCAN_ROB_ENTRIES {
            next_id += 1;
            let req = MemRequest {
                id: next_id,
                addr: Addr::from_word_index(base_word + next_read as u64),
                op: MemOp::Read,
                origin: Origin::AddrGen { node: 0, ag: 0 },
            };
            match node.inject(req) {
                Ok(()) => {
                    read_ids.insert(next_id, next_read);
                    next_read += 1;
                    issued += 1;
                }
                Err(_) => break,
            }
        }

        // Consume in-order elements — one per bank-lane accumulator per
        // cycle (the correction merge keeps them coherent).
        for _ in 0..cfg.cache.banks {
            let Some(bits) = rob.remove(&(consume_at as u64)) else {
                break;
            };
            acc = sa_sim::combine(acc, bits, kind, sa_sim::ScatterOp::Add);
            prefix[consume_at] = acc;
            writes_pending.push_back((consume_at, acc));
            consume_at += 1;
        }

        // Issue prefix write-backs, one per lane per cycle.
        for _ in 0..cfg.cache.banks {
            let Some(&(idx, bits)) = writes_pending.front() else {
                break;
            };
            next_id += 1;
            let req = MemRequest {
                id: next_id,
                addr: Addr::from_word_index(base_word + idx as u64),
                op: MemOp::Write { bits },
                origin: Origin::SaUnit { node: 0, bank: 0 },
            };
            match node.inject(req) {
                Ok(()) => {
                    writes_pending.pop_front();
                }
                Err(_) => break,
            }
        }

        node.tick(now);

        while let Some(c) = node.pop_completion() {
            match c.origin {
                Origin::AddrGen { .. } => {
                    let idx = read_ids.remove(&c.id).expect("read id known");
                    rob.insert(idx as u64, c.bits);
                }
                Origin::SaUnit { .. } => writes_acked += 1,
                _ => {}
            }
        }
    }

    // Drain the machine and materialize memory.
    while !node.is_idle() {
        let now = clock.advance();
        node.tick(now);
        while node.pop_completion().is_some() {}
    }
    node.flush_to_store();

    ScanResult {
        cycles: clock.now().raw(),
        prefix,
        stats: node.stats(),
    }
}

/// Scalar reference: inclusive prefix sum bits.
pub fn scan_reference(input: &[u64], kind: ScalarKind) -> Vec<u64> {
    let mut acc = sa_sim::identity_bits(kind, sa_sim::ScatterOp::Add);
    input
        .iter()
        .map(|&b| {
            acc = sa_sim::combine(acc, b, kind, sa_sim::ScatterOp::Add);
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::Rng64;

    fn cfg() -> MachineConfig {
        MachineConfig::merrimac()
    }

    #[test]
    fn i64_scan_is_exact() {
        let mut rng = Rng64::new(1);
        let input: Vec<u64> = (0..500).map(|_| rng.below(100)).collect();
        let r = drive_scan(&cfg(), &input, ScalarKind::I64);
        assert_eq!(r.prefix, scan_reference(&input, ScalarKind::I64));
    }

    #[test]
    fn f64_scan_is_in_order() {
        // A scan's order is defined by the index, so f64 results must be
        // *bitwise* equal to the sequential reference — no reassociation.
        let mut rng = Rng64::new(2);
        let input: Vec<u64> = (0..300)
            .map(|_| rng.range_f64(-1.0, 1.0).to_bits())
            .collect();
        let r = drive_scan(&cfg(), &input, ScalarKind::F64);
        assert_eq!(r.prefix, scan_reference(&input, ScalarKind::F64));
    }

    #[test]
    fn results_land_in_memory() {
        let input: Vec<u64> = (1..=8).collect();
        let r = drive_scan(&cfg(), &input, ScalarKind::I64);
        assert_eq!(r.prefix_i64(), vec![1, 3, 6, 10, 15, 21, 28, 36]);
    }

    #[test]
    fn scan_throughput_approaches_one_element_per_cycle_when_cached() {
        // Small ranges stay cache-resident after the first pass; the engine
        // should then be bound by its 1 element/cycle consumption.
        let input: Vec<u64> = vec![1; 2048];
        let r = drive_scan(&cfg(), &input, ScalarKind::I64);
        let per_elem = r.cycles as f64 / 2048.0;
        assert!(
            per_elem < 2.0,
            "multi-lane scan should beat 2 cyc/elem, got {per_elem:.2}"
        );
    }

    #[test]
    fn scan_scales_linearly() {
        let small = drive_scan(&cfg(), &vec![1u64; 1024], ScalarKind::I64);
        let large = drive_scan(&cfg(), &vec![1u64; 4096], ScalarKind::I64);
        let ratio = large.cycles as f64 / small.cycles as f64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "O(n) scan, got ratio {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "empty scan")]
    fn empty_scan_rejected() {
        let _ = drive_scan(&cfg(), &[], ScalarKind::I64);
    }
}
