//! The §4.4 sensitivity rig: one scatter-add unit, no cache, uniform memory.

use fxhash::FxHashSet;
use sa_mem::{BackingStore, SimpleMemory, SimpleMemoryStats};
use sa_sim::{
    Addr, Clock, Cycle, MemOp, MemRequest, Origin, SaUnitConfig, ScalarKind, ScatterOp,
    SensitivityConfig,
};

use crate::unit::{SaStats, ScatterAddUnit, ToMem};

/// Outcome of one sensitivity-rig run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SensitivityResult {
    /// Cycles from first issue until the last sum was written to memory.
    pub cycles: u64,
    /// Cycles the run loop fast-forwarded over instead of ticking (0 with
    /// fast-forward off; wall-clock accounting only — `cycles` and every
    /// other field are byte-identical either way).
    pub skipped_cycles: u64,
    /// Scatter-add unit counters.
    pub sa: SaStats,
    /// Memory counters.
    pub mem: SimpleMemoryStats,
    /// Final contents of the result array.
    pub bins: Vec<i64>,
}

impl SensitivityResult {
    /// Execution time in microseconds at 1 GHz (the figures' y-axis).
    pub fn micros(&self) -> f64 {
        Cycle(self.cycles).as_micros(1.0)
    }

    /// Record this run's counters into a telemetry scope.
    pub fn record_metrics(&self, scope: &mut sa_telemetry::Scope<'_>) {
        scope.counter("cycles", self.cycles);
        scope.counter("skipped_cycles", self.skipped_cycles);
        self.sa.record(&mut scope.scope("sa"));
        self.mem.record(&mut scope.scope("mem"));
    }
}

/// The stripped-down machine of the §4.4 sensitivity experiments
/// (Figures 11 and 12): a single address generator issuing one scatter-add
/// per cycle into a single [`ScatterAddUnit`], backed by a uniform-latency,
/// fixed-interval [`SimpleMemory`] with no cache.
///
/// ```
/// use sa_core::SensitivityRig;
/// use sa_sim::SensitivityConfig;
///
/// let rig = SensitivityRig::new(SensitivityConfig::default());
/// let indices = vec![0, 1, 2, 3, 0, 1, 2, 3];
/// let r = rig.run_histogram(&indices, 4);
/// assert_eq!(r.bins, vec![2, 2, 2, 2]);
/// ```
#[derive(Copy, Clone, Debug)]
pub struct SensitivityRig {
    cfg: SensitivityConfig,
    /// Whether the run loop may fast-forward over provably-idle cycles
    /// (e.g. the whole combining store waiting out a 400-cycle memory
    /// latency). Wall-clock only; results are byte-identical either way.
    fast_forward: bool,
}

impl SensitivityRig {
    /// A rig with the given combining-store size, FU latency, memory latency
    /// and memory interval. Fast-forward follows the process-wide default
    /// ([`sa_sim::fast_forward_default`]).
    pub fn new(cfg: SensitivityConfig) -> SensitivityRig {
        SensitivityRig {
            cfg,
            fast_forward: sa_sim::fast_forward_default(),
        }
    }

    /// Enable or disable event-horizon fast-forward for this rig's runs,
    /// overriding the process-wide default.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether runs fast-forward over provably-idle cycles.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// The rig's configuration.
    pub fn config(&self) -> SensitivityConfig {
        self.cfg
    }

    /// Run a histogram of `indices` over `range` bins (each element adds 1 to
    /// its bin) and measure the cycles until everything has drained to
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of `0..range`.
    pub fn run_histogram(&self, indices: &[u64], range: u64) -> SensitivityResult {
        for &i in indices {
            assert!(i < range, "index {i} out of range {range}");
        }
        let mut sa = ScatterAddUnit::new(SaUnitConfig {
            cs_entries: self.cfg.cs_entries,
            fu_latency: self.cfg.fu_latency,
        });
        let mut mem = SimpleMemory::new(self.cfg.mem_latency, self.cfg.mem_interval);
        let mut store = BackingStore::new();
        let mut clock = Clock::with_limit(2_000_000_000);
        let mut next = 0usize;
        let mut read_ids: FxHashSet<sa_sim::ReqId> = FxHashSet::default();
        let mut skipped_cycles = 0u64;

        while next < indices.len() || !sa.is_idle() || !mem.is_idle() {
            let now = clock.advance();

            // One scatter-add issued per cycle by the address generator.
            if next < indices.len() {
                let req = MemRequest {
                    id: next as u64,
                    addr: Addr::from_word_index(indices[next]),
                    op: MemOp::Scatter {
                        bits: 1,
                        kind: ScalarKind::I64,
                        op: ScatterOp::Add,
                        fetch: false,
                    },
                    origin: Origin::AddrGen { node: 0, ag: 0 },
                };
                if sa.try_submit(req).is_ok() {
                    next += 1;
                }
            }

            sa.tick(now);

            // The unit's reads/writes go straight to the uniform memory,
            // throttled by its fixed access interval. A single conditional
            // pop per op: the head stays queued when memory throttles it.
            loop {
                let accepted = sa.pop_to_mem_if(|op| {
                    let req = match *op {
                        ToMem::Read { id, addr } => MemRequest {
                            id,
                            addr,
                            op: MemOp::Read,
                            origin: Origin::SaUnit { node: 0, bank: 0 },
                        },
                        ToMem::Write { id, addr, bits } => MemRequest {
                            id,
                            addr,
                            op: MemOp::Write { bits },
                            origin: Origin::SaUnit { node: 0, bank: 0 },
                        },
                    };
                    mem.try_access(req, now, &mut store)
                });
                match accepted {
                    Some(ToMem::Read { id, .. }) => {
                        read_ids.insert(id);
                    }
                    Some(ToMem::Write { .. }) => {}
                    None => break,
                }
            }

            if let Some(resp) = mem.tick(now) {
                // Only reads carry a value back into the unit; write
                // acknowledgements are dropped.
                if read_ids.remove(&resp.id) {
                    sa.on_value(resp.addr, resp.bits);
                }
            }

            while sa.pop_ack().is_some() {}

            // Event-horizon fast-forward: when no submit can succeed next
            // cycle, jump to the cycle before the earliest component event.
            // Every per-cycle stall counter the skipped retries would have
            // bumped is folded in by the `skip_cycles` calls, so results are
            // byte-identical with skipping off.
            if self.fast_forward && (next >= indices.len() || !sa.can_accept()) {
                let pending_mem = sa.peek_to_mem().is_some();
                let mut horizon: Option<Cycle> = None;
                let mut fold = |t: Option<Cycle>| {
                    if let Some(t) = t {
                        horizon = Some(horizon.map_or(t, |h| h.min(t)));
                    }
                };
                fold(sa.next_event(now));
                fold(mem.next_event(now));
                if pending_mem {
                    // The head op retries when the access interval frees.
                    fold(Some(mem.ready_at(now).max(now + 1)));
                }
                if let Some(h) = horizon {
                    if h > now + 1 {
                        let k = h.raw() - now.raw() - 1;
                        sa.skip_cycles(now, k, next < indices.len());
                        mem.skip_cycles(now, k, pending_mem);
                        clock.skip_to(Cycle(h.raw() - 1));
                        skipped_cycles += k;
                    }
                }
            }
        }

        SensitivityResult {
            cycles: clock.now().raw(),
            skipped_cycles,
            sa: sa.stats(),
            mem: mem.stats(),
            bins: store.extract_i64(Addr(0), range as usize),
        }
    }

    /// Run [`SensitivityRig::run_histogram`] for every configuration on up
    /// to `threads` worker threads, returning results in configuration
    /// order.
    ///
    /// Each run is an independent simulation over shared read-only input,
    /// so the sweep is embarrassingly parallel and — because results come
    /// back in configuration order — indistinguishable from running the
    /// configs serially, for any thread count (Figures 11 and 12 sweep
    /// dozens of points through this).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of `0..range` or a worker thread panics.
    pub fn run_histogram_sweep(
        configs: &[SensitivityConfig],
        indices: &[u64],
        range: u64,
        threads: usize,
    ) -> Vec<SensitivityResult> {
        let n = configs.len();
        if threads <= 1 || n <= 1 {
            return configs
                .iter()
                .map(|&cfg| SensitivityRig::new(cfg).run_histogram(indices, range))
                .collect();
        }
        let slots: Vec<std::sync::Mutex<Option<SensitivityResult>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads.min(n) {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = SensitivityRig::new(configs[i]).run_histogram(indices, range);
                    *slots[i].lock().expect("result slot") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("workers joined")
                    .expect("every config produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cs: usize, fu: u32, lat: u32, int: u32) -> SensitivityConfig {
        SensitivityConfig {
            cs_entries: cs,
            fu_latency: fu,
            mem_latency: lat,
            mem_interval: int,
        }
    }

    fn uniform_indices(n: usize, range: u64, seed: u64) -> Vec<u64> {
        let mut rng = sa_sim::Rng64::new(seed);
        (0..n).map(|_| rng.below(range)).collect()
    }

    #[test]
    fn histogram_is_exact() {
        let rig = SensitivityRig::new(cfg(8, 4, 16, 2));
        let idx = uniform_indices(512, 64, 1);
        let r = rig.run_histogram(&idx, 64);
        let mut expect = vec![0i64; 64];
        for &i in &idx {
            expect[i as usize] += 1;
        }
        assert_eq!(r.bins, expect);
        assert_eq!(r.sa.accepted, 512);
    }

    #[test]
    fn more_entries_tolerate_latency() {
        // Figure 11's main effect: with few combining-store entries, high
        // memory latency dominates; with many entries it is hidden.
        let idx = uniform_indices(512, 65_536, 2);
        let slow_small = SensitivityRig::new(cfg(2, 4, 256, 2)).run_histogram(&idx, 65_536);
        let slow_large = SensitivityRig::new(cfg(64, 4, 256, 2)).run_histogram(&idx, 65_536);
        let fast_small = SensitivityRig::new(cfg(2, 4, 8, 2)).run_histogram(&idx, 65_536);
        assert!(
            slow_small.cycles > 4 * slow_large.cycles,
            "64 entries should hide most of the 256-cycle latency: {} vs {}",
            slow_small.cycles,
            slow_large.cycles
        );
        assert!(
            slow_small.cycles > 4 * fast_small.cycles,
            "with 2 entries the run time tracks memory latency"
        );
    }

    #[test]
    fn large_store_hits_throughput_floor() {
        // With 64 entries and latency hidden, the run is bound by memory
        // throughput: ~2 accesses per element at `interval` cycles each.
        let idx = uniform_indices(512, 65_536, 3);
        let r = SensitivityRig::new(cfg(64, 4, 16, 2)).run_histogram(&idx, 65_536);
        let floor = 2 * 2 * 512; // reads+writes × interval × n
        assert!(
            r.cycles >= floor as u64,
            "cannot beat the memory throughput floor: {} < {floor}",
            r.cycles
        );
        assert!(
            r.cycles < floor as u64 + 1500,
            "should be close to the floor"
        );
    }

    #[test]
    fn narrow_range_combines_in_store() {
        // Figure 12's effect: with 16 bins and a large store, most requests
        // are captured by the combining store and memory traffic collapses.
        let idx = uniform_indices(512, 16, 4);
        let r = SensitivityRig::new(cfg(64, 4, 16, 16)).run_histogram(&idx, 16);
        let wide = uniform_indices(512, 65_536, 4);
        let rw = SensitivityRig::new(cfg(64, 4, 16, 16)).run_histogram(&wide, 65_536);
        assert!(
            r.sa.combined > 400,
            "narrow range should combine heavily: {}",
            r.sa.combined
        );
        assert!(
            r.cycles < rw.cycles / 4,
            "narrow ({}) must be far faster than wide ({}) at low throughput",
            r.cycles,
            rw.cycles
        );
    }

    #[test]
    fn fu_latency_invisible_with_enough_entries() {
        // Figure 11: "even with only 16 entries ... performance does not
        // depend on ALU latency".
        let idx = uniform_indices(512, 65_536, 5);
        let fu2 = SensitivityRig::new(cfg(16, 2, 16, 2)).run_histogram(&idx, 65_536);
        let fu16 = SensitivityRig::new(cfg(16, 16, 16, 2)).run_histogram(&idx, 65_536);
        let ratio = fu16.cycles as f64 / fu2.cycles as f64;
        assert!(
            ratio < 1.1,
            "FU latency should be hidden at 16 entries: ratio {ratio}"
        );
    }

    #[test]
    fn fast_forward_is_byte_identical() {
        let idx = uniform_indices(512, 65_536, 7);
        let mut any_skipped = false;
        for c in [cfg(2, 4, 400, 2), cfg(64, 4, 256, 1), cfg(8, 16, 16, 8)] {
            let mut on = SensitivityRig::new(c);
            on.set_fast_forward(true);
            let mut off = SensitivityRig::new(c);
            off.set_fast_forward(false);
            let a = on.run_histogram(&idx, 65_536);
            let b = off.run_histogram(&idx, 65_536);
            assert_eq!(b.skipped_cycles, 0, "ff off must tick every cycle");
            any_skipped |= a.skipped_cycles > 0;
            let mut a_wallclock = a.clone();
            a_wallclock.skipped_cycles = 0;
            assert_eq!(
                a_wallclock, b,
                "fast-forward changed simulated results for {c:?}"
            );
        }
        assert!(any_skipped, "no config exercised the skip path");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let rig = SensitivityRig::new(SensitivityConfig::default());
        let _ = rig.run_histogram(&[5], 4);
    }

    #[test]
    fn sweep_matches_serial_for_any_thread_count() {
        let idx = uniform_indices(256, 1024, 6);
        let configs: Vec<SensitivityConfig> = [2usize, 8, 64]
            .into_iter()
            .flat_map(|cs| [8u32, 64].into_iter().map(move |lat| cfg(cs, 4, lat, 2)))
            .collect();
        let serial = SensitivityRig::run_histogram_sweep(&configs, &idx, 1024, 1);
        assert_eq!(serial.len(), configs.len());
        for threads in [2, 4, 32] {
            let parallel = SensitivityRig::run_histogram_sweep(&configs, &idx, 1024, threads);
            assert_eq!(serial, parallel, "sweep at {threads} threads diverged");
        }
    }
}
