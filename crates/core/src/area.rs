//! The standard-cell area model of §3.2.
//!
//! The paper's feasibility argument: "a 64-bit floating-point functional
//! unit ... in today's 90 nm technology requires only 0.3 mm²"; a complete
//! scatter-add unit (FU + combining store + control) is estimated at
//! 0.2 mm² (the FU shares area with the combining store in the standard-cell
//! layout derived from the Imagine ALU), so 8 units occupy 1.6 mm² — "only
//! 2% of a 10 mm × 10 mm chip in 90 nm technology".

/// Area of one 64-bit floating-point functional unit in 90 nm (mm²).
pub const FPU_AREA_MM2: f64 = 0.3;

/// Area of one complete scatter-add unit (FU, combining store, combining
/// controller, muxes) in 90 nm (mm²), per the paper's estimate.
pub const SA_UNIT_AREA_MM2: f64 = 0.2;

/// Die area of the reference chip (10 mm × 10 mm) in mm².
pub const REFERENCE_DIE_MM2: f64 = 100.0;

/// Latency target of the Imagine-derived ALU implementation: four 1 ns
/// cycles (Table 1's FU latency of 4 at 1 GHz).
pub const FU_LATENCY_CYCLES: u32 = 4;

/// Total area of `units` scatter-add units (mm²).
///
/// ```
/// assert_eq!(sa_core::area::total_area_mm2(8), 1.6);
/// ```
pub fn total_area_mm2(units: usize) -> f64 {
    units as f64 * SA_UNIT_AREA_MM2
}

/// Fraction of a `die_mm2` die consumed by `units` scatter-add units.
pub fn die_fraction(units: usize, die_mm2: f64) -> f64 {
    total_area_mm2(units) / die_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_units_stay_under_two_percent() {
        // The paper's headline feasibility claim.
        let frac = die_fraction(8, REFERENCE_DIE_MM2);
        assert!(frac < 0.02, "8 units consume {frac:.3} of the die");
        assert!((total_area_mm2(8) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn unit_is_cheaper_than_standalone_fpu_plus_overhead() {
        let (unit, fpu) = (SA_UNIT_AREA_MM2, FPU_AREA_MM2);
        assert!(
            unit < fpu,
            "unit {unit} should undercut a standalone FPU {fpu}"
        );
    }

    #[test]
    fn latency_matches_table1() {
        assert_eq!(
            FU_LATENCY_CYCLES,
            sa_sim::SaUnitConfig::default().fu_latency
        );
    }
}
